"""Runtime: null no-ops, spec parsing, configure/reset, capture/absorb."""

import pytest

from repro.telemetry.events import JsonlSink, RingBufferSink, StderrSink
from repro.telemetry.runtime import (NULL_TELEMETRY, Telemetry, capture,
                                     configure, get_telemetry, install,
                                     install_null, reset, telemetry_from_spec,
                                     verbose_telemetry)


class TestNullTelemetry:
    def test_disabled_by_default(self):
        telemetry = get_telemetry()
        assert telemetry is NULL_TELEMETRY
        assert telemetry.enabled is False
        assert telemetry.engine_profiling is False

    def test_everything_is_a_shared_noop(self):
        telemetry = NULL_TELEMETRY
        assert telemetry.counter("a") is telemetry.counter("b")
        assert telemetry.trace("x") is telemetry.trace("y")
        with telemetry.trace("x") as span:
            span.set(loss=1.0)
        telemetry.event("e", value=1)
        telemetry.histogram("h").observe(0.1)
        assert telemetry.records() == []
        assert telemetry.span_tree() == []
        assert telemetry.export() == {"records": [], "metrics": {}}
        telemetry.absorb({"records": [{"kind": "event"}], "metrics": {}})
        telemetry.flush()
        telemetry.close()


class TestSpecParsing:
    def test_off_like_specs_yield_no_sinks(self):
        assert telemetry_from_spec(None) == []
        assert telemetry_from_spec("") == []
        assert telemetry_from_spec("off") == []
        assert telemetry_from_spec("memory") == []

    def test_stderr_and_jsonl(self, tmp_path):
        sinks = telemetry_from_spec(
            f"stderr,jsonl:{tmp_path / 'trace.jsonl'}")
        assert isinstance(sinks[0], StderrSink)
        assert isinstance(sinks[1], JsonlSink)

    def test_jsonl_without_path_rejected(self):
        with pytest.raises(ValueError):
            telemetry_from_spec("jsonl:")

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            telemetry_from_spec("prometheus")


class TestConfigure:
    def test_off_installs_null_runtime(self):
        assert configure("off") is NULL_TELEMETRY
        assert get_telemetry() is NULL_TELEMETRY

    def test_memory_spec_installs_real_runtime(self):
        telemetry = configure("memory")
        assert telemetry.enabled
        assert get_telemetry() is telemetry
        telemetry.event("hello")
        assert telemetry.records()[0]["name"] == "hello"

    def test_engine_profiling_forces_real_runtime(self):
        telemetry = configure(None, engine_profiling=True)
        assert telemetry.enabled
        assert telemetry.engine_profiling

    def test_reset_restores_null(self):
        configure("memory")
        reset()
        assert get_telemetry() is NULL_TELEMETRY

    def test_reset_closes_previous_runtime(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = configure(f"jsonl:{path}")
        telemetry.counter("jobs").inc()
        reset()
        # close() emitted the final metrics snapshot to the JSONL sink
        assert "jobs" in path.read_text()

    def test_install_returns_previous(self):
        telemetry = Telemetry()
        previous = install(telemetry)
        assert previous is NULL_TELEMETRY
        assert get_telemetry() is telemetry
        install_null()
        assert get_telemetry() is NULL_TELEMETRY


class TestTelemetryRuntime:
    def test_events_carry_the_open_span_id(self):
        telemetry = Telemetry()
        with telemetry.trace("outer") as span:
            telemetry.event("ping", n=1)
        records = telemetry.records()
        event = next(r for r in records if r["kind"] == "event")
        assert event["span_id"] == span.span_id
        assert event["attrs"] == {"n": 1}

    def test_span_records_stream_to_sinks(self):
        sink = RingBufferSink()
        telemetry = Telemetry(sinks=[sink], buffer=None)
        with telemetry.trace("work"):
            pass
        assert sink.records()[0]["name"] == "work"
        assert telemetry.records() == []  # retention disabled

    def test_close_emits_metrics_record_once(self):
        sink = RingBufferSink()
        telemetry = Telemetry(sinks=[sink], buffer=None)
        telemetry.counter("jobs").inc()
        telemetry.close()
        kinds = [record["kind"] for record in sink.records()]
        assert kinds == ["metrics"]

    def test_close_without_metrics_emits_nothing(self):
        sink = RingBufferSink()
        telemetry = Telemetry(sinks=[sink], buffer=None)
        telemetry.close()
        assert sink.records() == []


class TestCapture:
    def test_capture_installs_and_restores(self):
        before = get_telemetry()
        with capture() as telemetry:
            assert get_telemetry() is telemetry
            telemetry.event("worker_event")
        assert get_telemetry() is before
        payload = telemetry.export()
        assert payload["records"][0]["name"] == "worker_event"

    def test_absorb_merges_metrics_and_reparents_spans(self):
        with capture() as worker:
            with worker.trace("job"):
                worker.counter("cache.hits").inc(2)
                worker.histogram("train.step_seconds").observe(0.01)
        payload = worker.export()

        parent = Telemetry()
        parent.counter("cache.hits").inc()
        with parent.trace("executor") as outer:
            parent.absorb(payload)
        assert parent.counter("cache.hits").value == 3.0
        assert parent.histogram("train.step_seconds").count == 1
        tree = parent.span_tree()
        assert [c["name"] for c in tree[0]["children"]] == ["job"]
        job = next(r for r in parent.records()
                   if r.get("kind") == "span" and r["name"] == "job")
        assert job["parent_id"] == outer.span_id

    def test_absorb_none_is_a_noop(self):
        telemetry = Telemetry()
        telemetry.absorb(None)
        telemetry.absorb({})
        assert telemetry.records() == []


class TestVerboseTelemetry:
    def test_quiet_and_disabled_stays_null(self):
        assert verbose_telemetry(False) is NULL_TELEMETRY

    def test_verbose_and_disabled_gets_transient_stderr_runtime(self):
        telemetry = verbose_telemetry(True)
        assert telemetry.enabled
        assert telemetry is not get_telemetry()
        assert isinstance(telemetry.sinks[0], StderrSink)

    def test_configured_runtime_wins_over_verbose(self):
        configured = configure("memory")
        assert verbose_telemetry(True) is configured
        assert verbose_telemetry(False) is configured
