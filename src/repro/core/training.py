"""Training loop for the causality-aware transformer.

Follows the paper's scheme (Sec. 5.3): parameters initialised with He
initialisation, optimised with Adam, and trained with an early-stop strategy
on a held-out validation split of the windows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import CausalFormerConfig
from repro.core.transformer import CausalityAwareTransformer
from repro.nn.inference import profiling_hook
from repro.nn.optim import Adam
from repro.nn.parallel import get_engine_threads
from repro.nn.training_engine import TrainingEngine
from repro.telemetry import get_telemetry, verbose_telemetry

#: Element budget for the fused multi-step training gather: blocks of
#: mini-batches are staged through one ``np.take`` into a buffer of at most
#: this many elements (~32 MB at float64), amortising per-step gather
#: dispatch without letting wide window sets balloon the arena.
GATHER_ELEMENT_BUDGET = 4_000_000


@dataclass
class TrainingHistory:
    """Per-epoch losses and the early-stopping bookkeeping."""

    train_loss: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_validation_loss: float = float("inf")
    stopped_early: bool = False
    #: training produced a NaN/inf epoch or validation loss and was aborted.
    #: A non-finite loss can never improve ``best_validation_loss``, so
    #: without this flag a diverged run would silently burn the whole
    #: patience window and hand back garbage weights with ``best_epoch == -1``.
    diverged: bool = False

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)


def losses_diverged(epoch_loss: float, validation_loss: float) -> bool:
    """Whether a (train, validation) loss pair signals divergence.

    Shared by :class:`Trainer` and the stacked trainer so both stop on the
    exact same condition (the batched path's identity contract includes the
    divergence bookkeeping).
    """
    return not (np.isfinite(epoch_loss) and np.isfinite(validation_loss))


def split_windows(windows: np.ndarray, rng: np.random.Generator,
                  config: CausalFormerConfig):
    """Shuffle-split windows into (train, validation) per the config.

    Shared by :class:`Trainer` and the stacked trainer
    (:mod:`repro.core.batched`) — the batched path's bit-identity contract
    requires both to draw exactly the same split from the same rng stream.
    """
    n_windows = windows.shape[0]
    indices = rng.permutation(n_windows)
    n_validation = int(round(n_windows * config.validation_fraction))
    n_validation = min(max(n_validation, 1 if n_windows > 1 else 0),
                       n_windows - 1)
    validation_idx = indices[:n_validation]
    train_idx = indices[n_validation:]
    return windows[train_idx], windows[validation_idx] if n_validation else None


class Trainer:
    """Adam + early stopping over sliding windows of one dataset."""

    def __init__(self, model: CausalityAwareTransformer,
                 config: Optional[CausalFormerConfig] = None) -> None:
        self.model = model
        self.config = config or model.config
        self._parameters = list(model.parameters())
        self.optimizer = Adam(self._parameters, lr=self.config.learning_rate,
                              clip_norm=self.config.grad_clip)
        self.history = TrainingHistory()
        # The model's fused no-autograd engine runs the validation passes;
        # sharing it (rather than building a private one) means predict()
        # and the stacked trainer reuse the same scratch arena.
        self._inference = model.inference_engine()
        # Training steps run on the fused no-autograd training engine
        # (hand-derived backward, gradients written straight into the flat
        # Adam buffer), sharing the inference engine's arena so training,
        # validation and prediction draw from one buffer pool.
        self._training = TrainingEngine(model, self.optimizer,
                                        arena=self._inference.arena)
        # Resolved per fit(): the active telemetry runtime, or a transient
        # stderr one when fit(verbose=True) runs with telemetry off.
        self._telemetry = None

    def _resolve_telemetry(self, verbose: bool = False):
        """Pick the runtime for this run and sync the engine profiling hook.

        The fused engines' per-op hook is instance state with zero cost when
        off; it follows the runtime's ``engine_profiling`` flag so enabling
        telemetry after the trainer was built still takes effect (and
        disabling it cleanly unhooks).  The hook caches its histograms and
        the metrics registry locks their updates, so profiled engines stay
        safe under threaded op execution.
        """
        telemetry = self._telemetry = verbose_telemetry(verbose)
        if telemetry.enabled:
            telemetry.gauge("engine.threads").set(get_engine_threads())
        if telemetry.engine_profiling:
            hook = profiling_hook(telemetry)
            for engine in (self._training, self._inference):
                engine.enable_profiling(hook)
        else:
            for engine in (self._training, self._inference):
                engine.disable_profiling()
        return telemetry

    # ------------------------------------------------------------------ #
    # Data preparation
    # ------------------------------------------------------------------ #
    def make_windows(self, values: np.ndarray) -> np.ndarray:
        """Cut the ``(N, T_total)`` series into training windows."""
        from repro.data.windows import sliding_windows

        return sliding_windows(values, self.config.window, self.config.window_stride)

    def _split(self, windows: np.ndarray, rng: np.random.Generator):
        return split_windows(windows, rng, self.config)

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, values: np.ndarray, verbose: bool = False) -> TrainingHistory:
        """Train on an ``(N, T_total)`` array; returns the loss history."""
        telemetry = self._resolve_telemetry(verbose)
        rng = np.random.default_rng(self.config.seed)
        windows = self.make_windows(values)
        # Cast once to the model's parameter dtype (float32 engine default)
        # so no per-batch Tensor construction re-casts the data.
        dtype = next(iter(self.model.parameters())).data.dtype
        windows = np.ascontiguousarray(windows, dtype=dtype)
        train_windows, validation_windows = self._split(windows, rng)

        best_state = None
        epochs_without_improvement = 0

        # repro: allow(telemetry-guard): fit-scoped span; null trace is free
        with telemetry.trace("train_fit", n_windows=windows.shape[0],
                             max_epochs=self.config.max_epochs,
                             seed=self.config.seed) as fit_span:
            for epoch in range(self.config.max_epochs):
                epoch_loss = self._run_epoch(train_windows, rng)
                self.history.train_loss.append(epoch_loss)

                if validation_windows is not None and len(validation_windows):
                    validation_loss = self._evaluate(validation_windows)
                else:
                    validation_loss = epoch_loss
                self.history.validation_loss.append(validation_loss)

                if telemetry.enabled:
                    telemetry.event("train_epoch", epoch=epoch,
                                    loss=epoch_loss,
                                    validation_loss=validation_loss)

                if losses_diverged(epoch_loss, validation_loss):
                    # A non-finite loss never improves and never errors out
                    # of the patience window: stop immediately and flag the
                    # run, restoring the last finite best state below (if
                    # any).
                    self.history.diverged = True
                    if telemetry.enabled:
                        telemetry.event("train_diverged", epoch=epoch,
                                        loss=epoch_loss,
                                        validation_loss=validation_loss)
                    break

                if validation_loss < self.history.best_validation_loss - self.config.min_delta:
                    self.history.best_validation_loss = validation_loss
                    self.history.best_epoch = epoch
                    # Snapshot parameter values directly — cheaper than a
                    # full state_dict walk, and taken every improving epoch.
                    best_state = [parameter.data.copy()
                                  for parameter in self._parameters]
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= self.config.patience:
                        self.history.stopped_early = True
                        if telemetry.enabled:
                            telemetry.event(
                                "early_stop", epoch=epoch,
                                best_epoch=self.history.best_epoch)
                        break
            fit_span.set(epochs=self.history.n_epochs,
                         best_epoch=self.history.best_epoch,
                         stopped_early=self.history.stopped_early,
                         diverged=self.history.diverged)

        if best_state is not None:
            # Copy in place rather than re-pointing ``parameter.data`` at the
            # snapshot arrays: the fused Adam's flat parameter buffer, the
            # shared inference engine and the stacked trainer's (K, P) views
            # are all bound to the current storage — re-pointing would detach
            # every one of them from the restored weights.
            for parameter, saved in zip(self._parameters, best_state):
                parameter.data[...] = saved
        return self.history

    def _run_epoch(self, windows: np.ndarray, rng: np.random.Generator) -> float:
        """One shuffled pass over the training windows.

        Runs on the fused no-autograd :class:`TrainingEngine` — the same
        forward/backward arithmetic the autograd fast path performed, minus
        the graph.  Mini-batches are index views: the epoch shuffles indices
        once and gathers a *block* of several mini-batches through one
        stacked ``np.take`` into a persistent arena buffer (bounded by
        :data:`GATHER_ELEMENT_BUDGET`), then steps over contiguous
        ``batch_size`` slices of the block — the same rows in the same
        order as a per-step gather, so losses are bit-identical.
        """
        telemetry = self._telemetry if self._telemetry is not None \
            else get_telemetry()
        order = rng.permutation(windows.shape[0])
        batch_size = self.config.batch_size
        engine = self._training
        # Replays the per-batch Tensor-construction casts once per epoch
        # (a no-op when the windows already carry the engine dtype).
        windows = engine.prepare_windows(windows)
        arena = engine.arena
        tail_shape = windows.shape[1:]
        row_elements = max(1, int(np.prod(tail_shape)))
        steps_per_block = max(1, GATHER_ELEMENT_BUDGET
                              // max(1, row_elements * batch_size))
        block_rows = min(max(len(order), 1), steps_per_block * batch_size)
        gather = arena.take("train.gather", (block_rows,) + tail_shape,
                            windows.dtype)
        losses = []
        if not telemetry.enabled:
            # The instrumented loop below is identical but pays a
            # perf_counter pair per step; this branch keeps the telemetry-off
            # path at one attribute check per epoch.
            for block_start in range(0, len(order), block_rows):
                block_index = order[block_start:block_start + block_rows]
                block = gather[:len(block_index)]
                np.take(windows, block_index, axis=0, out=block)
                for start in range(0, len(block_index), batch_size):
                    losses.append(
                        engine.train_step(block[start:start + batch_size]))
            return float(np.mean(losses)) if losses else float("nan")
        histogram = telemetry.histogram("train.step_seconds")
        for block_start in range(0, len(order), block_rows):
            block_index = order[block_start:block_start + block_rows]
            block = gather[:len(block_index)]
            np.take(windows, block_index, axis=0, out=block)
            for start in range(0, len(block_index), batch_size):
                batch = block[start:start + batch_size]
                step_start = time.perf_counter()
                losses.append(engine.train_step(batch))
                histogram.observe(time.perf_counter() - step_start)
        return float(np.mean(losses)) if losses else float("nan")

    def _evaluate(self, windows: np.ndarray) -> float:
        """Validation loss, evaluated in ``batch_size`` chunks.

        Chunking keeps peak memory proportional to the batch size — the
        forward pass materialises a ``(chunk, N, N, T)`` convolution tensor,
        so a single full-split evaluation used to dominate peak RSS.  Each
        window contributes the same number of loss elements and the L1
        penalties are constant across chunks, so the window-weighted mean of
        the chunk losses equals the single-shot loss exactly.

        The pass runs on the fused no-autograd inference engine: the same
        operation sequence as the autograd fast path (losses are
        bit-identical), but with every intermediate written into a reusable
        scratch arena instead of fresh graph nodes and temporaries.
        """
        return self._inference.evaluate(windows, self.config.batch_size)
