"""Bench report naming (trajectory slots) and the multi-key regression gate."""

import json

import pytest

from repro.service import bench


def write(path, payload):
    path.write_text(json.dumps(payload))


class TestTrajectoryNaming:
    def test_first_slot_is_01(self, tmp_path):
        assert bench.next_output_path(str(tmp_path)).endswith("BENCH_01.json")
        assert bench.latest_report_path(str(tmp_path)) is None

    def test_successive_runs_append_instead_of_overwriting(self, tmp_path):
        write(tmp_path / "BENCH_01.json", {"schema": 1})
        write(tmp_path / "BENCH_02.json", {"schema": 1})
        assert bench.next_output_path(str(tmp_path)).endswith("BENCH_03.json")
        assert bench.latest_report_path(str(tmp_path)).endswith("BENCH_02.json")

    def test_non_trajectory_files_ignored(self, tmp_path):
        write(tmp_path / "BENCH_ci.json", {"schema": 1})
        write(tmp_path / "BENCH_nn.json", {"schema": 1})
        assert bench.next_output_path(str(tmp_path)).endswith("BENCH_01.json")

    def test_write_report_defaults_to_next_slot(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench, "_ROOT", str(tmp_path))
        first = bench.write_report({"schema": 1})
        second = bench.write_report({"schema": 1})
        assert first.endswith("BENCH_01.json")
        assert second.endswith("BENCH_02.json")


def report_with(timings):
    return {"timings": {name: {"seconds": seconds}
                        for name, seconds in timings.items()}}


class TestRegressionGate:
    def test_multiple_keys_checked(self):
        reference = report_with({"train_epoch": 1.0, "evaluate": 1.0,
                                 "tensor_ops": 1.0})
        current = report_with({"train_epoch": 1.0, "evaluate": 2.0,
                               "tensor_ops": 1.0})
        messages = bench.check_regressions(current, reference=reference,
                                           keys=("train_epoch", "evaluate"))
        assert len(messages) == 1
        assert "evaluate" in messages[0]

    def test_missing_key_in_reference_fails_loudly(self):
        """A gated key absent from the reference must fail, not skip — a
        gate that silently stops comparing looks exactly like one that
        passes."""
        reference = report_with({"train_epoch": 1.0})
        current = report_with({"train_epoch": 1.0, "evaluate": 99.0})
        messages = bench.check_regressions(current, reference=reference,
                                           keys=("train_epoch", "evaluate"))
        assert len(messages) == 1
        assert "evaluate" in messages[0]
        assert "missing from the reference" in messages[0]

    def test_missing_key_skippable_when_opted_in(self):
        reference = report_with({"train_epoch": 1.0})
        current = report_with({"train_epoch": 1.0, "evaluate": 99.0})
        assert bench.check_regressions(current, reference=reference,
                                       keys=("train_epoch", "evaluate"),
                                       allow_missing=True) == []

    def test_no_reference_at_all_passes_vacuously(self):
        current = report_with({"train_epoch": 1.0})
        assert bench.check_regressions(current, reference=None) == []

    def test_missing_normalizer_in_reference_fails_loudly(self):
        """A reference without the normalize_by benchmark makes every ratio
        gate vacuous — that must fail, not silently pass."""
        reference = report_with({"train_epoch": 1.0})
        current = report_with({"train_epoch": 1.0, "tensor_ops": 0.1})
        messages = bench.check_regressions(current, reference=reference,
                                           keys=("train_epoch",),
                                           normalize_by="tensor_ops")
        assert len(messages) == 1
        assert "tensor_ops" in messages[0]
        assert "vacuous" in messages[0]

    def test_missing_normalizer_in_current_run_fails_loudly(self):
        reference = report_with({"train_epoch": 1.0, "tensor_ops": 0.1})
        current = report_with({"train_epoch": 1.0})
        messages = bench.check_regressions(current, reference=reference,
                                           keys=("train_epoch",),
                                           normalize_by="tensor_ops")
        assert len(messages) == 1
        assert "current report" in messages[0]

    def test_normalized_gate_ignores_machine_speed(self):
        reference = report_with({"train_epoch": 1.0, "tensor_ops": 0.1})
        current = report_with({"train_epoch": 3.0, "tensor_ops": 0.3})
        assert bench.check_regressions(current, reference=reference,
                                       keys=("train_epoch",),
                                       normalize_by="tensor_ops") == []

    def test_default_keys_gate_inference(self):
        assert "evaluate" in bench.REGRESSION_KEYS
        assert "train_epoch" in bench.REGRESSION_KEYS
        assert "train_step" in bench.REGRESSION_KEYS

    def test_payloads_include_new_benchmarks(self):
        for name in ("evaluate", "detector_interpret", "sweep_batched",
                     "train_step"):
            assert name in bench.PAYLOADS

    def test_train_step_has_committed_baseline(self):
        baseline = bench.load_baseline()
        assert baseline is not None
        assert "train_step" in baseline["timings"]


def trajectory_report(**timings):
    return {"schema": 1,
            "timings": {name: {"seconds": seconds, "best": seconds,
                               "repeats": 1, "samples": [seconds]}
                        for name, seconds in timings.items()}}


class TestTrajectory:
    def setup_reports(self, tmp_path):
        write(tmp_path / "BENCH_01.json",
              trajectory_report(train_epoch=0.008, evaluate=0.004))
        write(tmp_path / "BENCH_02.json",
              trajectory_report(train_epoch=0.004, evaluate=0.002,
                                train_step=0.0016))
        write(tmp_path / "BENCH_03.json",
              trajectory_report(train_epoch=0.002, evaluate=0.002,
                                train_step=0.0008))

    def test_rows_carry_ms_and_speedups(self, tmp_path):
        self.setup_reports(tmp_path)
        rows = {row["payload"]: row
                for row in bench.trajectory_rows(str(tmp_path))}
        epoch = rows["train_epoch"]
        assert epoch["milliseconds"] == [8.0, 4.0, 2.0]
        assert epoch["vs_previous"] == pytest.approx(2.0)
        assert epoch["vs_first"] == pytest.approx(4.0)
        # A payload added mid-trajectory reports None for earlier slots and
        # measures its speedups against its own first appearance.
        step = rows["train_step"]
        assert step["milliseconds"] == [None, 1.6, 0.8]
        assert step["vs_previous"] == pytest.approx(2.0)
        assert step["vs_first"] == pytest.approx(2.0)

    def test_single_measurement_has_no_speedups(self, tmp_path):
        write(tmp_path / "BENCH_01.json", trajectory_report(evaluate=0.004))
        (row,) = bench.trajectory_rows(str(tmp_path))
        assert row["vs_previous"] is None and row["vs_first"] is None

    def test_render_contains_headers_and_values(self, tmp_path):
        self.setup_reports(tmp_path)
        table = bench.render_trajectory(str(tmp_path))
        lines = table.splitlines()
        assert "BENCH_01 ms" in lines[0]
        assert "BENCH_03 ms" in lines[0]
        assert "vs prev" in lines[0] and "vs BENCH_01" in lines[0]
        epoch_line = next(line for line in lines
                          if line.startswith("train_epoch"))
        assert "8.00" in epoch_line and "2.00" in epoch_line
        assert "4.00x" in epoch_line
        step_line = next(line for line in lines
                         if line.startswith("train_step"))
        assert step_line.split()[1] == "-"   # predates BENCH_02

    def test_render_with_no_reports(self, tmp_path):
        assert "no committed" in bench.render_trajectory(str(tmp_path))
