"""``parallel-outputs``: every buffer a ``parallel_for`` body writes must be
declared in ``outputs=``.

The threaded engines' bit-exactness contract rests on chunk bodies writing
*disjoint slices of declared buffers* — the runtime audit
(``REPRO_PARALLEL_DEBUG``, see :func:`repro.nn.parallel.parallel_for`)
asserts disjointness via ``np.shares_memory``, but it can only audit the
arrays the call site *declared*, and only for the shapes a run happens to
exercise.  This rule closes both gaps statically: for every
``parallel_for(body, n, outputs=...)`` call whose body is a local ``def``
or ``lambda``, the names the body assigns into (slice assignment, ``out=``
keywords, ``np.copyto`` targets, ``.fill`` receivers, augmented
assignment) must be either

* **chunk-local** — bound inside the body (a view like
  ``rows = flat[lo:hi]`` counts as a write to its base, which is resolved
  through the alias), or
* **declared** — the base of an ``(array, axis)`` pair in ``outputs=``.

A body that writes anything while the call has no ``outputs=`` at all is
flagged the same way — an undeclared output is invisible to the runtime
audit, which is exactly how a silent data race gets introduced.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import Checker, Finding, LintConfig, ModuleSource
from repro.analysis.registry import register


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _declared_outputs(call: ast.Call) -> Optional[Tuple[Set[str], bool]]:
    """``(base names, exhaustive)`` declared in ``outputs=``.

    ``None`` when the kwarg is absent.  Concatenated declarations like
    ``((a, 0),) + tuple((v, 0) for v in views)`` resolve the literal part
    and come back non-exhaustive — the generated pairs cannot be
    enumerated statically, so undeclared-name checking is skipped for
    such calls (the runtime audit still covers them in full).
    """
    for keyword in call.keywords:
        if keyword.arg == "outputs":
            return _collect_pairs(keyword.value)
    return None


def _collect_pairs(value: ast.AST) -> Tuple[Set[str], bool]:
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add):
        left, left_exhaustive = _collect_pairs(value.left)
        right, right_exhaustive = _collect_pairs(value.right)
        return left | right, left_exhaustive and right_exhaustive
    if not isinstance(value, (ast.Tuple, ast.List)):
        return set(), False
    declared: Set[str] = set()
    for element in value.elts:
        if isinstance(element, (ast.Tuple, ast.List)) and element.elts:
            name = Checker.subscript_base(element.elts[0])
            if name is not None:
                declared.add(name)
    return declared, True


class _BodyWrites(ast.NodeVisitor):
    """Collects the buffers a chunk body writes, resolving local aliases."""

    def __init__(self, parameters: Set[str]) -> None:
        #: names bound inside the body (chunk-local by construction)
        self.local: Set[str] = set(parameters)
        #: local name -> dotted base it is a view of (``rows = flat[lo:hi]``)
        self.aliases: Dict[str, str] = {}
        #: (dotted base, line, column) of every write
        self.writes: List[Tuple[str, int, int]] = []

    # -- write resolution ---------------------------------------------- #
    def _record(self, node: ast.AST) -> None:
        base = Checker.subscript_base(node)
        if base is None:
            return
        root = base.split(".", 1)[0]
        if base in self.aliases:
            base = self.aliases[base]
        elif root in self.local:
            return  # chunk-local buffer: disjoint by construction
        self.writes.append((base, node.lineno, node.col_offset))

    def _bind(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.local.add(target.id)
            if isinstance(value, ast.Subscript):
                base = Checker.subscript_base(value)
                if base is not None \
                        and base.split(".", 1)[0] not in self.local:
                    self.aliases[target.id] = base
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, ast.Constant(value=None))
        elif isinstance(target, ast.Subscript):
            self._record(target)

    # -- visitors ------------------------------------------------------- #
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._bind(target, node.value)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind(node.target, node.value)
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            # In-place update of a local view writes through to its base.
            name = node.target.id
            if name in self.aliases:
                self.writes.append((self.aliases[name],
                                    node.lineno, node.col_offset))
        else:
            self._record(node.target)
        self.visit(node.value)

    def visit_For(self, node: ast.For) -> None:
        self._bind(node.target, ast.Constant(value=None))
        self.generic_visit(node)

    def visit_comprehension_target(self, node) -> None:  # pragma: no cover
        self._bind(node, ast.Constant(value=None))

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name == "copyto" and node.args:
            self._record(node.args[0])
        elif name == "fill" and isinstance(node.func, ast.Attribute):
            self._record(node.func.value)
        for keyword in node.keywords:
            if keyword.arg == "out":
                self._record(keyword.value)
        self.generic_visit(node)


def _resolve_body(call: ast.Call,
                  scope_functions: Dict[str, ast.FunctionDef]):
    """The body callable of a ``parallel_for`` call, when statically known."""
    if not call.args:
        return None
    body = call.args[0]
    if isinstance(body, ast.Lambda):
        return body
    if isinstance(body, ast.Name):
        return scope_functions.get(body.id)
    return None


@register
class ParallelOutputsChecker(Checker):
    name = "parallel-outputs"
    description = ("parallel_for body writes a buffer not declared in "
                   "outputs= (invisible to the aliasing audit)")

    def check(self, module: ModuleSource,
              config: LintConfig) -> Iterator[Finding]:
        # Local function definitions per enclosing scope, for body-by-name.
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Module)):
                continue
            functions: Dict[str, ast.FunctionDef] = {
                statement.name: statement
                for statement in ast.walk(scope)
                if isinstance(statement, ast.FunctionDef)}
            for node in self._direct_calls(scope):
                yield from self._check_call(node, functions, module)

    @staticmethod
    def _direct_calls(scope: ast.AST) -> Iterator[ast.Call]:
        """``parallel_for`` calls belonging to this scope (not nested defs)."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Call) \
                    and _call_name(node) == "parallel_for":
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(self, call: ast.Call,
                    functions: Dict[str, ast.FunctionDef],
                    module: ModuleSource) -> Iterator[Finding]:
        body = _resolve_body(call, functions)
        if body is None:
            return  # dynamic body: not statically analysable
        parameters = {argument.arg for argument in body.args.args}
        writes = _BodyWrites(parameters)
        if isinstance(body, ast.Lambda):
            writes.visit(body.body)
        else:
            for statement in body.body:
                writes.visit(statement)
        if not writes.writes:
            return
        outputs = _declared_outputs(call)
        if outputs is None:
            names = sorted({base for base, _line, _column in writes.writes})
            yield Finding(
                self.name, module.path, call.lineno, call.col_offset,
                "parallel_for call declares no outputs= but its body writes "
                + ", ".join(names) + "; declare every written buffer so the "
                "aliasing audit can cover it")
            return
        declared, exhaustive = outputs
        if not exhaustive:
            return  # generated pairs: leave coverage to the runtime audit
        seen: Set[str] = set()
        for base, line, column in writes.writes:
            if base in declared or base in seen:
                continue
            seen.add(base)
            yield Finding(
                self.name, module.path, line, column,
                f"parallel_for body writes {base!r} which is not declared "
                "in outputs=; the aliasing audit cannot see it")
