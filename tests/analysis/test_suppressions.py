"""Suppression grammar: blessing syntax, scoping, and its own error modes."""

from __future__ import annotations

import textwrap

from repro.analysis import SUPPRESSION_RULE, parse_suppressions, rule_names


def sheet(source):
    return parse_suppressions("src/repro/x.py", textwrap.dedent(source),
                              rule_names())


class TestCoverage:
    def test_same_line(self):
        covered = sheet("""\
            import numpy as np
            x = np.zeros(3)  # repro: allow(hot-path-alloc): fixture
            """)
        assert covered.covers("hot-path-alloc", 2)
        assert not covered.covers("hot-path-alloc", 1)
        assert not covered.covers("dtype-purity", 2)
        assert covered.errors == []

    def test_standalone_preceding_line(self):
        covered = sheet("""\
            # repro: allow(no-print): fixture
            print("hello")
            """)
        assert covered.covers("no-print", 2)

    def test_trailing_comment_does_not_leak_downward(self):
        # A suppression at the end of an unrelated statement must not bless
        # the *next* line.
        covered = sheet("""\
            y = 1  # repro: allow(no-print): belongs to this line only
            print("hello")
            """)
        assert covered.covers("no-print", 1)
        assert not covered.covers("no-print", 2)

    def test_file_wide(self):
        covered = sheet("""\
            # repro: allow-file(dtype-purity): generated reference tables
            a = 1
            b = 2
            """)
        assert covered.covers("dtype-purity", 1)
        assert covered.covers("dtype-purity", 999)
        assert not covered.covers("no-print", 2)

    def test_string_literals_never_parse_as_suppressions(self):
        covered = sheet("""\
            text = "# repro: allow(no-print): inside a string"
            print(text)
            """)
        assert not covered.covers("no-print", 1)
        assert not covered.covers("no-print", 2)
        assert covered.errors == []


class TestSuppressionErrors:
    def test_unknown_rule_is_an_error(self):
        covered = sheet("""\
            x = 1  # repro: allow(no-such-rule): typo
            """)
        assert len(covered.errors) == 1
        error = covered.errors[0]
        assert error.rule == SUPPRESSION_RULE
        assert "unknown rule 'no-such-rule'" in error.message
        assert not covered.covers("no-such-rule", 1)

    def test_missing_justification_is_an_error(self):
        for comment in ("# repro: allow(no-print)",
                        "# repro: allow(no-print):",
                        "# repro: allow(no-print):   "):
            covered = sheet(f"x = 1  {comment}\n")
            assert len(covered.errors) == 1, comment
            assert "no justification" in covered.errors[0].message
            assert not covered.covers("no-print", 1)

    def test_malformed_marker_is_an_error(self):
        covered = sheet("""\
            x = 1  # repro: allow no-print because reasons
            """)
        assert len(covered.errors) == 1
        assert "malformed suppression" in covered.errors[0].message

    def test_empty_rule_is_an_error(self):
        covered = sheet("""\
            x = 1  # repro: allow(): why not
            """)
        assert len(covered.errors) == 1
        assert "names no rule" in covered.errors[0].message

    def test_plain_comments_are_ignored(self):
        covered = sheet("""\
            x = 1  # an ordinary comment mentioning repro the project
            """)
        assert covered.errors == []


class TestErrorsSurfaceThroughLint(object):
    def test_unknown_rule_suppression_is_a_finding(self, lint_source):
        result = lint_source("""\
            x = 1  # repro: allow(no-such-rule): typo
            """)
        assert [f.rule for f in result.findings] == [SUPPRESSION_RULE]
        assert result.exit_code == 1
