"""Suppression comments: ``# repro: allow(<rule>): <justification>``.

A suppression silences one rule at one location — it is a *blessing*, not
an escape hatch, so the justification text is mandatory and a malformed or
unknown-rule suppression is itself a lint error (rule ``suppression``).

Syntax
------
``# repro: allow(<rule>): <justification>``
    Same line as the violation, or a comment-only line directly above it.
``# repro: allow-file(<rule>): <justification>``
    Anywhere in the file; silences the rule for the whole file.

Comments are found with :mod:`tokenize`, so ``repro: allow`` inside string
literals and docstrings never parses as a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.base import Finding

#: Rule id carried by findings about the suppression comments themselves.
SUPPRESSION_RULE = "suppression"

_MARKER = re.compile(r"#\s*repro:\s*(.*)$")
_ALLOW = re.compile(
    r"^allow(?P<scope>-file)?\s*\(\s*(?P<rule>[A-Za-z0-9_-]*)\s*\)"
    r"\s*(?::\s*(?P<why>.*))?$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``allow`` comment."""

    rule: str
    line: int
    file_wide: bool
    justification: str
    standalone: bool  # True when the comment is alone on its line


class SuppressionSheet:
    """Every suppression in one file, plus the errors found parsing them."""

    def __init__(self, suppressions: List[Suppression],
                 errors: List[Finding]) -> None:
        self._file_wide: Set[str] = set()
        self._by_line: Dict[Tuple[str, int], Suppression] = {}
        self.errors = errors
        for suppression in suppressions:
            if suppression.file_wide:
                self._file_wide.add(suppression.rule)
            else:
                self._by_line[(suppression.rule, suppression.line)] = \
                    suppression

    def covers(self, rule: str, line: int) -> bool:
        """Whether a finding of ``rule`` at ``line`` is suppressed.

        Same-line comments always count; a comment on the preceding line
        counts only when it stands alone (a trailing comment on an
        unrelated statement must not leak downward).
        """
        if rule in self._file_wide:
            return True
        if (rule, line) in self._by_line:
            return True
        above = self._by_line.get((rule, line - 1))
        return above is not None and above.standalone


def parse_suppressions(path: str, source: str,
                       known_rules: Iterable[str]) -> SuppressionSheet:
    """Parse every ``# repro:`` comment in ``source`` into a sheet.

    ``known_rules`` is the full rule catalogue — a suppression naming an
    unknown rule is reported as an error rather than silently ignored (a
    typo must not disable nothing while looking like it disabled
    something).
    """
    known = set(known_rules)
    known.add(SUPPRESSION_RULE)
    suppressions: List[Suppression] = []
    errors: List[Finding] = []

    def error(line: int, column: int, message: str) -> None:
        errors.append(Finding(SUPPRESSION_RULE, path, line, column, message))

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        # The runner reports unparseable files through the parse step; the
        # suppression pass just declines to guess.
        return SuppressionSheet([], [])

    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        marker = _MARKER.search(token.string)
        if marker is None:
            continue
        line, column = token.start
        body = marker.group(1).strip()
        match = _ALLOW.match(body)
        if match is None:
            error(line, column,
                  f"malformed suppression {token.string.strip()!r}; expected "
                  "'# repro: allow(<rule>): <justification>'")
            continue
        rule = match.group("rule")
        justification = (match.group("why") or "").strip()
        if not rule:
            error(line, column, "suppression names no rule; expected "
                                "'allow(<rule>): <justification>'")
            continue
        if rule not in known:
            error(line, column,
                  f"suppression names unknown rule {rule!r} "
                  f"(known: {', '.join(sorted(known))})")
            continue
        if not justification:
            error(line, column,
                  f"suppression of {rule!r} carries no justification; "
                  "write '# repro: allow(" + rule + "): <why this is safe>'")
            continue
        standalone = token.line.strip().startswith("#")
        suppressions.append(Suppression(
            rule=rule, line=line,
            file_wide=match.group("scope") == "-file",
            justification=justification, standalone=standalone))
    return SuppressionSheet(suppressions, errors)
