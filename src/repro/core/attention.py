"""Multi-variate causal attention (paper Sec. 4.1.3, Eq. 5–7).

Each head projects the time-series embedding to queries and keys, forms the
``N×N`` attention matrix

.. math::

    A = \\mathrm{softmax}\\big( Q K^\\top / (τ \\sqrt{d_{QK}}) ⊙ M \\big)

with a learnable mask ``M`` controlling sparsity, and applies it to the value
tensor ``V`` — the multi-kernel causal convolution output — so that the
attention result for target series ``i`` aggregates, over sources ``j``, the
convolution of ``j``'s history computed *for* ``i``:

.. math::

    \\mathrm{A}_{i,t} = \\sum_j A_{ij} · V_{j,i,t}

The ``h`` head outputs are combined by a weight vector ``W_O ∈ R^h`` (Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn import tensor as T
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor


@dataclass
class AttentionHeadCache:
    """Intermediates of one attention head kept for interpretation.

    ``attention`` and ``head_output`` are the live autograd tensors (so the
    detector can read their gradients after a backward pass); the ``*_data``
    fields are plain numpy views used by relevance propagation.
    """

    attention: Tensor
    head_output: Tensor
    attention_data: np.ndarray
    head_output_data: np.ndarray
    scores_data: np.ndarray


class CausalAttentionHead(Module):
    """One head: Q/K projections, learnable mask, tempered softmax."""

    def __init__(self, n_series: int, d_model: int, d_qk: int, temperature: float,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.n_series = n_series
        self.d_qk = d_qk
        self.temperature = temperature
        rng = rng or init.default_rng()
        self.w_query = Parameter(init.he_normal((d_model, d_qk), rng))
        self.b_query = Parameter(init.zeros((d_qk,)))
        self.w_key = Parameter(init.he_normal((d_model, d_qk), rng))
        self.b_key = Parameter(init.zeros((d_qk,)))
        # Learnable attention mask M, initialised to ones (no masking).
        self.mask = Parameter(init.ones((n_series, n_series)))

    def forward(self, embedding: Tensor, values: Tensor) -> AttentionHeadCache:
        """Run the head on a batch.

        Parameters
        ----------
        embedding:
            ``(batch, N, d_model)`` output of the time-series embedding.
        values:
            ``(batch, N, N, T)`` output of the causal convolution
            (``values[b, j, i, t]`` = source ``j`` convolved for target ``i``).
        """
        query = embedding @ self.w_query + self.b_query
        key = embedding @ self.w_key + self.b_key
        scale = 1.0 / (self.temperature * np.sqrt(self.d_qk))
        scores = T.einsum("bnd,bmd->bnm", query, key) * scale
        masked = scores * self.mask
        attention = F.softmax(masked, axis=-1)
        attention.retain_grad()
        # head_output[b, i, t] = Σ_j attention[b, i, j] · values[b, j, i, t]
        head_output = T.einsum("bij,bjit->bit", attention, values)
        head_output.retain_grad()
        return AttentionHeadCache(
            attention=attention,
            head_output=head_output,
            attention_data=attention.data,
            head_output_data=head_output.data,
            scores_data=masked.data,
        )

    def l1_penalty(self) -> Tensor:
        """``‖M‖₁`` — the mask sparsity term of the loss (Eq. 9)."""
        return self.mask.abs().sum()


class MultiVariateCausalAttention(Module):
    """The full multi-head multi-variate causal attention block."""

    def __init__(self, n_series: int, d_model: int, d_qk: int, n_heads: int,
                 temperature: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if n_heads < 1:
            raise ValueError("n_heads must be at least 1")
        self.n_series = n_series
        self.n_heads = n_heads
        rng = rng or init.default_rng()
        self.heads = ModuleList([
            CausalAttentionHead(n_series, d_model, d_qk, temperature, rng=rng)
            for _ in range(n_heads)
        ])
        # W_O ∈ R^h concatenates (weights) the head outputs (Eq. 7).
        self.w_output = Parameter(init.ones((n_heads,)) / n_heads)

    def forward(self, embedding: Tensor, values: Tensor):
        """Return ``(combined, head_caches)``.

        ``combined`` has shape ``(batch, N, T)``; ``head_caches`` is the list
        of per-head :class:`AttentionHeadCache` used by the causality detector.
        """
        caches: List[AttentionHeadCache] = [head(embedding, values) for head in self.heads]
        stacked = T.stack([cache.head_output for cache in caches], axis=0)
        combined = T.einsum("hbit,h->bit", stacked, self.w_output)
        return combined, caches

    def mask_l1_penalty(self) -> Tensor:
        total = self.heads[0].l1_penalty()
        for head in list(self.heads)[1:]:
            total = total + head.l1_penalty()
        return total
