"""Extra ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's Table 3: they sweep the k-means density ratio
``m/n``, the attention temperature ``τ`` and the number of heads ``h`` on the
fork dataset, and report the resulting F1 so the sensitivity of the method to
its two interpretability-specific hyper-parameters is visible.
"""

from dataclasses import replace

import pytest

from repro.core import CausalFormer, fast_preset
from repro.data import fork_dataset
from repro.experiments import ResultTable
from repro.graph import evaluate_discovery

from benchmarks.conftest import save_result

SEEDS = (0, 1)


def _score(config, dataset):
    model = CausalFormer(config)
    graph = model.discover(dataset)
    return evaluate_discovery(graph, dataset.graph).f1


def run_density_sweep():
    table = ResultTable("Ablation: m/n density", metric="f1")
    for seed in SEEDS:
        dataset = fork_dataset(seed=seed, length=300)
        for top, total in ((1, 3), (1, 2), (2, 3), (3, 3)):
            config = replace(fast_preset(max_epochs=15, seed=seed),
                             top_clusters=top, n_clusters=total)
            table.add(f"m/n={top}/{total}", "f1", _score(config, dataset))
    return table


def run_temperature_sweep():
    table = ResultTable("Ablation: temperature", metric="f1")
    for seed in SEEDS:
        dataset = fork_dataset(seed=seed, length=300)
        for temperature in (0.5, 1.0, 10.0, 100.0):
            config = replace(fast_preset(max_epochs=15, seed=seed),
                             temperature=temperature)
            table.add(f"tau={temperature}", "f1", _score(config, dataset))
    return table


def run_heads_sweep():
    table = ResultTable("Ablation: attention heads", metric="f1")
    for seed in SEEDS:
        dataset = fork_dataset(seed=seed, length=300)
        for heads in (1, 2, 4):
            config = replace(fast_preset(max_epochs=15, seed=seed), n_heads=heads)
            table.add(f"h={heads}", "f1", _score(config, dataset))
    return table


def test_density_ratio_sweep(run_once):
    table = run_once(run_density_sweep)
    print("\n" + table.render())
    save_result("ablation_density", table.to_dict())
    # A denser graph (m/n = 1) can only raise recall; the F1 sweep must stay valid.
    for row in table.rows:
        assert 0.0 <= table.mean(row, "f1") <= 1.0


def test_temperature_sweep(run_once):
    table = run_once(run_temperature_sweep)
    print("\n" + table.render())
    save_result("ablation_temperature", table.to_dict())
    for row in table.rows:
        assert 0.0 <= table.mean(row, "f1") <= 1.0


def test_heads_sweep(run_once):
    table = run_once(run_heads_sweep)
    print("\n" + table.render())
    save_result("ablation_heads", table.to_dict())
    for row in table.rows:
        assert 0.0 <= table.mean(row, "f1") <= 1.0
