"""Lorenz-96 simulated climate dataset (paper Sec. 5.1, Eq. 21).

The Lorenz-96 model couples ``N`` variables on a ring:

.. math::

    \\frac{dx_i}{dt} = (x_{i+1} - x_{i-2})\\, x_{i-1} - x_i + F

so each variable ``x_i`` is causally driven by ``x_{i-2}``, ``x_{i-1}``,
``x_{i+1}`` and itself.  The paper simulates 10 variables with forcing
``F ∈ [30, 40]`` over 1,000 units; we integrate with a fourth-order
Runge–Kutta scheme and subsample to the requested length.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.base import TimeSeriesDataset
from repro.graph.causal_graph import TemporalCausalGraph


def lorenz96_derivative(state: np.ndarray, forcing: float) -> np.ndarray:
    """Right-hand side of the Lorenz-96 ODE for a state vector."""
    return (np.roll(state, -1) - np.roll(state, 2)) * np.roll(state, 1) - state + forcing


def simulate_lorenz96(n_series: int = 10, length: int = 1000, forcing: float = 35.0,
                      dt: float = 0.01, subsample: int = 5, burn_in: int = 500,
                      noise_std: float = 0.0,
                      rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Integrate Lorenz-96 with RK4 and return an ``(N, length)`` array.

    Parameters
    ----------
    forcing:
        The chaos-controlling constant ``F`` (paper: uniform in [30, 40]).
    dt:
        Integration step.
    subsample:
        Keep one sample every ``subsample`` integration steps.
    noise_std:
        Optional observation noise added after integration.
    """
    if n_series < 4:
        raise ValueError("Lorenz-96 needs at least 4 variables")
    if length <= 0:
        raise ValueError("length must be positive")
    rng = rng or np.random.default_rng()
    state = forcing * np.ones(n_series) + rng.normal(0.0, 0.5, size=n_series)
    total_steps = burn_in + length * subsample
    trajectory = np.zeros((n_series, length))
    kept = 0
    for step in range(total_steps):
        k1 = lorenz96_derivative(state, forcing)
        k2 = lorenz96_derivative(state + 0.5 * dt * k1, forcing)
        k3 = lorenz96_derivative(state + 0.5 * dt * k2, forcing)
        k4 = lorenz96_derivative(state + dt * k3, forcing)
        state = state + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
        if step >= burn_in and (step - burn_in) % subsample == 0 and kept < length:
            trajectory[:, kept] = state
            kept += 1
    if noise_std > 0:
        trajectory = trajectory + rng.normal(0.0, noise_std, size=trajectory.shape)
    return trajectory


def lorenz96_graph(n_series: int = 10, include_self_loops: bool = True) -> TemporalCausalGraph:
    """Ground-truth coupling graph of the Lorenz-96 model.

    Variable ``i`` is driven by ``i-2``, ``i-1``, ``i+1`` (ring indices) and
    itself; every causal edge acts with delay 1 sampling slot.
    """
    graph = TemporalCausalGraph(n_series)
    for i in range(n_series):
        graph.add_edge((i - 2) % n_series, i, 1)
        graph.add_edge((i - 1) % n_series, i, 1)
        graph.add_edge((i + 1) % n_series, i, 1)
        if include_self_loops:
            graph.add_edge(i, i, 1)
    return graph


def lorenz96_dataset(n_series: int = 10, length: int = 1000,
                     forcing: Optional[float] = None, dt: float = 0.01,
                     subsample: int = 5, noise_std: float = 0.0,
                     include_self_loops: bool = True,
                     seed: Optional[int] = None) -> TimeSeriesDataset:
    """Lorenz-96 dataset with ground truth (paper: N=10, F∈[30, 40], len 1000)."""
    rng = np.random.default_rng(seed)
    if forcing is None:
        forcing = float(rng.uniform(30.0, 40.0))
    values = simulate_lorenz96(n_series=n_series, length=length, forcing=forcing,
                               dt=dt, subsample=subsample, noise_std=noise_std, rng=rng)
    graph = lorenz96_graph(n_series, include_self_loops=include_self_loops)
    return TimeSeriesDataset(
        values=values,
        name="lorenz96",
        graph=graph,
        metadata={
            "forcing": forcing,
            "dt": dt,
            "subsample": subsample,
            "noise_std": noise_std,
            "seed": seed,
            "generator": "lorenz96",
        },
    )
