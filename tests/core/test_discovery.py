"""End-to-end CausalFormer facade (integration tests on small datasets)."""

import numpy as np
import pytest

from repro.core import CausalFormer, fast_preset
from repro.data import fork_dataset
from repro.graph import TemporalCausalGraph, evaluate_discovery


class TestLifecycle:
    def test_not_fitted_initially(self):
        model = CausalFormer(fast_preset())
        assert not model.is_fitted
        with pytest.raises(RuntimeError):
            model.interpret()
        with pytest.raises(RuntimeError):
            model.prediction_error()

    def test_discover_returns_graph(self, trained_causalformer, fork_data):
        graph = trained_causalformer.graph_
        assert isinstance(graph, TemporalCausalGraph)
        assert graph.n_series == fork_data.n_series
        assert graph.n_edges > 0

    def test_fitted_attributes_populated(self, trained_causalformer):
        assert trained_causalformer.is_fitted
        assert trained_causalformer.history_ is not None
        assert trained_causalformer.scores_ is not None
        assert trained_causalformer.model_ is not None

    def test_training_reduced_loss(self, trained_causalformer):
        history = trained_causalformer.history_
        assert history.train_loss[-1] < history.train_loss[0]

    def test_discovery_beats_chance(self, trained_causalformer, fork_data):
        """F1 of the discovered graph must beat the empty graph and random guessing."""
        scores = evaluate_discovery(trained_causalformer.graph_, fork_data.graph)
        assert scores.f1 > 0.4

    def test_summary_keys(self, trained_causalformer):
        summary = trained_causalformer.summary()
        assert summary["fitted"] is True
        assert "n_edges" in summary and "epochs" in summary

    def test_prediction_error_positive(self, trained_causalformer):
        assert trained_causalformer.prediction_error() > 0.0


class TestInputHandling:
    def test_accepts_plain_array(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(3, 120))
        model = CausalFormer(fast_preset(max_epochs=3))
        graph = model.discover(values)
        assert graph.n_series == 3

    def test_rejects_short_series(self):
        model = CausalFormer(fast_preset())
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 5)))

    def test_rejects_one_dimensional_input(self):
        model = CausalFormer(fast_preset())
        with pytest.raises(ValueError):
            model.fit(np.zeros(100))

    def test_series_names_carried_to_graph(self, fork_data):
        model = CausalFormer(fast_preset(max_epochs=3))
        dataset = fork_data
        dataset.series_names = ["alpha", "beta", "gamma"]
        graph = model.discover(dataset)
        assert graph.names == ["alpha", "beta", "gamma"]

    def test_detector_window_limit_respected(self, fork_data):
        model = CausalFormer(fast_preset(max_epochs=3, max_detector_windows=10))
        model.fit(fork_data)
        windows = model._detector_windows(model._fitted_values)
        assert windows.shape[0] <= 10


class TestRefitHygiene:
    def test_unfitted_state_is_none(self):
        model = CausalFormer(fast_preset())
        assert model._fitted_values is None
        assert model.graph_ is None and model.scores_ is None and model.history_ is None

    def test_refit_clears_stale_discovery_results(self, fork_data):
        model = CausalFormer(fast_preset(max_epochs=3))
        model.discover(fork_data)
        assert model.graph_ is not None
        model.fit(fork_data)
        # fit() alone must not leave the previous run's discovery visible.
        assert model.graph_ is None and model.scores_ is None
        assert "n_edges" not in model.summary()

    def test_failed_refit_does_not_keep_stale_state(self, fork_data):
        model = CausalFormer(fast_preset(max_epochs=3))
        model.discover(fork_data)
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 5)))  # shorter than the window
        assert not model.is_fitted
        assert model.summary()["fitted"] is False
        assert model.graph_ is None and model._fitted_values is None


class TestAblationsRun:
    @pytest.mark.parametrize("kwargs", [
        {"use_interpretation": False},
        {"use_relevance": False},
        {"use_gradient": False},
        {"use_bias": False},
    ])
    def test_each_ablation_produces_a_graph(self, fork_data, kwargs):
        model = CausalFormer(fast_preset(max_epochs=4), **kwargs)
        graph = model.discover(fork_data)
        assert graph.n_series == fork_data.n_series
