"""Pytest root conftest: make ``src/`` importable without installation.

The production way to use this project is ``pip install -e .``; in offline
environments without the ``wheel`` package that command cannot complete, so
this conftest keeps the test and benchmark suites runnable straight from a
checkout.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
