"""Generic experiment runner."""

import numpy as np
import pytest

from repro.data import fork_dataset
from repro.experiments import (
    ExperimentSpec,
    MethodSpec,
    causalformer_spec,
    default_method_specs,
    evaluate_methods,
    run_method_on_dataset,
)
from repro.graph import TemporalCausalGraph


class _OracleMethod:
    """Returns the ground-truth graph (for testing the runner plumbing)."""

    name = "oracle"

    def __init__(self, dataset):
        self._dataset = dataset

    def discover(self, data):
        return self._dataset.graph.copy()


class _EmptyMethod:
    name = "empty"

    def discover(self, data):
        return TemporalCausalGraph(data.n_series)


class TestRunMethodOnDataset:
    def test_oracle_scores_perfectly(self):
        dataset = fork_dataset(seed=0, length=120)
        scores = run_method_on_dataset(_OracleMethod(dataset), dataset)
        assert scores.f1 == 1.0
        assert scores.precision_of_delay == 1.0

    def test_empty_method_scores_zero(self):
        dataset = fork_dataset(seed=0, length=120)
        scores = run_method_on_dataset(_EmptyMethod(), dataset)
        assert scores.f1 == 0.0

    def test_missing_ground_truth_rejected(self):
        dataset = fork_dataset(seed=0, length=120)
        dataset.graph = None
        with pytest.raises(ValueError):
            run_method_on_dataset(_EmptyMethod(), dataset)


class TestEvaluateMethods:
    def test_table_filled_for_each_method_and_seed(self):
        datasets = {}

        def factory(seed):
            datasets[seed] = fork_dataset(seed=seed, length=120)
            return datasets[seed]

        experiment = ExperimentSpec("fork", factory, seeds=(0, 1))
        methods = [MethodSpec("oracle", lambda seed: _OracleMethod(datasets[seed])),
                   MethodSpec("empty", lambda seed: _EmptyMethod())]
        table = evaluate_methods([experiment], methods, metric="f1")
        assert table.rows == ["fork"]
        assert set(table.columns) == {"oracle", "empty"}
        assert len(table.cell("fork", "oracle").values) == 2
        assert table.mean("fork", "oracle") == 1.0
        assert table.mean("fork", "empty") == 0.0

    def test_best_column_is_oracle(self):
        datasets = {}

        def factory(seed):
            datasets[seed] = fork_dataset(seed=seed, length=120)
            return datasets[seed]

        experiment = ExperimentSpec("fork", factory, seeds=(0,))
        methods = [MethodSpec("empty", lambda seed: _EmptyMethod()),
                   MethodSpec("oracle", lambda seed: _OracleMethod(datasets[seed]))]
        table = evaluate_methods([experiment], methods)
        assert table.best_column("fork") == "oracle"


class TestExecutorDispatch:
    def _experiment(self):
        return ExperimentSpec("fork",
                              lambda seed: fork_dataset(seed=seed, length=140),
                              seeds=(0, 1))

    def _methods(self):
        return [MethodSpec("var_granger"),
                MethodSpec("cmlp", config={"epochs": 4})]

    def test_registry_specs_are_schedulable(self):
        assert all(spec.is_schedulable for spec in self._methods())
        assert not MethodSpec("oracle", lambda seed: _EmptyMethod()).is_schedulable

    def test_parallel_cached_sweep_matches_serial(self, tmp_path):
        serial = evaluate_methods([self._experiment()], self._methods())
        parallel = evaluate_methods([self._experiment()], self._methods(),
                                    max_workers=2, cache=str(tmp_path))
        cached = evaluate_methods([self._experiment()], self._methods(),
                                  cache=str(tmp_path))
        assert serial.to_dict() == parallel.to_dict() == cached.to_dict()

    def test_mixed_factory_and_registry_specs(self, tmp_path):
        datasets = {}

        def factory(seed):
            datasets[seed] = fork_dataset(seed=seed, length=140)
            return datasets[seed]

        experiment = ExperimentSpec("fork", factory, seeds=(0,))
        methods = [MethodSpec("var_granger"),
                   MethodSpec("oracle", lambda seed: _OracleMethod(datasets[seed]))]
        table = evaluate_methods([experiment], methods, cache=str(tmp_path))
        assert set(table.columns) == {"var_granger", "oracle"}
        assert table.mean("fork", "oracle") == 1.0

    def test_job_failure_names_the_cell(self):
        experiment = self._experiment()
        methods = [MethodSpec("broken", method="causalformer",
                              config={"window": 10_000})]
        with pytest.raises(RuntimeError, match="broken on fork"):
            evaluate_methods([experiment], methods, max_workers=2)

    def test_missing_ground_truth_raises_on_every_path(self, tmp_path):
        def factory(seed):
            dataset = fork_dataset(seed=seed, length=140)
            dataset.graph = None
            return dataset

        experiment = ExperimentSpec("fork", factory, seeds=(0,))
        methods = [MethodSpec("var_granger")]
        with pytest.raises(ValueError, match="no ground-truth"):
            evaluate_methods([experiment], methods)
        with pytest.raises(ValueError, match="no ground-truth"):
            evaluate_methods([experiment], methods, max_workers=2,
                             cache=str(tmp_path))

    def test_invalid_worker_count_surfaces(self):
        with pytest.raises(ValueError, match="max_workers"):
            evaluate_methods([self._experiment()], self._methods(), max_workers=0)


class TestMethodSpecs:
    def test_default_line_up(self):
        specs = default_method_specs(fast=True)
        names = [spec.name for spec in specs]
        assert names == ["cmlp", "clstm", "tcdf", "dvgnn", "cuts", "causalformer"]

    def test_causalformer_excluded_when_asked(self):
        names = [spec.name for spec in default_method_specs(include_causalformer=False)]
        assert "causalformer" not in names

    def test_causalformer_spec_propagates_seed(self):
        spec = causalformer_spec()
        model = spec.build(seed=17)
        assert model.config.seed == 17

    def test_method_factories_build_fresh_instances(self):
        spec = default_method_specs(fast=True)[0]
        assert spec.build(0) is not spec.build(0)
