"""End-to-end CausalFormer: the public facade of this reproduction.

Usage::

    from repro.core import CausalFormer, fast_preset
    from repro.data import diamond_dataset

    dataset = diamond_dataset(seed=0)
    model = CausalFormer(fast_preset())
    graph = model.discover(dataset)
    print(graph.edges)

``fit`` trains the causality-aware transformer on the prediction task
(Sec. 4.1), ``discover`` additionally runs the decomposition-based causality
detector (Sec. 4.2) and returns the temporal causal graph.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

import numpy as np

from repro.core.config import CausalFormerConfig, fast_preset
from repro.core.detector import CausalScores, DecompositionCausalityDetector
from repro.core.training import Trainer, TrainingHistory
from repro.core.transformer import CausalityAwareTransformer
from repro.data.base import TimeSeriesDataset
from repro.data.windows import zscore_normalize
from repro.graph.causal_graph import TemporalCausalGraph

DataLike = Union[TimeSeriesDataset, np.ndarray]


class CausalFormer:
    """Interpretable transformer for temporal causal discovery.

    Parameters
    ----------
    config:
        Model and training configuration; a small fast preset is used when
        omitted.  ``config.n_series`` is filled in from the data at fit time.
    use_interpretation / use_relevance / use_gradient / use_bias:
        Detector ablation switches (paper Table 3); all true for the full
        method.
    normalize:
        Z-score normalise each series before windowing (recommended — the
        transformer's MSE loss otherwise favours high-variance series).
    """

    #: name used by the experiment harness result tables
    name = "causalformer"

    #: fit() accepts a FitCheckpointer — the executor only offers
    #: checkpoints to methods that declare support.
    supports_checkpoint = True

    def __init__(self, config: Optional[CausalFormerConfig] = None, *,
                 use_interpretation: bool = True,
                 use_relevance: bool = True,
                 use_gradient: bool = True,
                 use_bias: bool = True,
                 normalize: bool = True) -> None:
        self.config = config or fast_preset()
        self.use_interpretation = use_interpretation
        self.use_relevance = use_relevance
        self.use_gradient = use_gradient
        self.use_bias = use_bias
        self.normalize = normalize

        self.model_: Optional[CausalityAwareTransformer] = None
        self.history_: Optional[TrainingHistory] = None
        self.scores_: Optional[CausalScores] = None
        self.graph_: Optional[TemporalCausalGraph] = None
        self._fitted_values: Optional[np.ndarray] = None
        self._series_names = None

    # ------------------------------------------------------------------ #
    # Data handling
    # ------------------------------------------------------------------ #
    def _extract_values(self, data: DataLike) -> np.ndarray:
        if isinstance(data, TimeSeriesDataset):
            self._series_names = list(data.series_names)
            values = data.values
        else:
            values = np.asarray(data, dtype=float)
            if values.ndim != 2:
                raise ValueError("expected an (n_series, n_timesteps) array")
            self._series_names = None
        if values.shape[1] <= self.config.window:
            raise ValueError(
                f"the series ({values.shape[1]} steps) must be longer than the window "
                f"({self.config.window})"
            )
        if self.normalize:
            values = zscore_normalize(values)
        return values

    def _detector_windows(self, values: np.ndarray) -> np.ndarray:
        """A bounded, evenly-spaced subset of windows for interpretation."""
        from repro.data.windows import sliding_windows

        windows = sliding_windows(values, self.config.window, self.config.window_stride)
        limit = self.config.max_detector_windows
        if windows.shape[0] > limit:
            picks = np.linspace(0, windows.shape[0] - 1, limit).astype(int)
            windows = windows[picks]
        return windows

    # ------------------------------------------------------------------ #
    # Fitting and discovery
    # ------------------------------------------------------------------ #
    def prepare_fit(self, data: DataLike) -> np.ndarray:
        """Reset fitted state and build the (untrained) model for ``data``.

        Returns the normalised values the trainer should consume.  Splitting
        this from :meth:`fit` lets the batched sweep runner
        (:mod:`repro.service.batched`) train several prepared models in one
        stacked pass; afterwards it hands the history back via
        :meth:`finalize_fit`.
        """
        # Reset all fitted state first so a refit (or a failed refit) never
        # leaves a previous run's discovery results visible via summary().
        self.model_ = None
        self.history_ = None
        self.scores_ = None
        self.graph_ = None
        self._fitted_values = None
        values = self._extract_values(data)
        config = replace(self.config, n_series=values.shape[0])
        self.config = config
        self.model_ = CausalityAwareTransformer(config)
        return values

    def finalize_fit(self, values: np.ndarray,
                     history: TrainingHistory) -> "CausalFormer":
        """Adopt an externally produced training history (batched training)."""
        self.history_ = history
        self._fitted_values = values
        return self

    def fit(self, data: DataLike, verbose: bool = False,
            checkpoint=None) -> "CausalFormer":
        """Train the causality-aware transformer on the prediction task.

        ``checkpoint`` (an optional
        :class:`~repro.service.checkpoint.FitCheckpointer`) enables
        periodic snapshot/resume of the training state — see
        :meth:`repro.core.training.Trainer.fit`.
        """
        values = self.prepare_fit(data)
        trainer = Trainer(self.model_, self.config)
        return self.finalize_fit(
            values, trainer.fit(values, verbose=verbose,
                                checkpoint=checkpoint))

    def build_detector(self) -> DecompositionCausalityDetector:
        """The causality detector for the trained model (ablation flags applied).

        Split out of :meth:`interpret` so the batched sweep runner
        (:mod:`repro.service.batched`) can interpret a whole group of
        trained models in one stacked pass
        (:func:`repro.core.detector.compute_scores_group`).
        """
        if self.model_ is None:
            raise RuntimeError("call fit() before interpret()")
        return DecompositionCausalityDetector(
            self.model_, self.config,
            use_interpretation=self.use_interpretation,
            use_relevance=self.use_relevance,
            use_gradient=self.use_gradient,
            use_bias=self.use_bias,
        )

    def detector_windows(self) -> np.ndarray:
        """The bounded window subset interpretation runs on (post ``fit``)."""
        if self._fitted_values is None:
            raise RuntimeError("call fit() before interpret()")
        return self._detector_windows(self._fitted_values)

    def adopt_interpretation(self, detector: DecompositionCausalityDetector,
                             scores: CausalScores) -> TemporalCausalGraph:
        """Adopt externally computed causal scores (batched interpretation)."""
        self.scores_ = scores
        self.graph_ = detector.build_graph(scores,
                                           series_names=self._series_names)
        return self.graph_

    def interpret(self) -> TemporalCausalGraph:
        """Run the causality detector on the trained model."""
        detector = self.build_detector()
        windows = self.detector_windows()
        self.graph_, self.scores_ = detector.detect(windows, series_names=self._series_names)
        return self.graph_

    def discover(self, data: DataLike, verbose: bool = False,
                 checkpoint=None) -> TemporalCausalGraph:
        """Train and interpret in one call; returns the temporal causal graph."""
        self.fit(data, verbose=verbose, checkpoint=checkpoint)
        return self.interpret()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self.model_ is not None

    def prediction_error(self, data: Optional[DataLike] = None) -> float:
        """Window-prediction MSE of the trained transformer."""
        if self.model_ is None:
            raise RuntimeError("call fit() first")
        if data is None:
            values = self._fitted_values
        else:
            values = self._extract_values(data)
        windows = self._detector_windows(values)
        return self.model_.prediction_error(windows)

    def summary(self) -> dict:
        """Human-readable summary of the fitted model and discovery result."""
        payload = {
            "fitted": self.is_fitted,
            "config": self.config.to_dict(),
        }
        if self.history_ is not None:
            payload["epochs"] = self.history_.n_epochs
            payload["best_validation_loss"] = self.history_.best_validation_loss
        if self.graph_ is not None:
            payload["n_edges"] = self.graph_.n_edges
        return payload
