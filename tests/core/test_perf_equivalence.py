"""Numerical-equivalence regression tests for the vectorized hot paths.

Each fused/vectorized implementation is compared against an independent
reference built the way the pre-optimization engine computed it: slice-and-
stack convolution windows, a Python loop over attention heads, separate
linear/activation/loss nodes.  A float32-vs-float64 gradcheck parity test
guards the reduced-precision training default.
"""

import numpy as np
import pytest

from repro.core.attention import MultiVariateCausalAttention
from repro.core.config import CausalFormerConfig
from repro.core.convolution import MultiKernelCausalConvolution
from repro.core.embedding import TimeSeriesEmbedding
from repro.core.transformer import CausalityAwareTransformer
from repro.nn import functional as F
from repro.nn import tensor as T
from repro.nn.tensor import Tensor, default_dtype


def reference_windows(x: np.ndarray) -> np.ndarray:
    """The seed implementation: left-pad and stack T slices."""
    batch, n_series, window = x.shape
    padded = np.pad(x, ((0, 0), (0, 0), (window, 0)))
    return np.stack([padded[:, :, t + 1:t + 1 + window] for t in range(window)],
                    axis=2)


class TestSlidingWindows:
    def test_strided_windows_match_slice_stack_reference(self):
        x = np.random.default_rng(0).normal(size=(3, 4, 7))
        out = F.sliding_window(Tensor(x), 7)
        np.testing.assert_array_equal(out.data, reference_windows(x))

    def test_sliding_window_gradient_matches_stack_reference(self):
        rng = np.random.default_rng(1)
        x_data = rng.normal(size=(2, 3, 5))
        weights = rng.normal(size=(2, 3, 5, 5))

        x_fast = Tensor(x_data, requires_grad=True)
        (F.sliding_window(x_fast, 5) * Tensor(weights)).sum().backward()

        x_ref = Tensor(x_data, requires_grad=True)
        padded = T.pad(x_ref, ((0, 0), (0, 0), (5, 0)))
        stacked = T.stack([padded[:, :, t + 1:t + 6] for t in range(5)], axis=2)
        (stacked * Tensor(weights)).sum().backward()

        np.testing.assert_allclose(x_fast.grad, x_ref.grad, atol=1e-12)

    def test_convolution_windows_helper_uses_strided_view(self):
        conv = MultiKernelCausalConvolution(2, 4, rng=np.random.default_rng(2))
        x = np.random.default_rng(3).normal(size=(1, 2, 4))
        np.testing.assert_array_equal(conv.convolution_windows(x),
                                      reference_windows(x))


class TestFusedCausalConv:
    def _reference_forward(self, x, kernel, scale):
        windows = reference_windows(x)
        raw = np.einsum("bitk,ijk->bijt", windows, kernel) * scale
        n = x.shape[1]
        diag = np.arange(n)
        shifted = raw.copy()
        shifted[:, diag, diag, 1:] = raw[:, diag, diag, :-1]
        shifted[:, diag, diag, 0] = 0.0
        return shifted

    def test_forward_matches_reference(self):
        rng = np.random.default_rng(4)
        conv = MultiKernelCausalConvolution(3, 6, rng=rng)
        x = rng.normal(size=(2, 3, 6))
        expected = self._reference_forward(x, conv.kernel.data,
                                           np.asarray(conv._scale))
        np.testing.assert_allclose(conv(Tensor(x)).data, expected, atol=1e-10)

    def test_gradients_match_autograd_composition(self):
        rng = np.random.default_rng(5)
        conv = MultiKernelCausalConvolution(2, 5, rng=rng)
        x_data = rng.normal(size=(3, 2, 5))
        weights = rng.normal(size=(3, 2, 2, 5))

        x_fast = Tensor(x_data, requires_grad=True)
        conv.zero_grad()
        (conv(x_fast) * Tensor(weights)).sum().backward()
        fast_kernel_grad = conv.kernel.grad.copy()
        fast_x_grad = x_fast.grad.copy()

        # Reference: compose the same computation from generic autograd ops.
        x_ref = Tensor(x_data, requires_grad=True)
        kernel = Tensor(conv.kernel.data.copy(), requires_grad=True)
        padded = T.pad(x_ref, ((0, 0), (0, 0), (5, 0)))
        stacked = T.stack([padded[:, :, t + 1:t + 6] for t in range(5)], axis=2)
        raw = T.einsum("bitk,ijk->bijt", stacked, kernel)
        scaled = raw * Tensor(np.asarray(conv._scale))
        shifted = F.diagonal_right_shift(scaled)
        (shifted * Tensor(weights)).sum().backward()

        np.testing.assert_allclose(fast_kernel_grad, kernel.grad, atol=1e-10)
        np.testing.assert_allclose(fast_x_grad, x_ref.grad, atol=1e-10)

    def test_diagonal_right_shift_matches_mask_composition(self):
        rng = np.random.default_rng(6)
        values = rng.normal(size=(2, 3, 3, 4))
        n = 3
        diag = np.eye(n).reshape(n, n, 1)
        zeros = np.zeros((2, n, n, 1))
        shifted = np.concatenate([zeros, values[:, :, :, :-1]], axis=3)
        expected = diag * shifted + (1.0 - diag) * values
        out = F.diagonal_right_shift(Tensor(values))
        np.testing.assert_allclose(out.data, expected, atol=1e-12)


class TestBatchedAttention:
    def _blocks(self, n=3, t=6, d=8, heads=3, seed=7):
        rng = np.random.default_rng(seed)
        embedding = TimeSeriesEmbedding(t, d, rng=rng)
        convolution = MultiKernelCausalConvolution(n, t, rng=rng)
        attention = MultiVariateCausalAttention(n, d, d, heads, 1.0, rng=rng)
        x = Tensor(rng.normal(size=(4, n, t)))
        return embedding(x), convolution(x), attention

    def test_batched_heads_match_per_head_loop(self):
        emb, vals, attention = self._blocks()
        combined, caches = attention(emb, vals)
        # Reference: run each head standalone (the original per-head path).
        reference = sum(
            attention.w_output.data[index]
            * head(emb, vals).head_output_data
            for index, head in enumerate(attention.heads))
        np.testing.assert_allclose(combined.data, reference, atol=1e-9)
        for index, head in enumerate(attention.heads):
            head_cache = head(emb, vals)
            np.testing.assert_allclose(caches[index].attention_data,
                                       head_cache.attention_data, atol=1e-9)
            np.testing.assert_allclose(caches[index].head_output_data,
                                       head_cache.head_output_data, atol=1e-9)

    def test_fast_path_matches_cache_path(self):
        emb, vals, attention = self._blocks(seed=8)
        cached, _ = attention(emb, vals, collect_caches=True)
        fast, caches = attention(emb, vals, collect_caches=False)
        assert caches == []
        np.testing.assert_allclose(fast.data, cached.data, atol=1e-9)

    def test_per_head_attention_gradients_flow_in_batched_path(self):
        emb, vals, attention = self._blocks(seed=9)
        combined, caches = attention(emb, vals)
        combined.sum().backward()
        for cache in caches:
            assert cache.attention.grad is not None
            assert np.isfinite(cache.attention.grad).all()


class TestTransformerFastPath:
    @pytest.fixture()
    def tiny_model(self):
        config = CausalFormerConfig(n_series=3, window=8, d_model=10, d_qk=10,
                                    d_ffn=12, n_heads=2, seed=0)
        return CausalityAwareTransformer(config)

    def test_training_forward_matches_cache_forward(self, tiny_model):
        x = np.random.default_rng(10).normal(size=(4, 3, 8))
        fast, no_cache = tiny_model(Tensor(x))
        slow, cache = tiny_model(Tensor(x), return_cache=True)
        assert no_cache is None
        assert cache is not None
        np.testing.assert_allclose(fast.data, slow.data, atol=1e-9)

    def test_fused_loss_matches_composition(self, tiny_model):
        rng = np.random.default_rng(11)
        x = rng.normal(size=(4, 3, 8))
        prediction, _ = tiny_model(Tensor(x))
        loss = tiny_model.loss(prediction, Tensor(x))
        config = tiny_model.config
        mse = float(np.mean(
            (prediction.data[:, :, 1:] - x[:, :, 1:]) ** 2))
        expected = mse \
            + config.lambda_kernel * np.abs(tiny_model.convolution.kernel.data).sum() \
            + config.lambda_mask * sum(np.abs(h.mask.data).sum()
                                       for h in tiny_model.attention.heads)
        assert float(loss.data) == pytest.approx(expected, rel=1e-8)

    def test_training_step_gradients_match_cache_path(self, tiny_model):
        """The fused fast path must produce the same parameter gradients."""
        x = np.random.default_rng(12).normal(size=(4, 3, 8))

        tiny_model.zero_grad()
        prediction, _ = tiny_model(Tensor(x))
        tiny_model.loss(prediction, Tensor(x)).backward()
        fast_grads = {name: p.grad.copy()
                      for name, p in tiny_model.named_parameters()}

        tiny_model.zero_grad()
        prediction, _ = tiny_model(Tensor(x), return_cache=True)
        tiny_model.loss(prediction, Tensor(x)).backward()
        for name, parameter in tiny_model.named_parameters():
            np.testing.assert_allclose(
                fast_grads[name], parameter.grad, atol=1e-9,
                err_msg=f"gradient mismatch for {name}")


class TestDetectorFollowsLiveModel:
    def test_float64_twin_resyncs_before_each_scoring(self):
        """A detector built before training must see the trained weights."""
        from repro.core.detector import DecompositionCausalityDetector

        config = CausalFormerConfig(n_series=2, window=6, d_model=8, d_qk=8,
                                    d_ffn=8, n_heads=2, seed=0)
        with default_dtype(np.float32):
            model = CausalityAwareTransformer(config)
            detector = DecompositionCausalityDetector(model, config)
            windows = np.random.default_rng(20).normal(size=(3, 2, 6))
            before = detector.compute_scores(windows)
            # Mutate the source model (stands in for a training run).
            for parameter in model.parameters():
                parameter.data = parameter.data + np.float32(0.05)
            after = detector.compute_scores(windows)
        for twin_param, source_param in zip(detector.model.parameters(),
                                            model.parameters()):
            np.testing.assert_allclose(twin_param.data, source_param.data,
                                       atol=1e-7)
        assert not np.allclose(before.attention, after.attention)


class TestDtypeParity:
    def _grads(self, dtype, x):
        with default_dtype(dtype):
            config = CausalFormerConfig(n_series=2, window=6, d_model=8,
                                        d_qk=8, d_ffn=8, n_heads=2, seed=0)
            model = CausalityAwareTransformer(config)
            prediction, _ = model(Tensor(np.asarray(x, dtype=dtype)))
            model.loss(prediction, Tensor(np.asarray(x, dtype=dtype))).backward()
            return {name: p.grad.copy() for name, p in model.named_parameters()}

    def test_float32_gradients_track_float64_reference(self):
        """Gradcheck parity: float32 training grads ≈ float64 reference."""
        x = np.random.default_rng(13).normal(size=(4, 2, 6))
        grads32 = self._grads(np.float32, x)
        grads64 = self._grads(np.float64, x)
        assert set(grads32) == set(grads64)
        for name in grads64:
            reference = grads64[name]
            scale = max(np.abs(reference).max(), 1e-6)
            np.testing.assert_allclose(
                grads32[name].astype(np.float64) / scale, reference / scale,
                atol=5e-4, err_msg=f"dtype parity failed for {name}")
            assert grads32[name].dtype == np.float32

    def test_numeric_gradcheck_float64_on_fused_ops(self):
        """Central-difference check of the fused conv+attention forward."""
        from tests.conftest import numeric_gradient

        rng = np.random.default_rng(14)
        conv = MultiKernelCausalConvolution(2, 4, rng=rng)
        x0 = rng.normal(size=(1, 2, 4))

        def scalar(values):
            from repro.nn.tensor import no_grad
            with no_grad():
                return float((conv(Tensor(values.copy()))
                              * Tensor(weights)).sum().data)

        weights = rng.normal(size=(1, 2, 2, 4))
        x = Tensor(x0.copy(), requires_grad=True)
        (conv(x) * Tensor(weights)).sum().backward()
        numeric = numeric_gradient(scalar, x0.copy())
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6)
