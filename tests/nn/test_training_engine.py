"""The fused no-autograd training engine must replicate autograd exactly.

Gradcheck-style parity: the hand-derived :class:`TrainingEngine` /
:class:`StackedTrainingEngine` backward passes are transcriptions of the
fused autograd ops' closures, so their gradients — and whole training
trajectories — must be **bit-identical** to the autograd fast path they
replaced, across the full Table 3 ablation grid (including the
single-kernel ablation) in float64, and on the default float32 engine too
(same operation sequence, same rounding).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.batched import StackedCausalFormerTrainer
from repro.core.config import CausalFormerConfig
from repro.core.training import Trainer
from repro.core.transformer import CausalityAwareTransformer
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, default_dtype
from repro.nn.training_engine import TrainingEngine


def make_config(**overrides):
    base = dict(n_series=4, window=10, d_model=14, d_qk=14, d_ffn=14,
                n_heads=3, seed=0, max_epochs=5, batch_size=8,
                window_stride=2, patience=3)
    base.update(overrides)
    return CausalFormerConfig(**base)


#: the training-relevant Table 3 ablation grid (the remaining Table 3
#: switches are detector flags and never touch a training step), plus the
#: penalty/head axes that change the backward's accumulation structure
ABLATION_GRID = [
    {},
    {"single_kernel": True},
    {"lambda_kernel": 0.0},
    {"lambda_mask": 0.0},
    {"lambda_kernel": 0.0, "lambda_mask": 0.0},
    {"n_heads": 1},
    {"single_kernel": True, "n_heads": 1},
    {"temperature": 2.5},
]


def autograd_gradients(model, batch_np):
    """Reference gradients from one autograd fast-path step."""
    batch = Tensor(batch_np)
    model.zero_grad()
    prediction, _ = model(batch)
    loss = model.loss(prediction, batch)
    loss.backward()
    grads = {name: parameter.grad.copy()
             for name, parameter in model.named_parameters()}
    model.zero_grad()
    return float(loss.data), grads


def legacy_fit(model, config, values):
    """The pre-engine autograd mini-batch loop, transcribed verbatim."""
    trainer = Trainer(model, config)

    def run_epoch(self, windows, rng):
        order = rng.permutation(windows.shape[0])
        losses = []
        for start in range(0, len(order), self.config.batch_size):
            batch = Tensor(windows[order[start:start + self.config.batch_size]])
            self.optimizer.zero_grad()
            prediction, _ = self.model(batch)
            loss = self.model.loss(prediction, batch)
            loss.backward()
            self.optimizer.step()
            losses.append(float(loss.data))
        return float(np.mean(losses)) if losses else float("nan")

    trainer._run_epoch = run_epoch.__get__(trainer, Trainer)
    return trainer.fit(values)


def training_series(seed, n_series=4, length=150):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(n_series, length)).cumsum(axis=1)
    values -= values.mean(axis=1, keepdims=True)
    values /= values.std(axis=1, keepdims=True) + 1e-9
    return values


class TestGradientParity:
    """Engine gradients == autograd gradients, to the bit."""

    @pytest.mark.parametrize("overrides", ABLATION_GRID)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_gradients_bit_identical(self, overrides, dtype):
        with default_dtype(dtype):
            config = make_config(**overrides)
            model = CausalityAwareTransformer(config)
            batch = np.random.default_rng(1).normal(
                size=(8, config.n_series, config.window))
            reference_loss, reference = autograd_gradients(model, batch)
            engine = TrainingEngine(
                model, Adam(list(model.parameters()),
                            lr=config.learning_rate,
                            clip_norm=config.grad_clip))
            grads = engine.gradients(batch)
            assert set(grads) == set(reference)
            for name, expected in reference.items():
                assert np.array_equal(expected, grads[name]), name

    def test_loss_matches_autograd(self):
        config = make_config()
        model = CausalityAwareTransformer(config)
        batch = np.random.default_rng(2).normal(
            size=(6, config.n_series, config.window))
        reference_loss, _grads = autograd_gradients(model, batch)
        engine = TrainingEngine(
            model, Adam(list(model.parameters()), lr=config.learning_rate))
        loss = engine.forward_backward(engine.prepare_windows(batch))
        assert loss == reference_loss

    def test_partial_batch_uses_its_own_space(self):
        """A trailing short batch must not corrupt the full-batch buffers."""
        config = make_config()
        model = CausalityAwareTransformer(config)
        engine = TrainingEngine(
            model, Adam(list(model.parameters()), lr=config.learning_rate))
        rng = np.random.default_rng(3)
        full = rng.normal(size=(8, config.n_series, config.window))
        short = rng.normal(size=(3, config.n_series, config.window))
        for batch in (full, short, full):
            reference_loss, reference = autograd_gradients(model, batch)
            grads = engine.gradients(batch)
            for name, expected in reference.items():
                assert np.array_equal(expected, grads[name]), name


class TestFitParity:
    """Whole training runs match the pre-engine autograd loop exactly."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("single_kernel", [False, True])
    def test_fit_bit_identical_to_autograd_loop(self, dtype, single_kernel):
        with default_dtype(dtype):
            config = make_config(window=12, single_kernel=single_kernel)
            values = training_series(5)
            reference_model = CausalityAwareTransformer(config)
            reference = legacy_fit(reference_model, config, values)
            model = CausalityAwareTransformer(config)
            history = Trainer(model, config).fit(values)
            assert history.train_loss == reference.train_loss
            assert history.validation_loss == reference.validation_loss
            assert history.best_epoch == reference.best_epoch
            assert history.best_validation_loss \
                == reference.best_validation_loss
            for (name, parameter), (_n, expected) in zip(
                    model.named_parameters(),
                    reference_model.named_parameters()):
                assert np.array_equal(parameter.data, expected.data), name

    def test_fit_deterministic_across_runs(self):
        """Fixed seed ⇒ identical histories and weights (guards the
        shuffle/index-view mini-batch refactor)."""
        config = make_config(max_epochs=4)
        values = training_series(7)

        def run():
            model = CausalityAwareTransformer(config)
            history = Trainer(model, config).fit(values)
            return history, model.state_dict()

        history_a, state_a = run()
        history_b, state_b = run()
        assert history_a.train_loss == history_b.train_loss
        assert history_a.validation_loss == history_b.validation_loss
        for key in state_a:
            assert np.array_equal(state_a[key], state_b[key]), key


class TestStackedGradientParity:
    """Per-model stacked gradients == solo autograd gradients, to the bit."""

    @pytest.mark.parametrize("overrides", ABLATION_GRID)
    def test_stacked_gradients_bit_identical(self, overrides):
        configs = [make_config(seed=seed, **overrides) for seed in range(3)]
        reference_models = [CausalityAwareTransformer(config)
                            for config in configs]
        stacked_models = [CausalityAwareTransformer(config)
                          for config in configs]
        trainer = StackedCausalFormerTrainer(stacked_models)
        rng = np.random.default_rng(11)
        batches = [rng.normal(size=(8, configs[0].n_series,
                                    configs[0].window))
                   for _ in configs]
        references = [autograd_gradients(model, batch)
                      for model, batch in zip(reference_models, batches)]
        stacked_batch = np.stack(
            [np.asarray(batch, dtype=trainer.dtype) for batch in batches])
        losses, _grads = trainer._forward_backward(stacked_batch)
        for row, (reference_loss, reference) in enumerate(references):
            assert losses[row] == reference_loss
            for name, expected in reference.items():
                assert np.array_equal(expected,
                                      trainer._grad_view(name)[row]), \
                    (row, name)


class TestEngineMechanics:
    def test_trainer_shares_one_arena_across_phases(self):
        config = make_config()
        trainer = Trainer(CausalityAwareTransformer(config), config)
        assert trainer._training.arena is trainer._inference.arena

    def test_stacked_trainer_shares_engine_with_validation(self):
        configs = [make_config(seed=seed) for seed in range(2)]
        models = [CausalityAwareTransformer(config) for config in configs]
        trainer = StackedCausalFormerTrainer(models)
        # The training engine *is* the stacked inference engine that runs
        # every validation pass; one arena backs both phases.
        from repro.nn.inference import StackedInferenceEngine

        assert isinstance(trainer.engine, StackedInferenceEngine)
        trainer.fit([training_series(seed + 40) for seed in range(2)])

    def test_steady_state_steps_reuse_buffers(self):
        config = make_config()
        model = CausalityAwareTransformer(config)
        engine = TrainingEngine(
            model, Adam(list(model.parameters()), lr=config.learning_rate))
        batch = engine.prepare_windows(np.random.default_rng(4).normal(
            size=(8, config.n_series, config.window)))
        engine.train_step(batch)
        engine.train_step(batch)
        identifiers = engine.arena.buffer_ids()
        for _ in range(3):
            engine.train_step(batch)
        assert engine.arena.buffer_ids() == identifiers

    def test_gradients_written_into_flat_adam_buffer(self):
        config = make_config()
        model = CausalityAwareTransformer(config)
        optimizer = Adam(list(model.parameters()), lr=config.learning_rate)
        engine = TrainingEngine(model, optimizer)
        batch = np.random.default_rng(6).normal(
            size=(4, config.n_series, config.window))
        grads = engine.gradients(batch)
        flat = optimizer.flat_gradient
        assert flat is not None
        offset = 0
        for _name, parameter in model.named_parameters():
            size = parameter.data.size
            view = flat[offset:offset + size]
            assert np.shares_memory(view, flat)
            offset += size
        assert offset == flat.size
        # The per-name copies must agree with the flat layout contents.
        rebuilt = np.concatenate(
            [grads[name].ravel() for name, _p in model.named_parameters()])
        assert np.array_equal(rebuilt, flat)

    def test_step_flat_matches_step(self):
        """ensure_flat + direct writes + step_flat == grads + step()."""
        config = make_config()
        model_a = CausalityAwareTransformer(config)
        model_b = CausalityAwareTransformer(config)
        batch = np.random.default_rng(8).normal(
            size=(4, config.n_series, config.window))
        # Path A: classic autograd grads + Adam.step().
        optimizer_a = Adam(list(model_a.parameters()),
                           lr=config.learning_rate,
                           clip_norm=config.grad_clip)
        tensor = Tensor(batch)
        prediction, _ = model_a(tensor)
        model_a.loss(prediction, tensor).backward()
        optimizer_a.step()
        # Path B: engine writes into the flat buffer + step_flat().
        optimizer_b = Adam(list(model_b.parameters()),
                           lr=config.learning_rate,
                           clip_norm=config.grad_clip)
        engine = TrainingEngine(model_b, optimizer_b)
        engine.train_step(engine.prepare_windows(batch))
        for (name, parameter_a), (_n, parameter_b) in zip(
                model_a.named_parameters(), model_b.named_parameters()):
            assert np.array_equal(parameter_a.data, parameter_b.data), name

    def test_step_flat_requires_ensure_flat(self):
        config = make_config()
        model = CausalityAwareTransformer(config)
        optimizer = Adam(list(model.parameters()), lr=1e-3)
        with pytest.raises(RuntimeError, match="ensure_flat"):
            optimizer.step_flat()
