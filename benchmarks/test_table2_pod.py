"""Benchmark E2 — regenerate Table 2 (precision of delay).

Paper reference values (Table 2, PoD):

=============  =====  =====  ============
dataset        cMLP   TCDF   CausalFormer
=============  =====  =====  ============
diamond        0.82   0.92   0.74
mediator       0.91   0.97   0.63
v_structure    0.91   1.00   0.59
fork           0.76   1.00   0.46
lorenz96       0.45   0.77   0.42
=============  =====  =====  ============

The paper's own finding is that CausalFormer *loses* on delay precision
(cMLP's hierarchical lag penalty and TCDF's dilated kernels localise delays
better, while CausalFormer weighs the whole window uniformly).  The shape we
assert is therefore: the best dedicated-delay baseline is at least as good as
CausalFormer on average.
"""

import numpy as np
import pytest

from repro.experiments import run_table2

from benchmarks.conftest import save_result

SEEDS = (0, 1)


def test_table2_precision_of_delay(run_once):
    table = run_once(run_table2, seeds=SEEDS, fast=True)
    print("\n" + table.render())
    save_result("table2_pod", table.to_dict())

    rows = table.rows
    assert rows, "Table 2 must contain at least one dataset row"
    for row in rows:
        for column in table.columns:
            values = table.cell(row, column).values
            assert all(0.0 <= v <= 1.0 for v in values)

    # Shape check: averaged over datasets, the best dedicated-delay baseline
    # (cMLP or TCDF) matches or beats CausalFormer, as in the paper.
    def column_mean(column):
        values = [table.mean(row, column) for row in rows
                  if table.cell(row, column).values]
        return float(np.mean(values)) if values else float("nan")

    baseline_best = np.nanmax([column_mean("cmlp"), column_mean("tcdf")])
    causalformer = column_mean("causalformer")
    if np.isfinite(baseline_best) and np.isfinite(causalformer):
        assert baseline_best >= causalformer - 0.1
