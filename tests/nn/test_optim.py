"""Optimiser behaviour: convergence, state handling, gradient clipping."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Parameter
from repro.nn.optim import Adam, Optimizer, SGD, clip_grad_norm_
from repro.nn.tensor import Tensor


def _linear_regression_loss(layer, inputs, targets):
    prediction = layer(Tensor(inputs)).squeeze(-1)
    return F.mse_loss(prediction, Tensor(targets))


def _make_problem(seed=0, n=80, d=4):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(n, d))
    true_weights = rng.normal(size=d)
    targets = inputs @ true_weights + 0.5
    return inputs, targets


class TestSgd:
    def test_reduces_loss(self):
        inputs, targets = _make_problem()
        layer = Linear(4, 1)
        optimizer = SGD(layer.parameters(), lr=0.05)
        first = None
        for _ in range(100):
            optimizer.zero_grad()
            loss = _linear_regression_loss(layer, inputs, targets)
            if first is None:
                first = float(loss.data)
            loss.backward()
            optimizer.step()
        assert float(loss.data) < first * 0.1

    def test_momentum_accelerates(self):
        inputs, targets = _make_problem(seed=1)

        def run(momentum):
            layer = Linear(4, 1, rng=np.random.default_rng(0))
            optimizer = SGD(layer.parameters(), lr=0.01, momentum=momentum)
            for _ in range(60):
                optimizer.zero_grad()
                loss = _linear_regression_loss(layer, inputs, targets)
                loss.backward()
                optimizer.step()
            return float(loss.data)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        parameter = Parameter(np.array([10.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        parameter.grad = np.array([0.0])
        optimizer.step()
        assert abs(parameter.data[0]) < 10.0

    def test_skips_parameters_without_grad(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1)
        optimizer.step()  # no gradient: must not raise nor change the value
        assert parameter.data[0] == 1.0

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.array([1.0]))], lr=0.0)


class TestAdam:
    def test_converges_on_regression(self):
        inputs, targets = _make_problem(seed=2)
        layer = Linear(4, 1)
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(200):
            optimizer.zero_grad()
            loss = _linear_regression_loss(layer, inputs, targets)
            loss.backward()
            optimizer.step()
        assert float(loss.data) < 1e-3

    def test_zero_grad_clears(self):
        layer = Linear(2, 1)
        optimizer = Adam(layer.parameters(), lr=0.01)
        _linear_regression_loss(layer, np.ones((4, 2)), np.ones(4)).backward()
        optimizer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())

    def test_step_count_affects_bias_correction(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = Adam([parameter], lr=0.1)
        parameter.grad = np.array([1.0])
        optimizer.step()
        first_update = 1.0 - parameter.data[0]
        # The very first Adam step should be close to the learning rate.
        assert first_update == pytest.approx(0.1, rel=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.array([1.0]))], betas=(1.0, 0.9))

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_weight_decay_applies(self):
        parameter = Parameter(np.array([5.0]))
        optimizer = Adam([parameter], lr=0.1, weight_decay=1.0)
        parameter.grad = np.array([0.0])
        optimizer.step()
        assert parameter.data[0] < 5.0


class TestGradientClipping:
    def test_clips_large_gradients(self):
        parameters = [Parameter(np.zeros(3)) for _ in range(2)]
        for parameter in parameters:
            parameter.grad = np.full(3, 10.0)
        norm_before = clip_grad_norm_(parameters, max_norm=1.0)
        assert norm_before > 1.0
        total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters))
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_leaves_small_gradients_untouched(self):
        parameter = Parameter(np.zeros(3))
        parameter.grad = np.full(3, 0.01)
        clip_grad_norm_([parameter], max_norm=10.0)
        np.testing.assert_allclose(parameter.grad, 0.01)

    def test_handles_missing_gradients(self):
        assert clip_grad_norm_([Parameter(np.zeros(3))], max_norm=1.0) == 0.0

    def test_base_optimizer_step_abstract(self):
        optimizer = Optimizer([Parameter(np.array([1.0]))])
        with pytest.raises(NotImplementedError):
            optimizer.step()
