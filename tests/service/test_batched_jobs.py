"""Batched sweep execution: grouping, result identity, fallback, caching."""

import pytest

from repro.service.batched import (batch_signature, execute_batched_jobs,
                                   group_batchable)
from repro.service.cache import ResultCache
from repro.service.executor import JobExecutor
from repro.service.jobs import DiscoveryJob, fingerprint_dataset
from repro.service.registry import build_dataset

CONFIG = {
    "window": 12, "d_model": 16, "d_qk": 16, "d_ffn": 16, "n_heads": 2,
    "batch_size": 16, "window_stride": 2, "max_epochs": 3, "patience": 1000,
    "max_detector_windows": 4,
}


def causalformer_pair(seed, length=160, dataset="fork", config=None):
    data = build_dataset(dataset, seed=seed, length=length)
    job = DiscoveryJob(method="causalformer", config=dict(config or CONFIG),
                       dataset=dataset, dataset_fingerprint=fingerprint_dataset(data),
                       seed=seed)
    return job, data


@pytest.fixture(scope="module")
def four_pairs():
    return [causalformer_pair(seed) for seed in range(4)]


class TestGrouping:
    def test_same_shape_jobs_share_signature(self, four_pairs):
        signatures = {batch_signature(job, data) for job, data in four_pairs}
        assert len(signatures) == 1

    def test_non_causalformer_not_batchable(self):
        data = build_dataset("fork", seed=0, length=160)
        job = DiscoveryJob(method="var_granger", dataset="fork",
                           dataset_fingerprint=fingerprint_dataset(data))
        assert batch_signature(job, data) is None

    def test_single_kernel_batchable(self):
        """Single-kernel ablation jobs group among themselves (their (1,1,T)
        kernel stacks trivially) but never with multi-kernel jobs."""
        config = dict(CONFIG, single_kernel=True)
        single_a = causalformer_pair(0, config=config)
        single_b = causalformer_pair(1, config=config)
        multi = causalformer_pair(0)
        sig_a = batch_signature(*single_a)
        assert sig_a is not None
        assert sig_a == batch_signature(*single_b)
        assert sig_a != batch_signature(*multi)

    def test_different_shapes_do_not_group(self, four_pairs):
        other = causalformer_pair(9, length=200)
        indexed = list(enumerate(four_pairs + [other]))
        groups, singles = group_batchable(indexed)
        assert len(groups) == 1 and len(groups[0]) == 4
        assert [index for index, _pair in singles] == [4]

    def test_lone_batchable_job_stays_single(self, four_pairs):
        indexed = [(0, four_pairs[0])]
        groups, singles = group_batchable(indexed)
        assert groups == [] and len(singles) == 1


class TestExecutionIdentity:
    @pytest.fixture(scope="class")
    def results(self, four_pairs):
        data = build_dataset("fork", seed=11, length=160)
        extra = (DiscoveryJob(method="var_granger", dataset="fork",
                              dataset_fingerprint=fingerprint_dataset(data)),
                 data)
        pairs = list(four_pairs) + [extra]
        sequential = JobExecutor(max_workers=1, cache=None).run(pairs)
        batched = JobExecutor(max_workers=1, cache=None,
                              batch_jobs=True).run(pairs)
        return sequential, batched

    def test_all_jobs_succeed(self, results):
        sequential, batched = results
        assert all(result.ok for result in sequential)
        assert all(result.ok for result in batched)

    def test_graphs_identical(self, results):
        sequential, batched = results
        for result_a, result_b in zip(sequential, batched):
            edges_a = sorted(edge.as_tuple() for edge in result_a.graph.edges)
            edges_b = sorted(edge.as_tuple() for edge in result_b.graph.edges)
            assert edges_a == edges_b

    def test_scores_identical(self, results):
        sequential, batched = results
        for result_a, result_b in zip(sequential, batched):
            assert result_a.scores.precision == result_b.scores.precision
            assert result_a.scores.recall == result_b.scores.recall
            assert result_a.scores.f1 == result_b.scores.f1

    def test_results_keep_request_order(self, results):
        _sequential, batched = results
        seeds = [result.job.seed for result in batched[:4]]
        assert seeds == [0, 1, 2, 3]
        assert batched[4].job.method == "var_granger"


class TestFallback:
    def test_stacked_failure_falls_back_to_sequential(self, four_pairs,
                                                      monkeypatch):
        import repro.core.batched as core_batched

        def explode(*_args, **_kwargs):
            raise RuntimeError("stacked training unavailable")

        monkeypatch.setattr(core_batched.StackedCausalFormerTrainer,
                            "__init__", explode)
        results = execute_batched_jobs(four_pairs)
        assert len(results) == 4
        assert all(result.ok for result in results)

    def test_per_job_graph_failure_is_captured(self, four_pairs, monkeypatch):
        from repro.core.detector import DecompositionCausalityDetector
        from repro.core.discovery import CausalFormer

        def explode(self, *args, **kwargs):
            raise RuntimeError("interpretation failed")

        # Kill both the per-job graph construction (stacked path) and the
        # per-job fallback so every job's failure is captured individually.
        monkeypatch.setattr(DecompositionCausalityDetector, "build_graph",
                            explode)
        monkeypatch.setattr(CausalFormer, "interpret", explode)
        results = execute_batched_jobs(four_pairs)
        assert len(results) == 4
        assert all(not result.ok for result in results)
        assert all("interpretation failed" in result.error
                   for result in results)
        assert [result.job.seed for result in results] == [0, 1, 2, 3]

    def test_stacked_interpretation_failure_falls_back_per_job(
            self, four_pairs, monkeypatch):
        import repro.core.detector as core_detector

        def explode(*_args, **_kwargs):
            raise RuntimeError("stacked interpretation unavailable")

        monkeypatch.setattr(core_detector, "compute_scores_group", explode)
        results = execute_batched_jobs(four_pairs)
        assert len(results) == 4
        assert all(result.ok for result in results)


class TestCaching:
    def test_batched_results_cached(self, four_pairs, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        executor = JobExecutor(max_workers=1, cache=cache, batch_jobs=True)
        first = executor.run(four_pairs)
        assert all(not result.cached for result in first)
        second = executor.run(four_pairs)
        assert all(result.cached for result in second)
        for result_a, result_b in zip(first, second):
            assert sorted(edge.as_tuple() for edge in result_a.graph.edges) \
                == sorted(edge.as_tuple() for edge in result_b.graph.edges)


class TestSingleKernelExecution:
    """Single-kernel ablation groups run stacked with identical results."""

    def test_single_kernel_group_identical_to_sequential(self):
        config = dict(CONFIG, single_kernel=True)
        pairs = [causalformer_pair(seed, config=config) for seed in range(2)]
        indexed = list(enumerate(pairs))
        groups, singles = group_batchable(indexed)
        assert len(groups) == 1 and not singles
        sequential = JobExecutor(max_workers=1, cache=None).run(pairs)
        batched = JobExecutor(max_workers=1, cache=None,
                              batch_jobs=True).run(pairs)
        for result_a, result_b in zip(sequential, batched):
            assert result_a.ok and result_b.ok
            edges_a = sorted(edge.as_tuple() for edge in result_a.graph.edges)
            edges_b = sorted(edge.as_tuple() for edge in result_b.graph.edges)
            assert edges_a == edges_b
            assert result_a.scores.f1 == result_b.scores.f1


class TestUnequalWindowCounts:
    """Same config on different-length datasets must not stack (their window
    counts differ), and the sweep still completes via the per-job path."""

    def test_unequal_lengths_stay_single_and_succeed(self):
        pairs = [causalformer_pair(0, length=160),
                 causalformer_pair(1, length=200)]
        indexed = list(enumerate(pairs))
        groups, singles = group_batchable(indexed)
        assert groups == [] and len(singles) == 2
        results = JobExecutor(max_workers=1, cache=None,
                              batch_jobs=True).run(pairs)
        assert all(result.ok for result in results)
        assert [result.job.seed for result in results] == [0, 1]

    def test_min_group_minus_one_stays_single(self):
        """A group of MIN_GROUP - 1 batchable jobs falls back to per-job
        dispatch (a stacked pass of one model is pure overhead)."""
        from repro.service.batched import MIN_GROUP

        pairs = [causalformer_pair(seed) for seed in range(MIN_GROUP - 1)]
        indexed = list(enumerate(pairs))
        groups, singles = group_batchable(indexed)
        assert groups == [] and len(singles) == MIN_GROUP - 1
        results = JobExecutor(max_workers=1, cache=None,
                              batch_jobs=True).run(pairs)
        assert all(result.ok for result in results)
