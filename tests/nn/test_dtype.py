"""Configurable engine dtype and the autograd fast-path semantics.

The engine defaults to float32 (training fast path); the legacy suite pins
float64 via the session fixture in ``tests/conftest.py``.  These tests
exercise the dtype switch itself plus the engine behaviours introduced with
it: graph freeing after backward, in-place gradient accumulation and the
flat-fused Adam update.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.optim import Adam
from repro.nn.tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    set_default_dtype,
)


class TestDefaultDtype:
    def test_suite_runs_on_float64_reference_path(self):
        # Pinned by the session fixture; the engine's own default is float32.
        assert get_default_dtype() == np.float64

    def test_context_manager_scopes_dtype(self):
        with default_dtype(np.float32):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).dtype == np.float32
        assert get_default_dtype() == np.float64

    def test_set_default_dtype_rejects_non_float(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)

    def test_tensor_creation_casts_to_default(self):
        with default_dtype(np.float32):
            assert Tensor(np.arange(3)).dtype == np.float32
            assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float32
        assert Tensor(np.zeros(3, dtype=np.float32)).dtype == np.float64

    def test_op_results_keep_their_computed_dtype(self):
        with default_dtype(np.float32):
            x = Tensor(np.ones(4))
            y = Tensor(np.ones(4))
            assert (x * y).dtype == np.float32

    def test_detach_and_clone_preserve_dtype(self):
        x = Tensor(np.ones(3, dtype=np.float64))
        with default_dtype(np.float32):
            assert x.detach().dtype == np.float64
            assert x.clone().dtype == np.float64

    def test_init_helpers_follow_default(self):
        from repro.nn import init

        with default_dtype(np.float32):
            assert init.he_normal((4, 4)).dtype == np.float32
            assert init.zeros((4,)).dtype == np.float32
            assert init.ones((2, 2)).dtype == np.float32

    def test_gradients_match_parameter_dtype(self):
        with default_dtype(np.float32):
            x = Tensor(np.ones(5, dtype=np.float32), requires_grad=True)
            (x * 2.0).sum().backward()
        assert x.grad.dtype == np.float32


class TestGraphFreeing:
    def test_backward_frees_closures_and_parents(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        z = (y * y).sum()
        z.backward()
        assert z._backward is None
        assert z._parents == ()
        assert y._backward is None
        assert y._parents == ()
        np.testing.assert_allclose(x.grad, 4 * y.data)

    def test_free_graph_false_allows_second_backward(self):
        x = Tensor([3.0], requires_grad=True)
        z = (x * x).sum()
        z.backward(free_graph=False)
        first = x.grad.copy()
        z.backward(free_graph=False)
        np.testing.assert_allclose(x.grad, 2 * first)

    def test_second_backward_through_freed_graph_raises(self):
        x = Tensor([1.0], requires_grad=True)
        hidden = x * 2
        (hidden * hidden).sum().backward()
        with pytest.raises(RuntimeError, match="freed graph"):
            hidden.sum().backward()

    def test_retained_intermediate_grad_survives_freeing(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        y = (x * 2).retain_grad()
        (y * y).sum().backward()
        assert y.grad is not None
        assert y._backward is None


class TestAccumulation:
    def test_diamond_graph_accumulates_both_paths(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3
        b = x * 5
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_shared_gradient_array_not_mutated_across_parents(self):
        # add routes the *same* gradient array to both parents; accumulation
        # into one parent must not corrupt the other's gradient.
        x = Tensor([1.0, 1.0], requires_grad=True)
        y = Tensor([2.0, 2.0], requires_grad=True)
        s = x + y
        total = (s * 1.0).sum() + (x * 4.0).sum()
        total.backward()
        np.testing.assert_allclose(y.grad, [1.0, 1.0])
        np.testing.assert_allclose(x.grad, [5.0, 5.0])


class TestFusedAdam:
    def _quadratic_step_path(self, clip_norm=None, n_steps=5):
        target = np.array([1.0, -2.0, 3.0])
        w = Tensor(np.zeros(3), requires_grad=True)
        optimizer = Adam([w], lr=0.1, clip_norm=clip_norm)
        for _ in range(n_steps):
            optimizer.zero_grad()
            ((w - Tensor(target)) ** 2).sum().backward()
            optimizer.step()
        return w.data.copy()

    def test_matches_reference_adam_sequence(self):
        # Hand-rolled reference of the textbook update.
        target = np.array([1.0, -2.0, 3.0])
        w = np.zeros(3)
        m = np.zeros(3)
        v = np.zeros(3)
        for t in range(1, 6):
            grad = 2 * (w - target)
            m = 0.9 * m + 0.1 * grad
            v = 0.999 * v + 0.001 * grad * grad
            m_hat = m / (1 - 0.9 ** t)
            v_hat = v / (1 - 0.999 ** t)
            w = w - 0.1 * m_hat / (np.sqrt(v_hat) + 1e-8)
        np.testing.assert_allclose(self._quadratic_step_path(), w, rtol=1e-10)

    def test_clip_norm_inside_step_limits_update(self):
        unclipped = self._quadratic_step_path(clip_norm=None, n_steps=1)
        clipped = self._quadratic_step_path(clip_norm=1e-3, n_steps=1)
        assert np.abs(clipped).max() < np.abs(unclipped).max()

    def test_data_replacement_is_detected(self):
        w = Tensor(np.zeros(3), requires_grad=True)
        optimizer = Adam([w], lr=0.1)
        optimizer.zero_grad()
        (w * w).sum().backward()
        optimizer.step()
        # Simulate load_state_dict: replace the data array entirely.
        w.data = np.array([10.0, 10.0, 10.0])
        optimizer.zero_grad()
        ((w - Tensor(np.zeros(3))) ** 2).sum().backward()
        optimizer.step()
        # The step must have applied to the *new* array.
        assert np.all(w.data < 10.0)

    def test_moments_survive_active_set_changes(self):
        w1 = Tensor(np.ones(2), requires_grad=True)
        w2 = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([w1, w2], lr=0.1)
        optimizer.zero_grad()
        (w1 * w1).sum().backward()   # only w1 active
        optimizer.step()
        optimizer.zero_grad()
        ((w1 * w1).sum() + (w2 * w2).sum()).backward()
        optimizer.step()             # both active: rebuild, moments preserved
        assert not np.allclose(w1.data, w2.data)
