"""Random graph generators and stable VAR coefficient sampling."""

import numpy as np
import pytest

from repro.graph import random_dag, random_temporal_graph
from repro.graph.random_graphs import stable_var_coefficients


class TestRandomDag:
    def test_is_acyclic(self):
        for seed in range(5):
            graph = random_dag(8, edge_probability=0.4, rng=np.random.default_rng(seed))
            assert graph.is_acyclic_ignoring_self_loops()

    def test_edge_probability_extremes(self):
        empty = random_dag(5, edge_probability=0.0, rng=np.random.default_rng(0))
        assert empty.n_edges == 0
        full = random_dag(5, edge_probability=1.0, rng=np.random.default_rng(0))
        assert full.n_edges == 10  # all upper-triangular pairs

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            random_dag(5, edge_probability=1.5)

    def test_self_loops_flag(self):
        graph = random_dag(5, edge_probability=1.0, self_loops=True,
                           rng=np.random.default_rng(0))
        assert len(graph.self_loops) > 0

    def test_delays_within_bounds(self):
        graph = random_dag(6, edge_probability=0.8, max_delay=4,
                           rng=np.random.default_rng(1))
        assert all(1 <= edge.delay <= 4 for edge in graph.edges)


class TestRandomTemporalGraph:
    def test_exact_edge_count(self):
        graph = random_temporal_graph(6, n_edges=10, rng=np.random.default_rng(0))
        assert graph.n_edges == 10

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            random_temporal_graph(3, n_edges=100)

    def test_no_self_loops_when_disallowed(self):
        graph = random_temporal_graph(5, n_edges=10, allow_self_loops=False,
                                      rng=np.random.default_rng(0))
        assert len(graph.self_loops) == 0

    def test_instantaneous_only_when_allowed(self):
        graph = random_temporal_graph(6, n_edges=15, allow_instantaneous=False,
                                      rng=np.random.default_rng(0))
        assert all(edge.delay >= 1 for edge in graph.edges)

    def test_reproducible_with_seed(self):
        a = random_temporal_graph(5, n_edges=6, rng=np.random.default_rng(7))
        b = random_temporal_graph(5, n_edges=6, rng=np.random.default_rng(7))
        assert a == b


class TestStableVarCoefficients:
    def test_shape(self):
        graph = random_dag(4, edge_probability=0.5, max_delay=3,
                           rng=np.random.default_rng(0))
        weights = stable_var_coefficients(graph, max_delay=3, rng=np.random.default_rng(0))
        assert weights.shape == (4, 4, 4)

    def test_nonzero_only_on_edges(self):
        graph = random_dag(4, edge_probability=0.5, rng=np.random.default_rng(1))
        weights = stable_var_coefficients(graph, rng=np.random.default_rng(1))
        adjacency = graph.adjacency_matrix()
        lagged_support = (np.abs(weights[1:]).sum(axis=0) > 0).astype(int)
        assert np.all(lagged_support <= adjacency)

    def test_companion_spectral_radius_below_one(self):
        graph = random_dag(5, edge_probability=0.9, max_delay=2,
                           rng=np.random.default_rng(2))
        weights = stable_var_coefficients(graph, max_delay=2, strength=0.8,
                                          rng=np.random.default_rng(2))
        n = graph.n_series
        lagged = weights[1:]
        p = lagged.shape[0]
        companion = np.zeros((n * p, n * p))
        for lag in range(p):
            companion[:n, lag * n:(lag + 1) * n] = lagged[lag].T
        if p > 1:
            companion[n:, :-n] = np.eye(n * (p - 1))
        radius = max(abs(np.linalg.eigvals(companion)))
        assert radius <= 0.8 + 1e-6
