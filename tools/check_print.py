#!/usr/bin/env python
"""Lint: no ``print()`` calls in the library (``src/repro/``).

Historical entry point, kept so existing hooks and muscle memory keep
working.  The check itself moved into the static-analysis framework as the
``no-print`` rule (:mod:`repro.analysis.checkers.no_print`); this shim
runs exactly that rule and preserves the original exit semantics (0 clean,
1 on violations, ``path:line`` per finding).

Prefer ``python -m repro lint`` — it runs the whole rule set.
"""

from __future__ import annotations

import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["--rules", "no-print", "--root", ROOT]))
