"""Table 3 — ablation study of CausalFormer on the fMRI dataset.

The paper removes one component at a time and reports precision / recall /
F1 on the fMRI networks:

* ``w/o interpretation`` — read attention/kernel weights instead of running
  the decomposition-based detector;
* ``w/o relevance``      — use only gradients as causal scores;
* ``w/o gradient``       — use only relevance scores;
* ``w/o bias``           — drop the bias term from the RRP denominators;
* ``w/o multi conv kernel`` — a single convolution kernel shared by all pairs;
* ``CausalFormer``       — the full model.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.core.config import CausalFormerConfig, fmri_preset
from repro.core.discovery import CausalFormer
from repro.data.fmri import fmri_dataset
from repro.experiments.reporting import ResultTable
from repro.graph.metrics import evaluate_discovery

ABLATION_NAMES = (
    "w/o interpretation",
    "w/o relevance",
    "w/o gradient",
    "w/o bias",
    "w/o multi conv kernel",
    "CausalFormer",
)


def _build_variant(name: str, config: CausalFormerConfig) -> CausalFormer:
    if name == "w/o interpretation":
        return CausalFormer(config, use_interpretation=False)
    if name == "w/o relevance":
        return CausalFormer(config, use_relevance=False)
    if name == "w/o gradient":
        return CausalFormer(config, use_gradient=False)
    if name == "w/o bias":
        return CausalFormer(config, use_bias=False)
    if name == "w/o multi conv kernel":
        return CausalFormer(replace(config, single_kernel=True))
    if name == "CausalFormer":
        return CausalFormer(config)
    raise ValueError(f"unknown ablation variant {name!r}")


def run_table3(seeds: Sequence[int] = (0, 1), fast: bool = True,
               n_nodes: int = 5, length: int = 200,
               variants: Optional[Sequence[str]] = None,
               verbose: bool = False) -> ResultTable:
    """Regenerate Table 3 (ablations on fMRI): precision, recall and F1 rows."""
    variants = tuple(variants) if variants is not None else ABLATION_NAMES
    preset = fmri_preset()
    if fast:
        # Keep the full training budget (the detector needs a converged
        # model); only the windowing stride is loosened for speed.
        preset = replace(preset, window_stride=2)
    table = ResultTable("Table 3: fMRI ablations", metric="f1")
    for seed in seeds:
        dataset = fmri_dataset(n_nodes=n_nodes, length=length, seed=seed)
        for variant in variants:
            config = replace(preset, seed=seed)
            model = _build_variant(variant, config)
            predicted = model.discover(dataset)
            scores = evaluate_discovery(predicted, dataset.graph)
            table.add(variant, "precision", scores.precision)
            table.add(variant, "recall", scores.recall)
            table.add(variant, "f1", scores.f1)
            if verbose:
                print(f"seed={seed} {variant:24s} "
                      f"P={scores.precision:.2f} R={scores.recall:.2f} F1={scores.f1:.2f}")
    return table
