"""Batched execution of same-shape CausalFormer discovery jobs.

A sweep frequently schedules the *same* CausalFormer configuration over
several datasets and seeds.  Dispatching each as its own job repeats the
whole per-model numpy call sequence — at sweep model sizes the dispatch
overhead dominates the arithmetic.  This module packs compatible jobs into
one process pass: the models train together through
:class:`repro.core.batched.StackedCausalFormerTrainer` (stacked GEMMs, one
set of numpy calls for the whole group), then each job's detector
interpretation and scoring runs exactly as it would alone.

Batching is numerics-preserving: the stacked trainer's per-model steps are
bit-identical to sequential training, so a batched sweep returns the same
graphs and scores as per-job dispatch — the correctness tests assert this.

Jobs are batchable together when they name the ``causalformer`` method with
identical configuration (up to the seed) on identically shaped datasets;
everything else — baselines, single-kernel ablations, odd-shaped cells —
falls through to the ordinary per-job path.
"""

from __future__ import annotations

import time
import traceback
from collections import OrderedDict
from typing import List, Sequence, Tuple

from repro.data.base import TimeSeriesDataset
from repro.service.jobs import DiscoveryJob, JobResult, canonical_json

JobPair = Tuple[DiscoveryJob, TimeSeriesDataset]

#: minimum group size worth a stacked pass
MIN_GROUP = 2


def batch_signature(job: DiscoveryJob, dataset: TimeSeriesDataset):
    """Grouping key for stackable jobs (``None`` when not batchable)."""
    if job.method != "causalformer":
        return None
    if job.config.get("single_kernel"):
        return None
    config = {key: value for key, value in job.config.items() if key != "seed"}
    try:
        shape = tuple(dataset.values.shape)
    except AttributeError:
        return None
    return (job.method, canonical_json(config), shape)


def group_batchable(pairs: Sequence[Tuple[int, JobPair]]
                    ) -> Tuple[List[List[Tuple[int, JobPair]]],
                               List[Tuple[int, JobPair]]]:
    """Split indexed pairs into stackable groups and per-job leftovers."""
    grouped: "OrderedDict[tuple, List[Tuple[int, JobPair]]]" = OrderedDict()
    singles: List[Tuple[int, JobPair]] = []
    for index, (job, dataset) in pairs:
        signature = batch_signature(job, dataset)
        if signature is None:
            singles.append((index, (job, dataset)))
        else:
            grouped.setdefault(signature, []).append((index, (job, dataset)))
    groups: List[List[Tuple[int, JobPair]]] = []
    for members in grouped.values():
        if len(members) >= MIN_GROUP:
            groups.append(members)
        else:
            singles.extend(members)
    singles.sort(key=lambda item: item[0])
    return groups, singles


def execute_batched_jobs(pairs: Sequence[JobPair]) -> List[JobResult]:
    """Run one group of stackable jobs in a single stacked training pass.

    Per-job failures during interpretation/scoring are captured into their
    own :class:`JobResult`; a failure of the *shared* stacked training falls
    back to sequential per-job execution, so batching never loses a sweep.
    """
    from repro.core.batched import StackedCausalFormerTrainer
    from repro.service.executor import execute_job
    from repro.service.registry import build_method

    pairs = list(pairs)
    try:
        start = time.perf_counter()
        methods = [build_method(job.method, job.config, seed=job.seed)
                   for job, _dataset in pairs]
        values_list = [method.prepare_fit(dataset)
                       for method, (_job, dataset) in zip(methods, pairs)]
        trainer = StackedCausalFormerTrainer(
            [method.model_ for method in methods])
        histories = trainer.fit(values_list)
        shared = (time.perf_counter() - start) / len(pairs)
    except Exception:
        # The stacked pass itself failed (incompatible shapes slipping past
        # the signature, resource limits, …): degrade to per-job execution.
        return [execute_job(job, dataset) for job, dataset in pairs]

    results: List[JobResult] = []
    for method, values, history, (job, dataset) in zip(
            methods, values_list, histories, pairs):
        own = time.perf_counter()
        try:
            method.finalize_fit(values, history)
            graph = method.interpret()
            scores = None
            if dataset.graph is not None:
                from repro.graph.metrics import evaluate_discovery

                scores = evaluate_discovery(graph, dataset.graph,
                                            delay_tolerance=job.delay_tolerance)
            results.append(JobResult(
                job=job, graph=graph, scores=scores,
                duration=shared + time.perf_counter() - own))
        except Exception:
            results.append(JobResult(
                job=job, error=traceback.format_exc(),
                duration=shared + time.perf_counter() - own))
    return results


def execute_batched_jobs_with_dtype(pairs: Sequence[JobPair],
                                    dtype: str) -> List[JobResult]:
    """Pool worker entry point: adopt the submitter's engine dtype, then run."""
    from repro.nn.tensor import set_default_dtype

    set_default_dtype(dtype)
    return execute_batched_jobs(pairs)
