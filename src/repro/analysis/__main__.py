"""``python -m repro.analysis`` — stdlib-only lint entry point.

Equivalent to ``python -m repro lint`` but importable before the
scientific stack: CI's lint job uses this path so a numpy-level breakage
cannot take the lint gate down with it.
"""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
