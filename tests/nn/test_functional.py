"""Behavioural tests of the functional API (activations and losses)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.conftest import numeric_gradient


class TestActivations:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_relu_clamps_negatives(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_leaky_relu_keeps_scaled_negatives(self):
        out = F.leaky_relu(Tensor([-2.0, 3.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])

    def test_leaky_relu_gradient(self):
        x0 = self.rng.normal(size=(4, 4)) + 0.05

        def build(values):
            return float((F.leaky_relu(Tensor(values), 0.05) ** 2).sum().data)

        x = Tensor(x0.copy(), requires_grad=True)
        (F.leaky_relu(x, 0.05) ** 2).sum().backward()
        numeric = numeric_gradient(build, x0.copy())
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    def test_sigmoid_range(self):
        out = F.sigmoid(Tensor(self.rng.normal(size=100) * 10))
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_sigmoid_at_zero(self):
        assert F.sigmoid(Tensor([0.0])).data[0] == pytest.approx(0.5)

    def test_tanh_matches_numpy(self):
        x = self.rng.normal(size=(3, 3))
        np.testing.assert_allclose(F.tanh(Tensor(x)).data, np.tanh(x))

    def test_tanh_gradient(self):
        x0 = self.rng.normal(size=(3, 3))
        x = Tensor(x0.copy(), requires_grad=True)
        F.tanh(x).sum().backward()
        numeric = numeric_gradient(lambda v: float(F.tanh(Tensor(v)).sum().data), x0.copy())
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    def test_sigmoid_gradient(self):
        x0 = self.rng.normal(size=(3, 3))
        x = Tensor(x0.copy(), requires_grad=True)
        F.sigmoid(x).sum().backward()
        numeric = numeric_gradient(lambda v: float(F.sigmoid(Tensor(v)).sum().data), x0.copy())
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)


class TestSoftmax:
    def setup_method(self):
        self.rng = np.random.default_rng(1)

    def test_rows_sum_to_one(self):
        out = F.softmax(Tensor(self.rng.normal(size=(5, 7))), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_output_positive(self):
        out = F.softmax(Tensor(self.rng.normal(size=(5, 7)) * 5), axis=-1)
        assert np.all(out.data > 0)

    def test_invariant_to_constant_shift(self):
        x = self.rng.normal(size=(3, 4))
        a = F.softmax(Tensor(x), axis=-1).data
        b = F.softmax(Tensor(x + 100.0), axis=-1).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_numerically_stable_for_large_values(self):
        out = F.softmax(Tensor(np.array([[1e4, 0.0, -1e4]])), axis=-1)
        assert np.isfinite(out.data).all()

    def test_axis_zero(self):
        out = F.softmax(Tensor(self.rng.normal(size=(4, 3))), axis=0)
        np.testing.assert_allclose(out.data.sum(axis=0), 1.0)

    def test_gradient_sums_to_zero_per_row(self):
        # d/dx of softmax composed with a linear functional has zero row sum.
        x = Tensor(self.rng.normal(size=(2, 5)), requires_grad=True)
        weights = Tensor(self.rng.normal(size=(2, 5)))
        (F.softmax(x, axis=-1) * weights).sum().backward()
        np.testing.assert_allclose(x.grad.sum(axis=-1), 0.0, atol=1e-10)

    def test_log_softmax_finite(self):
        out = F.log_softmax(Tensor(self.rng.normal(size=(3, 4)) * 10))
        assert np.isfinite(out.data).all()


class TestLosses:
    def setup_method(self):
        self.rng = np.random.default_rng(2)

    def test_mse_zero_for_identical(self):
        x = self.rng.normal(size=(4, 4))
        assert F.mse_loss(Tensor(x), Tensor(x.copy())).data == pytest.approx(0.0)

    def test_mse_matches_numpy(self):
        a, b = self.rng.normal(size=(4, 4)), self.rng.normal(size=(4, 4))
        expected = np.mean((a - b) ** 2)
        assert float(F.mse_loss(Tensor(a), Tensor(b)).data) == pytest.approx(expected)

    def test_mse_sum_reduction(self):
        a, b = self.rng.normal(size=(3, 3)), self.rng.normal(size=(3, 3))
        assert float(F.mse_loss(Tensor(a), Tensor(b), reduction="sum").data) == pytest.approx(
            np.sum((a - b) ** 2))

    def test_mse_none_reduction_shape(self):
        a, b = self.rng.normal(size=(3, 3)), self.rng.normal(size=(3, 3))
        assert F.mse_loss(Tensor(a), Tensor(b), reduction="none").shape == (3, 3)

    def test_mse_invalid_reduction(self):
        with pytest.raises(ValueError):
            F.mse_loss(Tensor([1.0]), Tensor([1.0]), reduction="bogus")

    def test_mae_matches_numpy(self):
        a, b = self.rng.normal(size=(4,)), self.rng.normal(size=(4,))
        assert float(F.mae_loss(Tensor(a), Tensor(b)).data) == pytest.approx(
            np.mean(np.abs(a - b)))

    def test_l1_norm(self):
        x = self.rng.normal(size=(3, 3))
        assert float(F.l1_norm(Tensor(x)).data) == pytest.approx(np.abs(x).sum())

    def test_l2_norm(self):
        x = self.rng.normal(size=(5,))
        assert float(F.l2_norm(Tensor(x)).data) == pytest.approx(np.linalg.norm(x), rel=1e-5)

    def test_group_lasso_matches_manual(self):
        weight = self.rng.normal(size=(6, 4))
        expected = np.sqrt((weight ** 2).sum(axis=0)).sum()
        assert float(F.group_lasso(Tensor(weight), axis=0).data) == pytest.approx(expected, rel=1e-5)

    def test_huber_quadratic_region(self):
        a = Tensor([0.5]); b = Tensor([0.0])
        assert float(F.huber_loss(a, b, delta=1.0).data) == pytest.approx(0.125)

    def test_huber_linear_region(self):
        a = Tensor([3.0]); b = Tensor([0.0])
        assert float(F.huber_loss(a, b, delta=1.0).data) == pytest.approx(2.5)


class TestDropout:
    def test_identity_in_eval(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, p=0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_identity_when_p_zero(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, p=0.0, training=True)
        np.testing.assert_allclose(out.data, x.data)

    def test_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, p=0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), p=1.0, training=True)
