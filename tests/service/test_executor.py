"""Job executor: serial/parallel equivalence, caching, error capture."""

import pytest

from repro.data import fork_dataset
from repro.service import DiscoveryJob, JobExecutor, ResultCache, fingerprint_dataset


@pytest.fixture(scope="module")
def fork_pairs():
    """Three cheap jobs (two methods × seeds) on small fork datasets."""
    pairs = []
    for seed in (0, 1):
        dataset = fork_dataset(seed=seed, length=140)
        fingerprint = fingerprint_dataset(dataset)
        pairs.append((DiscoveryJob(method="var_granger", dataset="fork",
                                   dataset_fingerprint=fingerprint, seed=seed),
                      dataset))
    dataset = fork_dataset(seed=0, length=140)
    pairs.append((DiscoveryJob(method="cmlp", config={"epochs": 4}, dataset="fork",
                               dataset_fingerprint=fingerprint_dataset(dataset),
                               seed=0), dataset))
    return pairs


def _summaries(results):
    return [(result.job.method, result.job.seed, result.scores.f1,
             [edge.as_tuple() for edge in result.graph.edges])
            for result in results]


class TestExecution:
    def test_results_keep_submission_order(self, fork_pairs):
        results = JobExecutor(max_workers=1).run(fork_pairs)
        assert [result.job for result in results] == [job for job, _ in fork_pairs]
        assert all(result.ok for result in results)

    def test_parallel_equals_serial(self, fork_pairs):
        serial = JobExecutor(max_workers=1).run(fork_pairs)
        parallel = JobExecutor(max_workers=2).run(fork_pairs)
        assert _summaries(serial) == _summaries(parallel)

    def test_run_one(self, fork_pairs):
        job, dataset = fork_pairs[0]
        result = JobExecutor().run_one(job, dataset)
        assert result.ok and result.scores.f1 > 0.0

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            JobExecutor(max_workers=0)
        assert JobExecutor(max_workers=None).max_workers >= 1


class TestErrorCapture:
    def test_one_crash_does_not_kill_the_sweep(self, fork_pairs):
        job, dataset = fork_pairs[0]
        # window longer than the series → the facade raises inside the job
        bad = DiscoveryJob(method="causalformer", config={"window": 10_000},
                           dataset="fork",
                           dataset_fingerprint=job.dataset_fingerprint, seed=0)
        results = JobExecutor(max_workers=1).run([(bad, dataset), (job, dataset)])
        assert not results[0].ok
        assert "ValueError" in results[0].error
        assert results[1].ok

    def test_unknown_method_is_captured(self, fork_pairs):
        job, dataset = fork_pairs[0]
        bad = DiscoveryJob(method="no-such-method", dataset="fork", seed=0)
        result = JobExecutor().run_one(bad, dataset)
        assert not result.ok and "unknown method" in result.error


class TestCaching:
    def test_second_run_is_served_from_cache(self, fork_pairs, tmp_path):
        executor = JobExecutor(max_workers=1, cache=str(tmp_path))
        cold = executor.run(fork_pairs)
        warm = executor.run(fork_pairs)
        assert not any(result.cached for result in cold)
        assert all(result.cached for result in warm)
        assert _summaries(cold) == _summaries(warm)

    def test_cache_shared_between_executors(self, fork_pairs, tmp_path):
        cache = ResultCache(tmp_path / "shared")
        JobExecutor(cache=cache).run(fork_pairs)
        warm = JobExecutor(max_workers=2, cache=cache).run(fork_pairs)
        assert all(result.cached for result in warm)

    def test_failures_are_not_cached(self, fork_pairs, tmp_path):
        _job, dataset = fork_pairs[0]
        bad = DiscoveryJob(method="causalformer", config={"window": 10_000},
                           dataset="fork", seed=0)
        executor = JobExecutor(cache=str(tmp_path))
        executor.run_one(bad, dataset)
        assert bad.cache_key() not in executor.cache

    def test_different_seeds_do_not_collide(self, fork_pairs, tmp_path):
        executor = JobExecutor(cache=str(tmp_path))
        results = executor.run(fork_pairs[:2])  # same method, seeds 0 and 1
        assert results[0].job.cache_key() != results[1].job.cache_key()


class TestBatchedDtypePropagation:
    """Batched pool tasks must adopt the submitter's engine dtype, exactly
    like per-job pool tasks do via ``execute_job_with_dtype``."""

    @pytest.fixture(scope="class")
    def batchable_pairs(self):
        from repro.service.jobs import DiscoveryJob as Job
        from repro.service.jobs import fingerprint_dataset as fingerprint

        config = {"window": 12, "d_model": 16, "d_qk": 16, "d_ffn": 16,
                  "n_heads": 2, "batch_size": 16, "window_stride": 2,
                  "max_epochs": 2, "patience": 1000,
                  "max_detector_windows": 4}
        pairs = []
        for seed in (0, 1):
            dataset = fork_dataset(seed=seed, length=150)
            pairs.append((Job(method="causalformer", config=dict(config),
                              dataset="fork",
                              dataset_fingerprint=fingerprint(dataset),
                              seed=seed), dataset))
        return pairs

    def test_batched_worker_entry_adopts_dtype(self, batchable_pairs):
        import numpy as np

        from repro.nn.tensor import (default_dtype, get_default_dtype,
                                     set_default_dtype)
        from repro.service.batched import (execute_batched_jobs,
                                           execute_batched_jobs_with_dtype)

        with default_dtype(np.float64):
            expected = _summaries(execute_batched_jobs(batchable_pairs))
        previous = get_default_dtype()
        try:
            # The worker entry point sets the engine dtype itself — calling
            # it under the (float32) default must reproduce the float64 run.
            got = _summaries(
                execute_batched_jobs_with_dtype(batchable_pairs, "float64"))
        finally:
            set_default_dtype(previous)
        assert got == expected

    def test_pooled_batched_group_matches_inline_float64(self, batchable_pairs):
        import numpy as np

        from repro.nn.tensor import default_dtype

        with default_dtype(np.float64):
            inline = JobExecutor(max_workers=1, batch_jobs=True) \
                .run(batchable_pairs)
            pooled = JobExecutor(max_workers=2, batch_jobs=True) \
                .run(batchable_pairs)
        assert all(result.ok for result in pooled)
        assert _summaries(inline) == _summaries(pooled)


CHAOS_CONFIG = {"window": 12, "d_model": 16, "d_qk": 16, "d_ffn": 16,
                "n_heads": 2, "batch_size": 16, "window_stride": 2,
                "max_epochs": 3, "patience": 1000, "max_detector_windows": 4}


def _chaos_pairs(n=3, length=140):
    from repro.service.jobs import DiscoveryJob as Job
    from repro.service.jobs import fingerprint_dataset as fingerprint

    pairs = []
    for seed in range(n):
        dataset = fork_dataset(seed=seed, length=length)
        pairs.append((Job(method="causalformer", config=dict(CHAOS_CONFIG),
                          dataset="fork",
                          dataset_fingerprint=fingerprint(dataset),
                          seed=seed), dataset))
    return pairs


def _graphs(results):
    return [result.graph.to_dict() for result in results]


class TestRetryPolicy:
    """Deterministic fault injection exercising every recovery path."""

    @pytest.fixture(scope="class")
    def chaos_pairs(self):
        return _chaos_pairs()

    @pytest.fixture(scope="class")
    def reference(self, chaos_pairs):
        return JobExecutor(max_workers=1).run(chaos_pairs)

    def test_killed_worker_breaks_pool_then_retry_succeeds(self, chaos_pairs,
                                                           reference):
        from repro import faults
        from repro.telemetry import capture

        with faults.override("kill@dispatch=2"):
            with capture() as telemetry:
                results = JobExecutor(max_workers=3,
                                      retry_backoff=0.01).run(chaos_pairs)
        assert all(result.ok for result in results)
        assert _graphs(results) == _graphs(reference)
        # exactly one unit paid an attempt; the innocents rode along free
        assert sorted(result.attempts for result in results) == [1, 1, 2]
        assert telemetry.counter("executor.retries").value == 1.0
        events = [record for record in telemetry.records()
                  if record.get("kind") == "event"
                  and record.get("name") == "job_retry"]
        assert events and events[0]["attrs"]["reason"] == "worker_died"

    def test_inline_error_retry_recovers(self, chaos_pairs, reference):
        from repro import faults

        job, dataset = chaos_pairs[0]
        with faults.override("raise@job=1"):
            result = JobExecutor(max_workers=1, retries=1,
                                 retry_backoff=0.0).run_one(job, dataset)
        assert result.ok and result.attempts == 2
        assert result.graph.to_dict() == reference[0].graph.to_dict()

    def test_inline_without_retries_keeps_the_error(self, chaos_pairs):
        from repro import faults

        job, dataset = chaos_pairs[0]
        with faults.override("raise@job=1"):
            result = JobExecutor(max_workers=1).run_one(job, dataset)
        assert not result.ok and result.attempts == 1
        assert not result.dead_letter

    def test_exhausted_retries_produce_a_dead_letter(self, chaos_pairs):
        from repro import faults

        job, dataset = chaos_pairs[0]
        with faults.override("raise@job=1,raise@job=2"):
            result = JobExecutor(max_workers=1, retries=1,
                                 retry_backoff=0.0).run_one(job, dataset)
        assert not result.ok
        assert result.dead_letter and result.attempts == 2

    def test_dead_letters_are_not_cached(self, chaos_pairs, tmp_path):
        from repro import faults

        job, dataset = chaos_pairs[0]
        cache = ResultCache(tmp_path / "cache")
        with faults.override("raise@job=1,raise@job=2"):
            result = JobExecutor(max_workers=1, retries=1, retry_backoff=0.0,
                                 cache=cache).run_one(job, dataset)
        assert result.dead_letter
        assert job.cache_key() not in cache
        # the sweep heals on the next run
        healed = JobExecutor(max_workers=1, cache=cache).run_one(job, dataset)
        assert healed.ok

    def test_timeout_kills_and_dead_letters(self, chaos_pairs):
        """A stalled worker is hard-killed at the budget; because the
        worker-side one-shot refires in every fresh process, the unit
        exhausts its attempts and dead-letters instead of wedging."""
        from repro import faults

        with faults.override("delay@job=1:seconds=20"):
            results = JobExecutor(max_workers=2, job_timeout=2.0,
                                  retry_backoff=0.01).run(chaos_pairs[:2])
        for result in results:
            assert not result.ok
            assert result.dead_letter and result.attempts == 2
            assert "wall-clock" in result.error

    def test_backoff_is_deterministic(self, chaos_pairs):
        executor = JobExecutor(retry_backoff=0.5)
        job, _dataset = chaos_pairs[0]
        first = executor._retry_delay(job.cache_key(), 1)
        assert first == executor._retry_delay(job.cache_key(), 1)
        assert 0.25 <= first <= 0.5
        # exponential growth attempt over attempt
        assert executor._retry_delay(job.cache_key(), 3) >= 2 * first
        assert JobExecutor(retry_backoff=0.0)._retry_delay("00", 1) == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            JobExecutor(retries=-1)
        with pytest.raises(ValueError):
            JobExecutor(retry_backoff=-0.1)
        with pytest.raises(ValueError):
            JobExecutor(job_timeout=0)
        with pytest.raises(ValueError):
            JobExecutor(checkpoint_every=0)


class TestChaosAcceptance:
    """The PR's acceptance bar: sweeps under injected faults finish with
    results bit-identical to fault-free runs, in float64 and float32."""

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_killed_worker_sweep_is_bit_identical(self, dtype):
        import numpy as np

        from repro import faults
        from repro.nn.tensor import default_dtype

        with default_dtype(np.dtype(dtype)):
            pairs = _chaos_pairs()
            reference = JobExecutor(max_workers=1).run(pairs)
            with faults.override("kill@dispatch=2"):
                survived = JobExecutor(max_workers=3,
                                       retry_backoff=0.01).run(pairs)
        assert all(result.ok for result in survived)
        assert _graphs(survived) == _graphs(reference)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_training_crash_resumes_from_checkpoint_bit_identical(
            self, tmp_path, dtype):
        import numpy as np

        from repro import faults
        from repro.nn.tensor import default_dtype
        from repro.telemetry import capture

        with default_dtype(np.dtype(dtype)):
            pairs = _chaos_pairs()
            reference = JobExecutor(max_workers=1).run(pairs)
            with faults.override("raise@train_step=12"):
                with capture() as telemetry:
                    survived = JobExecutor(
                        max_workers=1, retries=1, retry_backoff=0.0,
                        checkpoint_dir=str(tmp_path)).run(pairs)
        assert all(result.ok for result in survived)
        assert _graphs(survived) == _graphs(reference)
        # exactly one job crashed mid-fit and was retried...
        assert sorted(result.attempts for result in survived) == [1, 1, 2]
        # ...resuming from its checkpoint rather than restarting
        resumed = [record for record in telemetry.records()
                   if record.get("kind") == "event"
                   and record.get("name") == "fit_resumed"]
        assert len(resumed) == 1
        # completed fits leave no snapshots behind
        import os

        leftovers = [name for name in os.listdir(str(tmp_path))
                     if name.endswith(".ckpt.npz")]
        assert leftovers == []
