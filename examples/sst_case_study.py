#!/usr/bin/env python3
"""Sea-surface-temperature case study (paper Fig. 10).

The paper runs CausalFormer on North-Atlantic SST and checks that the
discovered causal relations follow the ocean currents.  This example runs the
same analysis on the synthetic advection field of ``repro.data.sst`` (the
NOAA OI-SST grid is not available offline): a gyre-like current field advects
temperature anomalies across a lat/lon grid, and we report how well the
discovered edges align with the prescribed currents, plus the S→N / N→S
direction histogram the paper discusses.

Run with::

    python examples/sst_case_study.py  [--lat 5 --lon 5]
"""

import argparse

from repro.core import CausalFormer, sst_preset
from repro.data import current_alignment, sst_dataset
from repro.data.sst import SstFieldSpec, edge_direction_labels
from repro.graph import evaluate_discovery


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lat", type=int, default=5, help="grid rows (latitude cells)")
    parser.add_argument("--lon", type=int, default=5, help="grid columns (longitude cells)")
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    spec = SstFieldSpec(n_lat=arguments.lat, n_lon=arguments.lon)
    dataset = sst_dataset(spec=spec, seed=arguments.seed)
    print(f"synthetic SST field: {spec.n_lat}×{spec.n_lon} cells, "
          f"{dataset.n_timesteps} time slots (paper: 38-day slots)")

    model = CausalFormer(sst_preset(max_epochs=arguments.epochs, seed=arguments.seed))
    graph = model.discover(dataset)

    alignment = current_alignment(spec, graph)
    labels = edge_direction_labels(spec, graph)
    counts = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    scores = evaluate_discovery(graph, dataset.graph)

    print(f"\ndiscovered {graph.n_edges} causal relations")
    print(f"fraction aligned with the prescribed currents: {alignment:.0%}")
    print(f"direction histogram: {counts}")
    print(f"F1 against the advection ground truth: {scores.f1:.2f}")

    print("\nsample relations (cell_lat_lon -> cell_lat_lon, delay):")
    for edge in graph.without_self_loops().edges[:12]:
        print(f"  {graph.names[edge.source]} -> {graph.names[edge.target]} ({edge.delay})")


if __name__ == "__main__":
    main()
