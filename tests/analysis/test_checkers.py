"""Per-rule fixture tests: each checker fires on a seeded violation,
honours suppressions, stays quiet on clean code — and stays quiet on the
real engine module it guards (the tree-level contract, pinned per rule)."""

from __future__ import annotations

from repro.analysis import CheckerConfig, lint_paths

#: Outside every scoped rule's module list (see conftest.PLAIN_PATH).
PLAIN_PATH = "src/repro/data/synthetic.py"


def rules_of(result):
    return [finding.rule for finding in result.findings]


def real_module_is_clean(rule, path):
    """The shipped engine module carries no unsuppressed findings."""
    result = lint_paths(paths=[path], rules=[rule])
    assert rules_of(result) == [], result.findings


# ---------------------------------------------------------------------- #
# no-print
# ---------------------------------------------------------------------- #
class TestNoPrint:
    def test_fires_outside_allowlist(self, lint_source):
        result = lint_source("print('hi')\n", relative=PLAIN_PATH,
                             rules=["no-print"])
        assert rules_of(result) == ["no-print"]
        assert result.findings[0].line == 1

    def test_quiet_on_allowlisted_module(self, lint_source):
        result = lint_source("print('hi')\n",
                             relative="src/repro/service/cli.py",
                             rules=["no-print"])
        assert rules_of(result) == []

    def test_suppressed_hit_counts_as_suppressed(self, lint_source):
        result = lint_source(
            "print('hi')  # repro: allow(no-print): fixture\n",
            relative=PLAIN_PATH, rules=["no-print"])
        assert rules_of(result) == []
        assert result.suppressed == 1

    def test_quiet_on_clean_file(self, lint_source):
        result = lint_source("value = 'print'\n", relative=PLAIN_PATH,
                             rules=["no-print"])
        assert rules_of(result) == []

    def test_real_tree_is_clean(self):
        real_module_is_clean("no-print", "src/repro")


# ---------------------------------------------------------------------- #
# dtype-purity
# ---------------------------------------------------------------------- #
class TestDtypePurity:
    def test_fires_on_float64_literal(self, lint_source):
        result = lint_source("""\
            import numpy as np
            x = np.zeros(3, dtype=np.float64)
            """, rules=["dtype-purity"])
        assert "dtype-purity" in rules_of(result)

    def test_fires_on_dtype_float_keyword(self, lint_source):
        result = lint_source("""\
            import numpy as np
            x = np.asarray([1, 2], dtype=float)
            """, rules=["dtype-purity"])
        assert rules_of(result) == ["dtype-purity"]

    def test_quiet_outside_engine_modules(self, lint_source):
        result = lint_source("""\
            import numpy as np
            x = np.zeros(3, dtype=np.float64)
            """, relative=PLAIN_PATH, rules=["dtype-purity"])
        assert rules_of(result) == []

    def test_blessed_promotion_sites_are_quiet(self, lint_source):
        result = lint_source("""\
            import numpy as np

            def plan(space, shape, a, b):
                buffer = space.take("bwd.pred", shape, np.float64)
                cdtype = np.result_type(a, b)
                return buffer, np.dtype(np.float64)
            """, rules=["dtype-purity"])
        assert rules_of(result) == []

    def test_annotations_are_quiet(self, lint_source):
        result = lint_source("""\
            import numpy as np

            def f(x: np.float64) -> np.float64:
                y: np.float64 = x
                return y
            """, rules=["dtype-purity"])
        assert rules_of(result) == []

    def test_suppressed_hit(self, lint_source):
        result = lint_source("""\
            import numpy as np
            # repro: allow(dtype-purity): fixture
            x = np.zeros(3, dtype=np.float64)
            """, rules=["dtype-purity"])
        assert rules_of(result) == []
        assert result.suppressed >= 1

    def test_real_engine_modules_are_clean(self):
        for path in CheckerConfig().dtype_modules:
            real_module_is_clean("dtype-purity", path)


# ---------------------------------------------------------------------- #
# hot-path-alloc
# ---------------------------------------------------------------------- #
class TestHotPathAlloc:
    def test_fires_inside_hot_path(self, lint_source):
        result = lint_source("""\
            import numpy as np
            from repro.contracts import hot_path

            @hot_path
            def forward(x):
                scratch = np.zeros(x.shape)
                return scratch
            """, relative=PLAIN_PATH, rules=["hot-path-alloc"])
        assert rules_of(result) == ["hot-path-alloc"]
        assert "forward" in result.findings[0].message

    def test_fires_on_copy_and_astype(self, lint_source):
        result = lint_source("""\
            import numpy as np
            from repro.contracts import hot_path

            @hot_path
            def forward(x):
                return x.copy() + x.astype(np.float32)
            """, relative=PLAIN_PATH, rules=["hot-path-alloc"])
        assert rules_of(result) == ["hot-path-alloc"] * 2

    def test_astype_copy_false_is_quiet(self, lint_source):
        result = lint_source("""\
            import numpy as np
            from repro.contracts import hot_path

            @hot_path
            def forward(x):
                return x.astype(np.float32, copy=False)
            """, relative=PLAIN_PATH, rules=["hot-path-alloc"])
        assert rules_of(result) == []

    def test_undecorated_function_is_quiet(self, lint_source):
        result = lint_source("""\
            import numpy as np

            def setup(shape):
                return np.zeros(shape)
            """, relative=PLAIN_PATH, rules=["hot-path-alloc"])
        assert rules_of(result) == []

    def test_nested_function_inherits_hotness(self, lint_source):
        result = lint_source("""\
            import numpy as np
            from repro.contracts import hot_path

            @hot_path
            def forward(x):
                def body(lo, hi):
                    return np.empty(hi - lo)
                return body
            """, relative=PLAIN_PATH, rules=["hot-path-alloc"])
        assert rules_of(result) == ["hot-path-alloc"]

    def test_suppressed_hit(self, lint_source):
        result = lint_source("""\
            import numpy as np
            from repro.contracts import hot_path

            @hot_path
            def forward(x, out=None):
                if out is None:
                    # repro: allow(hot-path-alloc): cold fallback, fixture
                    out = np.empty(x.shape)
                return out
            """, relative=PLAIN_PATH, rules=["hot-path-alloc"])
        assert rules_of(result) == []
        assert result.suppressed == 1

    def test_real_engine_modules_are_clean(self):
        real_module_is_clean("hot-path-alloc", "src/repro/nn/inference.py")
        real_module_is_clean("hot-path-alloc",
                             "src/repro/nn/training_engine.py")


# ---------------------------------------------------------------------- #
# parallel-outputs
# ---------------------------------------------------------------------- #
class TestParallelOutputs:
    def test_fires_on_undeclared_out_kwarg(self, lint_source):
        result = lint_source("""\
            import numpy as np
            from repro.nn.parallel import parallel_for

            def run(flat, extra):
                def body(lo, hi):
                    np.exp(flat[lo:hi], out=flat[lo:hi])
                    np.exp(flat[lo:hi], out=extra[lo:hi])

                parallel_for(body, flat.shape[0], outputs=((flat, 0),))
            """, relative=PLAIN_PATH, rules=["parallel-outputs"])
        assert rules_of(result) == ["parallel-outputs"]
        assert "'extra'" in result.findings[0].message

    def test_fires_when_outputs_absent(self, lint_source):
        result = lint_source("""\
            from repro.nn.parallel import parallel_for

            def run(flat):
                def body(lo, hi):
                    flat[lo:hi] = 0.0

                parallel_for(body, flat.shape[0])
            """, relative=PLAIN_PATH, rules=["parallel-outputs"])
        assert rules_of(result) == ["parallel-outputs"]
        assert "declares no outputs=" in result.findings[0].message

    def test_declared_and_chunk_local_writes_are_quiet(self, lint_source):
        result = lint_source("""\
            import numpy as np
            from repro.nn.parallel import parallel_for

            def run(flat, ext):
                def body(lo, hi):
                    rows = flat[lo:hi]          # alias of a declared buffer
                    rows -= rows.max()
                    local = np.empty_like(rows)  # chunk-local by construction
                    local[...] = rows
                    np.exp(rows, out=ext[lo:hi])

                parallel_for(body, flat.shape[0],
                             outputs=((flat, 0), (ext, 0)))
            """, relative=PLAIN_PATH, rules=["parallel-outputs"])
        assert rules_of(result) == []

    def test_alias_write_through_resolves_to_base(self, lint_source):
        result = lint_source("""\
            from repro.nn.parallel import parallel_for

            def run(flat, other):
                def body(lo, hi):
                    rows = other[lo:hi]
                    rows += 1.0

                parallel_for(body, flat.shape[0], outputs=((flat, 0),))
            """, relative=PLAIN_PATH, rules=["parallel-outputs"])
        assert rules_of(result) == ["parallel-outputs"]
        assert "'other'" in result.findings[0].message

    def test_concatenated_declaration_defers_to_runtime_audit(
            self, lint_source):
        # ``(...literal...) + tuple(generator)`` cannot be enumerated
        # statically; the rule must not flag what it cannot resolve (the
        # REPRO_PARALLEL_DEBUG audit still covers the generated pairs).
        result = lint_source("""\
            from repro.nn.parallel import parallel_for

            def run(flat, views):
                def body(lo, hi):
                    flat[lo:hi] = 0.0
                    for view in views:
                        view[lo:hi] = 1.0

                parallel_for(body, flat.shape[0],
                             outputs=((flat, 0),)
                             + tuple((view, 0) for view in views))
            """, relative=PLAIN_PATH, rules=["parallel-outputs"])
        assert rules_of(result) == []

    def test_suppressed_hit(self, lint_source):
        result = lint_source("""\
            from repro.nn.parallel import parallel_for

            def run(flat):
                def body(lo, hi):
                    flat[lo:hi] = 0.0

                # repro: allow(parallel-outputs): fixture
                parallel_for(body, flat.shape[0])
            """, relative=PLAIN_PATH, rules=["parallel-outputs"])
        assert rules_of(result) == []
        assert result.suppressed == 1

    def test_real_engine_modules_are_clean(self):
        real_module_is_clean("parallel-outputs", "src/repro/nn/inference.py")
        real_module_is_clean("parallel-outputs",
                             "src/repro/nn/training_engine.py")
        real_module_is_clean("parallel-outputs", "src/repro/core/batched.py")


# ---------------------------------------------------------------------- #
# telemetry-guard
# ---------------------------------------------------------------------- #
class TestTelemetryGuard:
    def test_fires_on_unguarded_event(self, lint_source):
        result = lint_source("""\
            from repro.telemetry import get_telemetry

            def step(loss):
                telemetry = get_telemetry()
                telemetry.event("train_step", loss=loss)
            """, rules=["telemetry-guard"])
        assert rules_of(result) == ["telemetry-guard"]

    def test_enabled_guard_dominates(self, lint_source):
        result = lint_source("""\
            from repro.telemetry import get_telemetry

            def step(loss):
                telemetry = get_telemetry()
                if telemetry.enabled:
                    telemetry.event("train_step", loss=loss)
            """, rules=["telemetry-guard"])
        assert rules_of(result) == []

    def test_early_exit_guard_dominates(self, lint_source):
        result = lint_source("""\
            from repro.telemetry import get_telemetry

            def step(loss):
                telemetry = get_telemetry()
                if not telemetry.enabled:
                    return
                telemetry.event("train_step", loss=loss)
            """, rules=["telemetry-guard"])
        assert rules_of(result) == []

    def test_fires_on_fstring_metric_name(self, lint_source):
        result = lint_source("""\
            from repro.telemetry import get_telemetry

            def hook(op, seconds):
                telemetry = get_telemetry()
                telemetry.histogram(f"engine.{op}_seconds").observe(seconds)
            """, rules=["telemetry-guard"])
        assert rules_of(result) == ["telemetry-guard"]
        assert "f-string" in result.findings[0].message

    def test_quiet_outside_hot_modules(self, lint_source):
        result = lint_source("""\
            from repro.telemetry import get_telemetry

            def step(loss):
                get_telemetry().event("train_step", loss=loss)
            """, relative=PLAIN_PATH, rules=["telemetry-guard"])
        assert rules_of(result) == []

    def test_suppressed_hit(self, lint_source):
        result = lint_source("""\
            from repro.telemetry import get_telemetry

            def step(loss):
                telemetry = get_telemetry()
                # repro: allow(telemetry-guard): fixture
                telemetry.event("train_step", loss=loss)
            """, rules=["telemetry-guard"])
        assert rules_of(result) == []
        assert result.suppressed == 1

    def test_real_hot_modules_are_clean(self):
        for path in CheckerConfig().telemetry_modules:
            real_module_is_clean("telemetry-guard", path)
