"""Saving and loading model weights to .npz archives."""

import numpy as np

from repro.nn.layers import LeakyReLU, Linear, Sequential
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.nn.tensor import Tensor


def _make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 8, rng=rng), LeakyReLU(), Linear(8, 2, rng=rng))


class TestSerialization:
    def test_roundtrip_restores_outputs(self, tmp_path):
        model = _make_model(seed=0)
        path = save_state_dict(model, str(tmp_path / "model"))
        clone = _make_model(seed=99)
        load_state_dict(clone, path)
        x = np.random.default_rng(1).normal(size=(5, 4))
        np.testing.assert_allclose(clone(Tensor(x)).data, model(Tensor(x)).data)

    def test_extension_added(self, tmp_path):
        model = _make_model()
        path = save_state_dict(model, str(tmp_path / "weights"))
        assert path.endswith(".npz")

    def test_load_accepts_missing_extension(self, tmp_path):
        model = _make_model()
        save_state_dict(model, str(tmp_path / "weights"))
        clone = _make_model(seed=5)
        load_state_dict(clone, str(tmp_path / "weights"))
        np.testing.assert_allclose(clone[0].weight.data, model[0].weight.data)

    def test_nested_directory_created(self, tmp_path):
        model = _make_model()
        path = save_state_dict(model, str(tmp_path / "deep" / "nested" / "model"))
        clone = _make_model(seed=3)
        load_state_dict(clone, path)
        np.testing.assert_allclose(clone[2].bias.data, model[2].bias.data)

    def test_causalformer_transformer_roundtrip(self, tmp_path, tiny_transformer, window_batch):
        from repro.core import CausalityAwareTransformer

        path = save_state_dict(tiny_transformer, str(tmp_path / "transformer"))
        clone = CausalityAwareTransformer(tiny_transformer.config)
        load_state_dict(clone, path)
        np.testing.assert_allclose(clone.predict(window_batch),
                                   tiny_transformer.predict(window_batch))
