"""Multi-kernel causal convolution: temporal priority, scaling, self-shift."""

import numpy as np
import pytest

from repro.core.convolution import MultiKernelCausalConvolution
from repro.nn.tensor import Tensor


def make_conv(n=3, t=6, single=False, seed=0):
    return MultiKernelCausalConvolution(n, t, single_kernel=single,
                                        rng=np.random.default_rng(seed))


class TestShapes:
    def test_output_shape(self):
        conv = make_conv(n=3, t=6)
        out = conv(Tensor(np.random.default_rng(0).normal(size=(4, 3, 6))))
        assert out.shape == (4, 3, 3, 6)

    def test_kernel_shape_multi(self):
        assert make_conv(n=3, t=6).kernel.shape == (3, 3, 6)

    def test_kernel_shape_single(self):
        conv = make_conv(n=3, t=6, single=True)
        assert conv.kernel.shape == (1, 1, 6)
        assert conv.effective_kernel().shape == (3, 3, 6)

    def test_input_shape_checked(self):
        conv = make_conv(n=3, t=6)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((2, 4, 6))))
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((2, 3, 5))))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MultiKernelCausalConvolution(0, 6)
        with pytest.raises(ValueError):
            MultiKernelCausalConvolution(3, 1)


class TestTemporalPriority:
    def test_output_does_not_depend_on_future_inputs(self):
        """The convolution at slot t must ignore observations after slot t."""
        rng = np.random.default_rng(1)
        conv = make_conv(n=2, t=8)
        x = rng.normal(size=(1, 2, 8))
        base = conv(Tensor(x)).data
        perturbed = x.copy()
        perturbed[:, :, 5:] += 100.0
        out = conv(Tensor(perturbed)).data
        # Cross-series entries: slots before 5 unchanged.
        np.testing.assert_allclose(out[:, :, :, :5], base[:, :, :, :5], atol=1e-9)

    def test_matches_paper_equation_for_cross_series(self):
        """X̂[i, j, t] = K[i, j] · [0…0, X_i^1..X_i^t] / t (Eq. 3), cross-series."""
        rng = np.random.default_rng(2)
        n, t = 2, 5
        conv = make_conv(n=n, t=t, seed=3)
        x = rng.normal(size=(1, n, t))
        out = conv(Tensor(x)).data[0]
        kernel = conv.kernel.data
        padded = np.concatenate([np.zeros((n, t)), x[0]], axis=1)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                for slot in range(t):
                    window = padded[i, slot + 1:slot + 1 + t]
                    expected = float(kernel[i, j] @ window) / (slot + 1)
                    assert out[i, j, slot] == pytest.approx(expected, abs=1e-9)

    def test_self_convolution_right_shifted(self):
        """X̂[i, i] is shifted right one slot so slot 0 is exactly zero (Eq. 4)."""
        rng = np.random.default_rng(3)
        conv = make_conv(n=3, t=6, seed=4)
        out = conv(Tensor(rng.normal(size=(2, 3, 6)))).data
        for i in range(3):
            np.testing.assert_allclose(out[:, i, i, 0], 0.0, atol=1e-12)

    def test_self_convolution_never_sees_current_value(self):
        """Perturbing X_i at slot t must not change X̂[i, i, t]."""
        rng = np.random.default_rng(4)
        conv = make_conv(n=2, t=7, seed=5)
        x = rng.normal(size=(1, 2, 7))
        base = conv(Tensor(x)).data
        slot = 4
        perturbed = x.copy()
        perturbed[0, 0, slot] += 50.0
        out = conv(Tensor(perturbed)).data
        assert out[0, 0, 0, slot] == pytest.approx(base[0, 0, 0, slot], abs=1e-9)
        # The cross-series entry at the same slot does change (instantaneous causality).
        assert out[0, 0, 1, slot] != pytest.approx(base[0, 0, 1, slot], abs=1e-9)


class TestScalingAndPenalty:
    def test_scaling_divides_by_observed_slots(self):
        """With an all-ones kernel and all-ones input the output is exactly 1."""
        conv = make_conv(n=2, t=4)
        conv.kernel.data = np.ones_like(conv.kernel.data)
        x = np.ones((1, 2, 4))
        out = conv(Tensor(x)).data
        # Cross-series: sum of t ones divided by t = 1 at every slot.
        np.testing.assert_allclose(out[0, 0, 1], 1.0, atol=1e-12)

    def test_l1_penalty_matches_numpy(self):
        conv = make_conv(n=2, t=4)
        assert float(conv.l1_penalty().data) == pytest.approx(np.abs(conv.kernel.data).sum())

    def test_single_kernel_shares_weights_across_pairs(self):
        conv = make_conv(n=3, t=5, single=True)
        rng = np.random.default_rng(6)
        x = rng.normal(size=(1, 3, 5))
        out = conv(Tensor(x)).data
        # For a shared kernel, the convolution of source i is identical for
        # every cross target j (it only depends on the source's history).
        np.testing.assert_allclose(out[0, 0, 1], out[0, 0, 2], atol=1e-12)

    def test_gradients_reach_kernel(self):
        conv = make_conv(n=2, t=4)
        x = Tensor(np.random.default_rng(7).normal(size=(2, 2, 4)), requires_grad=True)
        conv(x).sum().backward()
        assert conv.kernel.grad is not None
        assert x.grad is not None

    def test_convolution_windows_helper_matches_padding(self):
        conv = make_conv(n=2, t=4)
        x = np.random.default_rng(8).normal(size=(1, 2, 4))
        windows = conv.convolution_windows(x)
        assert windows.shape == (1, 2, 4, 4)
        padded = np.concatenate([np.zeros((2, 4)), x[0]], axis=1)
        for t in range(4):
            np.testing.assert_array_equal(windows[0, :, t, :], padded[:, t + 1:t + 5])
