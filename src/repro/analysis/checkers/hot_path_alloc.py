"""``hot-path-alloc``: no steady-state allocation inside ``@hot_path`` code.

The fused engines (PR 3/7) draw every large temporary from a
:class:`~repro.nn.inference.ScratchArena`, so a steady-state training step
or evaluation performs no heap allocation of large arrays.  That contract
used to be guarded only by ``buffer_ids()`` identity tests, which see the
shapes the tests exercise; this rule makes it shape-independent by flagging
*any* allocating numpy call inside a function marked hot:

* ``np.zeros`` / ``np.empty`` / ``np.concatenate`` / ``np.array`` / ... —
  the configured :attr:`~repro.analysis.base.CheckerConfig.allocating_calls`;
* ``.copy()`` on anything;
* ``.astype(...)`` without ``copy=False`` (with ``copy=False`` it is a
  no-op when the dtype already matches — the fused engines' idiom).

A function is hot when it carries the :func:`repro.contracts.hot_path`
decorator or is listed in
:attr:`~repro.analysis.base.CheckerConfig.hot_functions`.  Nested
functions (the ``parallel_for`` chunk bodies) inherit hotness from their
enclosing function.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.base import Checker, Finding, LintConfig, ModuleSource
from repro.analysis.registry import register


def _decorator_name(node: ast.AST) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _astype_is_copy_free(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "copy" \
                and isinstance(keyword.value, ast.Constant) \
                and keyword.value.value is False:
            return True
    return False


@register
class HotPathAllocChecker(Checker):
    name = "hot-path-alloc"
    description = ("allocating numpy call inside a @hot_path function — "
                   "draw from the scratch arena or pass out=")

    def check(self, module: ModuleSource,
              config: LintConfig) -> Iterator[Finding]:
        checkers = config.checkers
        allocating = set(checkers.allocating_calls)
        hot_decorators = set(checkers.hot_decorators)
        explicit = {qualname for path, qualname in checkers.hot_functions
                    if path == module.path}

        def walk(node: ast.AST, qualprefix: str, hot: bool,
                 hot_name: str) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = qualprefix + child.name
                    child_hot = hot or qualname in explicit or any(
                        _decorator_name(decorator) in hot_decorators
                        for decorator in child.decorator_list)
                    yield from walk(child, qualname + ".",
                                    child_hot,
                                    hot_name if hot else qualname)
                elif isinstance(child, ast.ClassDef):
                    yield from walk(child, qualprefix + child.name + ".",
                                    False, "")
                elif isinstance(child, ast.Lambda) and hot:
                    yield from self._check_expression(
                        child, module, allocating, hot_name)
                    continue
                else:
                    if hot:
                        yield from self._check_expression(
                            child, module, allocating, hot_name)
                    else:
                        yield from walk(child, qualprefix, hot, hot_name)

        yield from walk(module.tree, "", False, "")

    def _check_expression(self, node: ast.AST, module: ModuleSource,
                          allocating, hot_name: str) -> Iterator[Finding]:
        """Flag allocating calls in a subtree that is entirely hot."""
        for current in ast.walk(node):
            if not isinstance(current, ast.Call):
                continue
            func = current.func
            if isinstance(func, ast.Attribute):
                receiver = func.value
                if isinstance(receiver, ast.Name) \
                        and receiver.id in ("np", "numpy"):
                    if func.attr in allocating:
                        yield Finding(
                            self.name, module.path,
                            current.lineno, current.col_offset,
                            f"np.{func.attr} allocates inside hot path "
                            f"{hot_name!r}; use an arena buffer or out=")
                elif func.attr == "copy" and not current.args \
                        and not current.keywords:
                    yield Finding(
                        self.name, module.path,
                        current.lineno, current.col_offset,
                        f".copy() allocates inside hot path {hot_name!r}; "
                        "copy into an arena buffer with np.copyto")
                elif func.attr == "astype" \
                        and not _astype_is_copy_free(current):
                    yield Finding(
                        self.name, module.path,
                        current.lineno, current.col_offset,
                        f".astype(...) without copy=False allocates inside "
                        f"hot path {hot_name!r}; stage the cast once or "
                        "pass copy=False")
