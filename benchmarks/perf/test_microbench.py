"""Perf microbenchmarks under pytest-benchmark.

Each payload is the exact workload ``python -m repro bench`` times: tensor-op
autograd round trips, the fused causal convolution, the batched multi-head
attention, one training epoch and a full small ``Trainer.fit``.  Timings
land in the pytest-benchmark table; the JSON perf trajectory is written by
the CLI (see ``BENCH_nn.json`` and ``benchmarks/perf/baseline.json``).
"""

import pytest

from repro.service import bench


@pytest.mark.parametrize("name", sorted(bench.PAYLOADS))
def test_microbenchmark(name, benchmark):
    builder, _full, _smoke = bench.PAYLOADS[name]
    run = builder()
    run()  # warm-up outside the measured region
    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)


def test_fit_small_beats_committed_baseline():
    """The end-to-end training benchmark must stay ahead of the pre-PR engine.

    The committed baseline (float64 engine, per-slice convolution, per-head
    attention loop) is the floor: even on a noisy machine the optimized
    engine should hold a comfortable margin.
    """
    baseline = bench.load_baseline()
    if baseline is None:
        pytest.skip("no committed baseline")
    stats = bench.time_payload("fit_small", repeats=3)
    reference = baseline["timings"]["fit_small"]["seconds"]
    assert stats["best"] < reference, (
        f"fit_small took {stats['best']:.4f}s; pre-optimization baseline was "
        f"{reference:.4f}s")
