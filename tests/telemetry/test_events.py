"""Sinks: ring buffer retention, JSONL round-trip, stderr formatting."""

import io
import json

from repro.telemetry.events import (JsonlSink, RingBufferSink, StderrSink,
                                    format_record)


class TestRingBufferSink:
    def test_retains_records_in_order(self):
        sink = RingBufferSink(capacity=10)
        for index in range(3):
            sink.emit({"kind": "event", "name": f"e{index}"})
        assert [record["name"] for record in sink.records()] == ["e0", "e1", "e2"]

    def test_capacity_drops_oldest_and_counts(self):
        sink = RingBufferSink(capacity=2)
        for index in range(5):
            sink.emit({"kind": "event", "name": f"e{index}"})
        assert [record["name"] for record in sink.records()] == ["e3", "e4"]
        assert sink.dropped == 3
        assert len(sink) == 2


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"kind": "event", "name": "hello", "attrs": {"n": 1}})
        sink.emit({"kind": "span", "name": "work", "duration": 0.5})
        sink.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "hello"
        assert json.loads(lines[1])["duration"] == 0.5

    def test_lazy_open_creates_no_empty_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.flush()
        sink.close()
        assert not path.exists()

    def test_numpy_scalars_degrade_to_text(self, tmp_path):
        import numpy as np

        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"kind": "event", "name": "x",
                   "attrs": {"value": np.float32(1.5)}})
        sink.close()
        assert json.loads(path.read_text())["attrs"]["value"] == "1.5"


class TestStderrSink:
    def test_human_readable_lines(self):
        stream = io.StringIO()
        sink = StderrSink(stream=stream)
        sink.emit({"kind": "event", "name": "train_epoch",
                   "attrs": {"epoch": 2, "loss": 0.123456789}})
        line = stream.getvalue()
        assert line.startswith("[repro] event train_epoch")
        assert "epoch=2" in line
        assert "loss=0.123457" in line  # floats shortened to 6 significant digits


class TestFormatRecord:
    def test_span_with_error_status(self):
        text = format_record({"kind": "span", "name": "job",
                              "duration": 0.01, "status": "error",
                              "attrs": {}})
        assert "span  job 10.00ms [error]" == text

    def test_metrics_record_summarized(self):
        text = format_record({"kind": "metrics",
                              "metrics": {"counters": {"a": 1, "b": 2}}})
        assert text == "metrics 2 counters"
