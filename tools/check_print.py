#!/usr/bin/env python
"""Lint: no ``print()`` calls in the library (``src/repro/``).

Library code reports progress through the telemetry subsystem
(:mod:`repro.telemetry`): events reach whatever sink the process configured
(stderr, JSONL, in-memory), and ``verbose=True`` paths get a transient
stderr runtime via ``verbose_telemetry``.  A stray ``print`` bypasses all
of that — it can't be redirected to a trace file, silenced by a library
consumer, or attributed to a span — so this check fails the build on any
``print`` call outside the explicit allowlist below.

The check walks the AST (not the raw text), so ``print`` mentioned in
docstrings or comments — e.g. the doctest-style usage example in
``repro/core/discovery.py`` — does not trip it.

Usage: ``python tools/check_print.py`` (exit 1 on violations, listing
``path:line`` for each).
"""

from __future__ import annotations

import ast
import os
import sys

#: repository root (one level up from tools/)
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: the library tree the lint covers
LIBRARY = os.path.join("src", "repro")

#: modules allowed to print, relative to the repository root.  The CLI is
#: the process's human interface — its subcommand output (tables, graphs,
#: error messages) is the product, not diagnostics.
ALLOWLIST = frozenset({
    os.path.join("src", "repro", "service", "cli.py"),
})


def print_calls(path: str) -> list:
    """``(line, column)`` of every ``print(...)`` call in the file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    calls = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id == "print":
            calls.append((node.lineno, node.col_offset))
    return calls


def main() -> int:
    violations = []
    library_root = os.path.join(ROOT, LIBRARY)
    for directory, _subdirs, files in sorted(os.walk(library_root)):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(directory, name)
            relative = os.path.relpath(path, ROOT)
            if relative in ALLOWLIST:
                continue
            for line, _column in print_calls(path):
                violations.append(f"{relative}:{line}")
    if violations:
        print("print() calls found outside the allowlist "
              "(route output through repro.telemetry instead):",
              file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print(f"no stray print() calls under {LIBRARY} "
          f"({len(ALLOWLIST)} allowlisted module(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
