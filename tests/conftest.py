"""Shared fixtures for the test suite.

The expensive fixtures (trained models) are session-scoped so the many tests
that inspect a trained CausalFormer share one training run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CausalFormer, CausalFormerConfig, CausalityAwareTransformer, fast_preset
from repro.data import fork_dataset, v_structure_dataset
from repro.nn.tensor import Tensor


def numeric_gradient(function, x: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    gradient = np.zeros_like(x, dtype=float)
    iterator = np.nditer(x, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = x[index]
        x[index] = original + epsilon
        plus = function(x)
        x[index] = original - epsilon
        minus = function(x)
        x[index] = original
        gradient[index] = (plus - minus) / (2 * epsilon)
        iterator.iternext()
    return gradient


@pytest.fixture(scope="session", autouse=True)
def _float64_reference_engine():
    """Run the legacy suite on the float64 reference path.

    The engine defaults to float32 (the training fast path); these tests
    assert numerics at float64 tolerances (down to 1e-12), so they pin the
    reference dtype.  Float32 behaviour is covered explicitly by
    ``tests/nn/test_dtype.py`` and ``tests/core/test_perf_equivalence.py``.
    """
    from repro.nn.tensor import default_dtype

    with default_dtype(np.float64):
        yield


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_config() -> CausalFormerConfig:
    """A deliberately small configuration used across the core tests."""
    return CausalFormerConfig(
        n_series=3,
        window=8,
        d_model=12,
        d_qk=12,
        d_ffn=12,
        n_heads=2,
        temperature=1.0,
        max_epochs=8,
        window_stride=4,
        batch_size=32,
        seed=0,
    )


@pytest.fixture(scope="session")
def fork_data():
    """A small fork dataset (S0 → S1, S0 → S2 plus self-loops)."""
    return fork_dataset(seed=7, length=300)


@pytest.fixture(scope="session")
def v_structure_data():
    return v_structure_dataset(seed=11, length=300)


@pytest.fixture(scope="session")
def tiny_transformer(tiny_config) -> CausalityAwareTransformer:
    """An untrained transformer with the tiny configuration."""
    return CausalityAwareTransformer(tiny_config)


@pytest.fixture(scope="session")
def trained_causalformer(fork_data) -> CausalFormer:
    """One trained CausalFormer shared by the detector / relevance / discovery tests."""
    model = CausalFormer(fast_preset(max_epochs=15, seed=3))
    model.discover(fork_data)
    return model


@pytest.fixture()
def window_batch(tiny_config, rng) -> np.ndarray:
    """A random batch of windows matching the tiny configuration."""
    return rng.normal(size=(4, tiny_config.n_series, tiny_config.window))


@pytest.fixture()
def tensor_factory(rng):
    """Factory producing random Tensors with gradients enabled."""

    def make(*shape, requires_grad: bool = True) -> Tensor:
        return Tensor(rng.normal(size=shape), requires_grad=requires_grad)

    return make
