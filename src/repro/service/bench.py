"""Performance microbenchmarks: ``python -m repro bench``.

The suite times the layers the training loop actually exercises —

* ``tensor_ops``    — elementwise/matmul autograd round trips,
* ``convolution``   — multi-kernel causal convolution forward + backward,
* ``attention``     — multi-variate causal attention forward + backward,
* ``train_step``    — one mini-batch optimiser step through the trainer's
  step path (the fused no-autograd training engine),
* ``train_epoch``   — one epoch of :class:`repro.core.training.Trainer`,
* ``telemetry_overhead`` — the pre-telemetry epoch loop, replayed verbatim
  (the ``train_epoch``/``telemetry_overhead`` ratio gates the telemetry-off
  instrumentation cost),
* ``fit_small``     — a full small ``Trainer.fit`` on a VAR fork dataset,
* ``evaluate``      — ``Trainer._evaluate`` (the no-grad validation pass),
* ``detector_interpret`` — the causality detector's full interpretation,
* ``sweep_batched`` — four same-shape discovery jobs through the executor,
* ``sweep_hetero``  — six mixed-length discovery jobs through the
  continuous-batching path (shape bucketing, pad-and-mask lanes, lane
  compaction and queue refill under ``max_lanes``),
* ``evaluate_stacked``  — four models' validation sets through the stacked
  inference engine (what a batched sweep runs every epoch),
* ``interpret_batched`` — group detector interpretation of four models in
  one stacked pass —

and writes the wall-clock results to the next free ``BENCH_nn.json`` slot
(``BENCH_01.json``, ``BENCH_02.json``, …) together with the committed
pre-optimisation baseline (``benchmarks/perf/baseline.json``), so every PR
appends to the perf trajectory instead of overwriting it.  The payload
definitions are frozen: each baseline entry was produced by this module
running against the engine as it stood *before* the optimisation the entry
tracks, and re-running ``python -m repro bench`` compares the current tree
against it.

``run_suite(smoke=True)`` is the CI entry point: fewer repeats, and the
regression check compares the end-to-end epoch benchmark against the
committed baseline.
"""

from __future__ import annotations

import json
import os
import platform
import re
import statistics
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: repository root (three levels up from this file: service -> repro -> src -> root)
_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))

BASELINE_PATH = os.path.join(_ROOT, "benchmarks", "perf", "baseline.json")

#: pattern of the numbered trajectory reports in the repository root
_REPORT_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

#: benchmark gated by the CI regression check (kept for compatibility)
REGRESSION_KEY = "train_epoch"

#: benchmarks gated by the CI regression check by default; a gated key
#: missing from the reference report fails the check loudly (see
#: :func:`check_regressions`), so the committed trajectory must be
#: regenerated whenever this set grows
REGRESSION_KEYS = ("train_epoch", "train_step", "evaluate",
                   "detector_interpret", "evaluate_stacked",
                   "telemetry_overhead", "train_epoch_threaded",
                   "evaluate_stacked_threaded", "sweep_hetero")


def _numbered_reports(root: Optional[str] = None) -> List[Tuple[int, str]]:
    """Existing ``BENCH_nn.json`` trajectory files, sorted by number."""
    root = root if root is not None else _ROOT
    found: List[Tuple[int, str]] = []
    for name in os.listdir(root):
        match = _REPORT_PATTERN.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(root, name)))
    return sorted(found)


def latest_report_path(root: Optional[str] = None) -> Optional[str]:
    """The most recent committed trajectory report (``None`` when empty)."""
    reports = _numbered_reports(root)
    return reports[-1][1] if reports else None


def next_output_path(root: Optional[str] = None) -> str:
    """The next free trajectory slot: ``BENCH_01.json``, ``BENCH_02.json``, …

    Successive ``python -m repro bench`` runs append to the trajectory
    instead of overwriting the previous report.
    """
    reports = _numbered_reports(root)
    next_number = (reports[-1][0] + 1) if reports else 1
    root = root if root is not None else _ROOT
    return os.path.join(root, f"BENCH_{next_number:02d}.json")


# ---------------------------------------------------------------------- #
# Payloads.  Each builder returns a zero-argument callable that runs one
# timed iteration; all state is pre-built so timing measures the hot path.
# ---------------------------------------------------------------------- #
def _payload_tensor_ops() -> Callable[[], None]:
    from repro.nn import functional as F
    from repro.nn.tensor import Tensor

    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(128, 128)), requires_grad=True)
    w1 = Tensor(rng.normal(size=(128, 128)) * 0.1, requires_grad=True)
    w2 = Tensor(rng.normal(size=(128, 64)) * 0.1, requires_grad=True)
    bias = Tensor(np.zeros(64), requires_grad=True)

    def run() -> None:
        for parameter in (x, w1, w2, bias):
            parameter.grad = None
        hidden = F.tanh(x @ w1)
        out = F.sigmoid(hidden @ w2 + bias)
        loss = (out * out).mean() + 0.1 * hidden.abs().sum()
        loss.backward()

    return run


def _payload_convolution() -> Callable[[], None]:
    from repro.core.convolution import MultiKernelCausalConvolution
    from repro.nn.tensor import Tensor

    rng = np.random.default_rng(1)
    conv = MultiKernelCausalConvolution(10, 16, rng=rng)
    batch = rng.normal(size=(32, 10, 16))

    def run() -> None:
        conv.zero_grad()
        out = conv(Tensor(batch))
        (out * out).mean().backward()

    return run


def _payload_attention() -> Callable[[], None]:
    from repro.core.attention import MultiVariateCausalAttention
    from repro.core.convolution import MultiKernelCausalConvolution
    from repro.core.embedding import TimeSeriesEmbedding
    from repro.nn.tensor import Tensor

    rng = np.random.default_rng(2)
    n, t, d, heads = 10, 16, 32, 4
    embedding = TimeSeriesEmbedding(t, d, rng=rng)
    convolution = MultiKernelCausalConvolution(n, t, rng=rng)
    attention = MultiVariateCausalAttention(n, d, d, heads, 1.0, rng=rng)
    batch = rng.normal(size=(32, n, t))

    def run() -> None:
        for module in (embedding, convolution, attention):
            module.zero_grad()
        x = Tensor(batch)
        combined, _caches = attention(embedding(x), convolution(x))
        (combined * combined).mean().backward()

    return run


def _epoch_fixture():
    from repro.core.config import CausalFormerConfig
    from repro.core.training import Trainer
    from repro.core.transformer import CausalityAwareTransformer

    config = CausalFormerConfig(
        n_series=5, window=16, d_model=24, d_qk=24, d_ffn=24, n_heads=4,
        batch_size=32, window_stride=2, max_epochs=1, seed=0)
    model = CausalityAwareTransformer(config)
    trainer = Trainer(model, config)
    values = np.random.default_rng(3).normal(size=(5, 400))
    windows = trainer.make_windows(values)
    return trainer, windows


def _payload_train_epoch() -> Callable[[], None]:
    trainer, windows = _epoch_fixture()

    def run() -> None:
        trainer._run_epoch(windows, np.random.default_rng(4))

    return run


def _payload_telemetry_overhead() -> Callable[[], None]:
    """The pre-telemetry training epoch loop, replayed verbatim.

    This is ``Trainer._run_epoch`` exactly as it stood before the telemetry
    subsystem: shuffle, per-batch arena gather, fused ``train_step`` — no
    runtime lookup, no ``enabled`` check, no histogram.  Within one report
    the ``train_epoch`` / ``telemetry_overhead`` timing ratio therefore *is*
    the telemetry-off instrumentation cost (the README documents the < 2%
    budget), measured on identical hardware in the same process.
    """
    trainer, windows = _epoch_fixture()
    engine = trainer._training
    batch_size = trainer.config.batch_size

    def run() -> None:
        rng = np.random.default_rng(4)
        order = rng.permutation(windows.shape[0])
        prepared = engine.prepare_windows(windows)
        arena = engine.arena
        tail_shape = prepared.shape[1:]
        losses = []
        for start in range(0, len(order), batch_size):
            indices = order[start:start + batch_size]
            batch = arena.take("train.batch",
                               (len(indices),) + tail_shape, prepared.dtype)
            np.take(prepared, indices, axis=0, out=batch)
            losses.append(engine.train_step(batch))
        float(np.mean(losses)) if losses else float("nan")

    return run


def _payload_train_step() -> Callable[[], None]:
    """One mini-batch optimiser step through the trainer's step path.

    Exactly one batch (32 windows at ``batch_size=32``): shuffle, gather,
    fused forward + backward, Adam update.  The committed baseline was
    measured against the autograd fast path this payload replaced (graph
    construction + ``loss.backward()`` + per-parameter gradient gather).
    """
    trainer, windows = _epoch_fixture()
    batch = np.ascontiguousarray(windows[:32])

    def run() -> None:
        trainer._run_epoch(batch, np.random.default_rng(5))

    return run


def _payload_fit_small() -> Callable[[], None]:
    from repro.core.config import CausalFormerConfig
    from repro.core.training import Trainer
    from repro.core.transformer import CausalityAwareTransformer
    from repro.data import fork_dataset
    from repro.data.windows import zscore_normalize

    # A VAR-process fork dataset, trained for a fixed number of epochs
    # (patience large enough that early stopping never cuts the run short),
    # so the measured wall clock is deterministic in shape across engines.
    values = zscore_normalize(fork_dataset(seed=0, length=320).values)
    config = CausalFormerConfig(
        n_series=values.shape[0], window=16, d_model=24, d_qk=24, d_ffn=24,
        n_heads=4, batch_size=32, window_stride=2, max_epochs=10,
        patience=1000, seed=0)

    def run() -> None:
        model = CausalityAwareTransformer(config)
        Trainer(model, config).fit(values)

    return run


def _payload_evaluate() -> Callable[[], None]:
    """``Trainer._evaluate`` on the epoch fixture's full window set.

    This is the no-gradient forward pass the training loop runs once per
    epoch (and the experiment harness runs per table cell) — the target of
    the fused inference engine.
    """
    trainer, windows = _epoch_fixture()

    def run() -> None:
        trainer._evaluate(windows)

    return run


def _payload_detector_interpret() -> Callable[[], None]:
    """Full detector interpretation (gradients + RRP) on the small fork data."""
    from repro.core.config import CausalFormerConfig
    from repro.core.detector import DecompositionCausalityDetector
    from repro.core.transformer import CausalityAwareTransformer
    from repro.data import fork_dataset
    from repro.data.windows import sliding_windows, zscore_normalize

    values = zscore_normalize(fork_dataset(seed=0, length=160).values)
    config = CausalFormerConfig(
        n_series=values.shape[0], window=16, d_model=24, d_qk=24, d_ffn=24,
        n_heads=4, seed=0)
    model = CausalityAwareTransformer(config)
    detector = DecompositionCausalityDetector(model, config)
    windows = sliding_windows(values, config.window, 2)[:8]

    def run() -> None:
        detector.compute_scores(windows)

    return run


def _sweep_pairs():
    """Four same-shape CausalFormer discovery jobs on fork datasets."""
    from repro.service.jobs import DiscoveryJob, fingerprint_dataset
    from repro.service.registry import build_dataset

    config = {
        "window": 16, "d_model": 24, "d_qk": 24, "d_ffn": 24, "n_heads": 4,
        "batch_size": 32, "window_stride": 2, "max_epochs": 8,
        "patience": 1000, "max_detector_windows": 8,
    }
    pairs = []
    for seed in range(4):
        dataset = build_dataset("fork", seed=seed, length=240)
        pairs.append((DiscoveryJob(
            method="causalformer", config=dict(config), dataset="fork",
            dataset_fingerprint=fingerprint_dataset(dataset), seed=seed), dataset))
    return pairs


def _payload_sweep_batched() -> Callable[[], None]:
    """Four same-shape discovery jobs through the executor in one pass."""
    from repro.service.executor import JobExecutor

    pairs = _sweep_pairs()
    executor = JobExecutor(max_workers=1, cache=None, batch_jobs=True)

    def run() -> None:
        executor.run(pairs)

    return run


def _hetero_sweep_pairs():
    """Six mixed-length CausalFormer discovery jobs on fork datasets.

    Three series lengths (200/240/280) with two dataset seeds each — the
    shape mix of a Table-3-style sweep — so the run exercises shape
    bucketing, pad-and-mask prefix scheduling, tail sub-stacks, lane
    compaction and queue refill rather than the exact-shape fast case.
    """
    from repro.service.jobs import DiscoveryJob, fingerprint_dataset
    from repro.service.registry import build_dataset

    config = {
        "window": 16, "d_model": 24, "d_qk": 24, "d_ffn": 24, "n_heads": 4,
        "batch_size": 32, "window_stride": 1, "max_epochs": 8,
        "patience": 1000, "max_detector_windows": 8,
    }
    pairs = []
    job_seed = 0
    for length in [200, 240, 280]:
        for dataset_seed in (0, 1):
            dataset = build_dataset("fork", seed=dataset_seed, length=length)
            pairs.append((DiscoveryJob(
                method="causalformer", config=dict(config), dataset="fork",
                dataset_fingerprint=fingerprint_dataset(dataset),
                seed=job_seed), dataset))
            job_seed += 1
    return pairs


def _payload_sweep_hetero() -> Callable[[], None]:
    """Six mixed-shape discovery jobs through the continuous-batching path:
    one slack bucket, four live lanes, queue refill as lanes finish."""
    from repro.service.executor import JobExecutor

    pairs = _hetero_sweep_pairs()
    executor = JobExecutor(max_workers=1, cache=None, batch_jobs=True,
                           bucket_slack=0.5, max_lanes=4)

    def run() -> None:
        executor.run(pairs)

    return run


def _stacked_models(n_models: int = 4):
    """Four same-architecture models + per-model window sets (sweep shapes)."""
    from dataclasses import replace

    from repro.core.config import CausalFormerConfig
    from repro.core.transformer import CausalityAwareTransformer
    from repro.data.windows import sliding_windows

    config = CausalFormerConfig(
        n_series=5, window=16, d_model=24, d_qk=24, d_ffn=24, n_heads=4,
        batch_size=32, window_stride=2, seed=0)
    rng = np.random.default_rng(6)
    models, window_sets = [], []
    for seed in range(n_models):
        model = CausalityAwareTransformer(replace(config, seed=seed))
        windows = sliding_windows(rng.normal(size=(5, 400)), config.window,
                                  config.window_stride)
        models.append(model)
        window_sets.append(np.ascontiguousarray(
            windows, dtype=model.embedding.weight.data.dtype))
    return models, window_sets, config


def _payload_evaluate_stacked() -> Callable[[], None]:
    """Four models' validation sets through one stacked inference pass.

    This is the per-epoch validation workload of a batched 4-job sweep —
    previously one ``InferenceEngine.evaluate`` call per model.
    """
    from repro.nn.inference import StackedInferenceEngine

    models, window_sets, config = _stacked_models()
    engine = StackedInferenceEngine(models)

    def run() -> None:
        engine.evaluate(window_sets, config.batch_size)

    return run


def _payload_interpret_batched() -> Callable[[], None]:
    """Group detector interpretation of four models in one stacked pass.

    Previously one full ``compute_scores`` interpretation per job.
    """
    from repro.core.config import CausalFormerConfig
    from repro.core.detector import (DecompositionCausalityDetector,
                                     compute_scores_group)
    from repro.core.transformer import CausalityAwareTransformer
    from repro.data import fork_dataset
    from repro.data.windows import sliding_windows, zscore_normalize

    detectors, window_sets = [], []
    for seed in range(4):
        values = zscore_normalize(fork_dataset(seed=seed, length=160).values)
        config = CausalFormerConfig(
            n_series=values.shape[0], window=16, d_model=24, d_qk=24,
            d_ffn=24, n_heads=4, seed=seed)
        model = CausalityAwareTransformer(config)
        detectors.append(DecompositionCausalityDetector(model, config))
        window_sets.append(sliding_windows(values, config.window, 2)[:8])

    def run() -> None:
        compute_scores_group(detectors, window_sets)

    return run


def _payload_train_epoch_threaded() -> Callable[[], None]:
    """The ``train_epoch`` payload under four engine threads.

    Identical work to ``train_epoch`` (same fixture, same rng, bit-identical
    losses) with the fused engines chunking their batch-axis ops across the
    shared thread pool.  On multi-core hosts the ``train_epoch`` /
    ``train_epoch_threaded`` ratio is the intra-engine parallel speedup; on
    a single hardware thread it measures the pool's dispatch overhead
    instead (the regression gate budgets for that).
    """
    from repro.nn.parallel import engine_threads

    trainer, windows = _epoch_fixture()

    def run() -> None:
        with engine_threads(4):
            trainer._run_epoch(windows, np.random.default_rng(4))

    return run


def _payload_evaluate_stacked_threaded() -> Callable[[], None]:
    """The ``evaluate_stacked`` payload under four engine threads.

    Four stacked models at four threads chunk across the model axis — one
    model per thread — the sweep-shaped best case for the parallel layer.
    """
    from repro.nn.inference import StackedInferenceEngine
    from repro.nn.parallel import engine_threads

    models, window_sets, config = _stacked_models()
    engine = StackedInferenceEngine(models)

    def run() -> None:
        with engine_threads(4):
            engine.evaluate(window_sets, config.batch_size)

    return run


#: name -> (builder, full-mode repeats, smoke-mode repeats)
PAYLOADS: Dict[str, Tuple[Callable[[], Callable[[], None]], int, int]] = {
    "tensor_ops": (_payload_tensor_ops, 20, 5),
    "convolution": (_payload_convolution, 20, 5),
    "attention": (_payload_attention, 20, 5),
    "train_step": (_payload_train_step, 20, 5),
    "train_epoch": (_payload_train_epoch, 9, 3),
    "telemetry_overhead": (_payload_telemetry_overhead, 9, 3),
    "fit_small": (_payload_fit_small, 7, 1),
    "evaluate": (_payload_evaluate, 20, 5),
    "detector_interpret": (_payload_detector_interpret, 9, 3),
    "sweep_batched": (_payload_sweep_batched, 5, 1),
    "sweep_hetero": (_payload_sweep_hetero, 5, 1),
    "evaluate_stacked": (_payload_evaluate_stacked, 20, 5),
    "interpret_batched": (_payload_interpret_batched, 9, 3),
    "train_epoch_threaded": (_payload_train_epoch_threaded, 9, 3),
    "evaluate_stacked_threaded": (_payload_evaluate_stacked_threaded, 20, 5),
}


# ---------------------------------------------------------------------- #
# Harness
# ---------------------------------------------------------------------- #
def time_payload(name: str, repeats: int) -> Dict[str, object]:
    """Build one payload, run it ``repeats`` times, return timing stats."""
    builder, _full, _smoke = PAYLOADS[name]
    run = builder()
    run()  # warm-up iteration (allocator, caches) outside the measurement
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    return {
        "seconds": statistics.median(samples),
        "best": min(samples),
        "repeats": repeats,
        "samples": [round(sample, 6) for sample in samples],
    }


def measure_overhead_ratio(repeats: int = 15) -> float:
    """Telemetry-off instrumentation cost as a paired-sample median ratio.

    Runs the instrumented epoch (``train_epoch``) and the pre-telemetry
    replay (``telemetry_overhead``) back to back ``repeats`` times,
    alternating which member of the pair goes first, and takes the median
    of the per-pair ratios.  Pairing cancels machine-wide drift (CPU
    frequency, noisy neighbours) that block medians measured minutes apart
    cannot — the < 2% budget is far below this container's block-to-block
    variance.
    """
    instrumented = PAYLOADS["train_epoch"][0]()
    raw = PAYLOADS["telemetry_overhead"][0]()
    instrumented()
    raw()
    samples: Dict[object, List[float]] = {instrumented: [], raw: []}
    for index in range(repeats):
        # Alternate which loop goes first so warm-cache advantage for the
        # second member of a pair cancels across the sample sets.
        pair = (instrumented, raw) if index % 2 == 0 else (raw, instrumented)
        for run in pair:
            start = time.perf_counter()
            run()
            samples[run].append(time.perf_counter() - start)
    return round(statistics.median(samples[instrumented])
                 / statistics.median(samples[raw]), 4)


def _engine_info() -> Dict[str, str]:
    try:
        from repro.nn import tensor as T
        dtype = str(np.dtype(T.get_default_dtype()))
    except AttributeError:  # pre-optimisation engine: fixed float64
        dtype = "float64"
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "default_dtype": dtype,
    }


def load_baseline(path: str = BASELINE_PATH) -> Optional[Dict]:
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def record_payload_spans(name: str) -> Dict[str, object]:
    """One extra payload iteration under a capturing telemetry runtime.

    Returns a compact observability summary: per-span-name counts and total
    wall time (the payload's phase decomposition) plus the counters and
    histogram totals the instrumented code recorded.  Timed iterations stay
    untouched — this runs *outside* the measurement, so the published
    numbers are always telemetry-off numbers.
    """
    from repro.telemetry import capture, get_telemetry
    from repro.telemetry.report import summarize_spans

    builder, _full, _smoke = PAYLOADS[name]
    run = builder()
    with capture() as telemetry:
        with telemetry.trace(f"bench.{name}"):
            run()
    records = telemetry.records()
    snapshot = telemetry.metrics.snapshot()
    outer = get_telemetry()
    if outer.enabled:
        # ``python -m repro bench --telemetry jsonl:...`` ships the payload
        # span trees in the trace file as well as in the report.
        outer.absorb({"records": records, "metrics": snapshot})
    spans = {span_name: {"count": stats["count"],
                         "total_seconds": round(stats["total_seconds"], 6)}
             for span_name, stats in summarize_spans(records).items()}
    summary: Dict[str, object] = {"spans": spans}
    if snapshot["counters"]:
        summary["counters"] = snapshot["counters"]
    if snapshot["histograms"]:
        summary["histograms"] = {
            metric: {"count": stats["count"],
                     "total": round(stats["total"], 6)}
            for metric, stats in snapshot["histograms"].items()}
    return summary


def run_suite(smoke: bool = False, names: Optional[List[str]] = None,
              progress: Optional[Callable[[str], None]] = None,
              record_spans: bool = True) -> Dict:
    """Run the microbenchmarks; return the report payload (not yet written).

    ``progress`` receives one human-readable line per finished payload (the
    CLI passes ``print``).  With ``record_spans`` each payload additionally
    runs once under a capturing telemetry runtime, attaching its span tree
    summary to the report — the timed iterations themselves always run with
    whatever runtime the process had (telemetry-off in CI).
    """
    selected = names or list(PAYLOADS)
    unknown = [name for name in selected if name not in PAYLOADS]
    if unknown:
        raise KeyError(f"unknown benchmarks: {unknown}; available: {list(PAYLOADS)}")

    timings: Dict[str, Dict] = {}
    for name in selected:
        _builder, full_repeats, smoke_repeats = PAYLOADS[name]
        repeats = smoke_repeats if smoke else full_repeats
        timings[name] = time_payload(name, repeats)
        if progress is not None:
            progress(f"  {name:<12} {timings[name]['seconds'] * 1000:10.2f} ms "
                     f"(median of {repeats})")

    report = {
        "schema": 1,
        "mode": "smoke" if smoke else "full",
        "engine": _engine_info(),
        "timings": timings,
    }

    if "train_epoch" in timings and "telemetry_overhead" in timings:
        # The telemetry-off instrumentation cost: paired interleaved runs of
        # the instrumented loop and the pre-telemetry replay, so machine
        # drift between the two block measurements above cannot masquerade
        # as overhead (or hide it).
        report["telemetry_overhead_ratio"] = measure_overhead_ratio(
            repeats=5 if smoke else 15)

    if record_spans:
        observability: Dict[str, Dict] = {}
        for name in selected:
            observability[name] = record_payload_spans(name)
        report["observability"] = observability

    baseline = load_baseline()
    if baseline is not None:
        report["baseline"] = baseline
        speedups: Dict[str, float] = {}
        for name, stats in timings.items():
            reference = baseline.get("timings", {}).get(name)
            if reference:
                speedups[name] = round(reference["seconds"] / stats["seconds"], 3)
        report["speedup_vs_baseline"] = speedups
    return report


def check_regression(report: Dict, max_regression: float = 0.25,
                     key: str = REGRESSION_KEY,
                     reference: Optional[Dict] = None,
                     normalize_by: Optional[str] = None) -> Optional[str]:
    """Return an error message when ``key`` regressed more than ``max_regression``.

    ``reference`` is a previously written report (e.g. the committed
    ``BENCH_nn.json``); when omitted, the pre-optimization baseline embedded
    in ``report`` is used.  ``normalize_by`` divides both sides by another
    benchmark's timing from the same run — the committed reference was
    measured on different hardware, so comparing the ``key``/``normalize_by``
    *ratio* gates code regressions instead of machine-speed differences.
    """
    if reference is None:
        reference = report.get("baseline")
    if not reference:
        return None

    def metric(source: Dict) -> Optional[float]:
        timings = source.get("timings", {})
        entry = timings.get(key)
        if not entry:
            return None
        value = entry["seconds"]
        if normalize_by:
            denominator = timings.get(normalize_by)
            if not denominator or denominator["seconds"] <= 0:
                return None
            value /= denominator["seconds"]
        return value

    reference_value = metric(reference)
    current_value = metric(report)
    if reference_value is None or current_value is None:
        return None
    limit = reference_value * (1.0 + max_regression)
    unit = f"/{normalize_by}" if normalize_by else "s"
    if current_value > limit:
        return (f"{key} regressed: {current_value:.4f}{unit} vs reference "
                f"{reference_value:.4f}{unit} (limit {limit:.4f}, "
                f"+{max_regression:.0%} allowed)")
    return None


def check_regressions(report: Dict, max_regression: float = 0.25,
                      keys: Optional[Sequence[str]] = None,
                      reference: Optional[Dict] = None,
                      normalize_by: Optional[str] = None,
                      allow_missing: bool = False) -> List[str]:
    """Run :func:`check_regression` for several benchmarks; collect failures.

    A gated key missing from the reference report is a **loud failure**, not
    a silent skip: a gate that quietly stops comparing is indistinguishable
    from one that passes, so a stale reference (e.g. a benchmark added
    without regenerating the committed trajectory report) must surface in
    CI.  ``allow_missing=True`` restores the old skip behaviour for callers
    that deliberately compare against historical reports.  When no
    reference is available at all there is nothing to gate and the check
    passes vacuously (matching :func:`check_regression`).
    """
    resolved = reference if reference is not None else report.get("baseline")
    reference_timings = (resolved or {}).get("timings", {})
    messages = []
    if normalize_by and resolved:
        # A missing/zero normalizer makes every ratio comparison vacuous —
        # surface that once instead of letting all gates pass silently.
        for side, timings in (("reference report", reference_timings),
                              ("current report",
                               report.get("timings", {}))):
            entry = timings.get(normalize_by)
            if not entry or entry.get("seconds", 0) <= 0:
                if not allow_missing:
                    messages.append(
                        f"{normalize_by}: normalizer benchmark missing "
                        f"from the {side} — every gated comparison would "
                        "be vacuous")
                return messages
    for key in (keys if keys is not None else REGRESSION_KEYS):
        if resolved and key not in reference_timings:
            if not allow_missing:
                messages.append(
                    f"{key}: gated benchmark missing from the reference "
                    "report — regenerate the reference (python -m repro "
                    "bench) or drop it from --regression-keys")
            continue
        message = check_regression(report, max_regression, key=key,
                                   reference=reference,
                                   normalize_by=normalize_by)
        if message:
            messages.append(message)
    return messages


# ---------------------------------------------------------------------- #
# Trajectory summary (BENCH_01 → BENCH_NN deltas per payload)
# ---------------------------------------------------------------------- #
def load_trajectory(root: Optional[str] = None) -> List[Tuple[str, Dict]]:
    """Load every committed ``BENCH_nn.json`` report, oldest first."""
    loaded: List[Tuple[str, Dict]] = []
    for _number, path in _numbered_reports(root):
        with open(path, "r", encoding="utf-8") as handle:
            loaded.append((os.path.splitext(os.path.basename(path))[0],
                           json.load(handle)))
    return loaded


def trajectory_rows(root: Optional[str] = None,
                    reports: Optional[List[Tuple[str, Dict]]] = None
                    ) -> List[Dict[str, object]]:
    """Per-payload timing trajectory across the committed reports.

    Each row maps ``payload`` to its per-report median milliseconds (``None``
    where a report predates the payload) plus two speedups for the latest
    report: ``vs_previous`` (against the nearest earlier report measuring
    the payload) and ``vs_first`` (against the oldest such report).  Rows
    follow first-appearance order across the trajectory.  ``reports``
    accepts an already-loaded :func:`load_trajectory` list so callers that
    need both the labels and the rows parse each report file once.
    """
    if reports is None:
        reports = load_trajectory(root)
    names: List[str] = []
    for _label, report in reports:
        for payload in report.get("timings", {}):
            if payload not in names:
                names.append(payload)
    rows: List[Dict[str, object]] = []
    for payload in names:
        series = [
            report.get("timings", {}).get(payload, {}).get("seconds")
            for _label, report in reports
        ]
        measured = [value for value in series if value is not None]
        vs_previous = vs_first = None
        if series and series[-1] is not None and len(measured) > 1:
            vs_previous = measured[-2] / series[-1]
            vs_first = measured[0] / series[-1]
        rows.append({
            "payload": payload,
            "milliseconds": [None if value is None else value * 1000.0
                             for value in series],
            "vs_previous": vs_previous,
            "vs_first": vs_first,
        })
    return rows


def render_trajectory(root: Optional[str] = None) -> str:
    """The ``--trajectory`` table: per-payload ms across BENCH_01..NN.

    Columns are the committed trajectory reports in order; the two trailing
    columns give the latest report's speedup against the previous report
    and against the first report that measured the payload (``-`` where a
    payload has fewer than two measurements).
    """
    reports = load_trajectory(root)
    if not reports:
        return "no committed BENCH_nn.json trajectory reports found"
    labels = [label for label, _report in reports]
    rows = trajectory_rows(reports=reports)
    header = ["payload"] + [f"{label} ms" for label in labels] \
        + ["vs prev", f"vs {labels[0]}"]
    table: List[List[str]] = [header]
    for row in rows:
        cells = [str(row["payload"])]
        cells += ["-" if value is None else f"{value:.2f}"
                  for value in row["milliseconds"]]
        for speedup in (row["vs_previous"], row["vs_first"]):
            cells.append("-" if speedup is None else f"{speedup:.2f}x")
        table.append(cells)
    widths = [max(len(line[column]) for line in table)
              for column in range(len(header))]
    rendered = []
    for index, line in enumerate(table):
        rendered.append("  ".join(
            cell.ljust(width) if column == 0 else cell.rjust(width)
            for column, (cell, width) in enumerate(zip(line, widths))))
        if index == 0:
            rendered.append("  ".join("-" * width for width in widths))
    return "\n".join(rendered)


def write_report(report: Dict, path: Optional[str] = None) -> str:
    """Write ``report``; ``None`` picks the next free ``BENCH_nn.json`` slot."""
    if path is None:
        path = next_output_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return path
