"""TemporalCausalGraph data structure."""

import numpy as np
import pytest

from repro.graph import TemporalCausalEdge, TemporalCausalGraph


class TestEdges:
    def test_edge_validation(self):
        with pytest.raises(ValueError):
            TemporalCausalEdge(-1, 0, 1)
        with pytest.raises(ValueError):
            TemporalCausalEdge(0, 1, -2)

    def test_edge_flags(self):
        assert TemporalCausalEdge(1, 1, 1).is_self_loop
        assert TemporalCausalEdge(0, 1, 0).is_instantaneous
        assert not TemporalCausalEdge(0, 1, 2).is_self_loop

    def test_as_tuple(self):
        assert TemporalCausalEdge(0, 2, 3).as_tuple() == (0, 2, 3)


class TestGraphConstruction:
    def test_requires_positive_size(self):
        with pytest.raises(ValueError):
            TemporalCausalGraph(0)

    def test_default_names(self):
        graph = TemporalCausalGraph(3)
        assert graph.names == ["S0", "S1", "S2"]

    def test_names_length_checked(self):
        with pytest.raises(ValueError):
            TemporalCausalGraph(3, names=["a", "b"])

    def test_add_and_query_edges(self):
        graph = TemporalCausalGraph(3)
        graph.add_edge(0, 1, 2)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)
        assert graph.delay(0, 1) == 2
        assert graph.delay(1, 0) is None

    def test_add_edge_out_of_range(self):
        graph = TemporalCausalGraph(2)
        with pytest.raises(IndexError):
            graph.add_edge(0, 5)

    def test_duplicate_edge_replaces_delay(self):
        graph = TemporalCausalGraph(2)
        graph.add_edge(0, 1, 1)
        graph.add_edge(0, 1, 3)
        assert graph.n_edges == 1
        assert graph.delay(0, 1) == 3

    def test_remove_edge(self):
        graph = TemporalCausalGraph(2)
        graph.add_edge(0, 1)
        graph.remove_edge(0, 1)
        assert graph.n_edges == 0
        graph.remove_edge(0, 1)  # removing a missing edge is a no-op

    def test_parents_children(self):
        graph = TemporalCausalGraph(4)
        graph.add_edge(0, 2)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        assert graph.parents(2) == [0, 1]
        assert graph.children(2) == [3]
        assert graph.parents(0) == []

    def test_contains_iter_len(self):
        graph = TemporalCausalGraph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert (0, 1) in graph
        assert len(graph) == 2
        assert {edge.as_tuple()[:2] for edge in graph} == {(0, 1), (1, 2)}

    def test_equality(self):
        a = TemporalCausalGraph(2)
        a.add_edge(0, 1, 2)
        b = TemporalCausalGraph(2)
        b.add_edge(0, 1, 2)
        c = TemporalCausalGraph(2)
        c.add_edge(0, 1, 3)
        assert a == b
        assert a != c

    def test_self_loops_and_instantaneous_listing(self):
        graph = TemporalCausalGraph(3)
        graph.add_edge(0, 0, 1)
        graph.add_edge(1, 2, 0)
        assert len(graph.self_loops) == 1
        assert len(graph.instantaneous_edges) == 1


class TestMatrixViews:
    def test_adjacency_matrix(self):
        graph = TemporalCausalGraph(3)
        graph.add_edge(0, 1)
        graph.add_edge(2, 2)
        adjacency = graph.adjacency_matrix()
        assert adjacency[0, 1] == 1 and adjacency[2, 2] == 1
        assert adjacency.sum() == 2

    def test_delay_matrix(self):
        graph = TemporalCausalGraph(2)
        graph.add_edge(0, 1, 4)
        delays = graph.delay_matrix(missing=-1)
        assert delays[0, 1] == 4
        assert delays[1, 0] == -1

    def test_from_adjacency_roundtrip(self):
        adjacency = np.array([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        delays = np.where(adjacency, 2, -1)
        graph = TemporalCausalGraph.from_adjacency(adjacency, delays)
        np.testing.assert_array_equal(graph.adjacency_matrix(), adjacency)
        assert graph.delay(0, 1) == 2

    def test_from_adjacency_rejects_non_square(self):
        with pytest.raises(ValueError):
            TemporalCausalGraph.from_adjacency(np.zeros((2, 3)))


class TestConversions:
    def _sample_graph(self):
        graph = TemporalCausalGraph(3, names=["a", "b", "c"])
        graph.add_edge(0, 1, 2)
        graph.add_edge(1, 1, 1)
        graph.add_edge(2, 0, 0)
        return graph

    def test_networkx_roundtrip(self):
        graph = self._sample_graph()
        digraph = graph.to_networkx()
        assert digraph.number_of_edges() == 3
        assert digraph[0][1]["delay"] == 2
        restored = TemporalCausalGraph.from_networkx(digraph)
        assert restored == graph

    def test_dict_roundtrip(self):
        graph = self._sample_graph()
        restored = TemporalCausalGraph.from_dict(graph.to_dict())
        assert restored == graph
        assert restored.names == ["a", "b", "c"]

    def test_json_roundtrip(self):
        graph = self._sample_graph()
        assert TemporalCausalGraph.from_json(graph.to_json()) == graph

    def test_copy_is_independent(self):
        graph = self._sample_graph()
        clone = graph.copy()
        clone.add_edge(2, 2, 1)
        assert graph.n_edges == 3 and clone.n_edges == 4


class TestHelpers:
    def test_without_self_loops(self):
        graph = TemporalCausalGraph(2)
        graph.add_edge(0, 0)
        graph.add_edge(0, 1)
        assert graph.without_self_loops().n_edges == 1

    def test_max_delay(self):
        graph = TemporalCausalGraph(2)
        assert graph.max_delay() == 0
        graph.add_edge(0, 1, 5)
        assert graph.max_delay() == 5

    def test_acyclicity_ignores_self_loops(self):
        graph = TemporalCausalGraph(3)
        graph.add_edge(0, 0)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert graph.is_acyclic_ignoring_self_loops()
        graph.add_edge(2, 0)
        assert not graph.is_acyclic_ignoring_self_loops()

    def test_edge_set_filters_self_loops(self):
        graph = TemporalCausalGraph(2)
        graph.add_edge(0, 0)
        graph.add_edge(0, 1)
        assert graph.edge_set() == {(0, 0), (0, 1)}
        assert graph.edge_set(include_self_loops=False) == {(0, 1)}
