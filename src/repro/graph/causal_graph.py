"""Temporal causal graph data structure.

A temporal causal graph (paper Sec. 3) is a directed graph over ``N`` time
series where each edge ``e_{i,j}`` carries a delay ``d(e_{i,j}) >= 0``: series
``i`` influences series ``j`` after ``d`` time slots.  Self-loops
(self-causation) and zero-delay edges (instantaneous causality) are allowed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np


@dataclass(frozen=True)
class TemporalCausalEdge:
    """A directed causal edge ``source -> target`` with a time delay."""

    source: int
    target: int
    delay: int = 1

    def __post_init__(self) -> None:
        if self.source < 0 or self.target < 0:
            raise ValueError("edge endpoints must be non-negative series indices")
        if self.delay < 0:
            raise ValueError("causal delay must be non-negative")

    @property
    def is_self_loop(self) -> bool:
        return self.source == self.target

    @property
    def is_instantaneous(self) -> bool:
        return self.delay == 0

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.source, self.target, self.delay)


class TemporalCausalGraph:
    """A set of temporal causal edges over ``n_series`` time series.

    Parameters
    ----------
    n_series:
        Number of time series (graph vertices).
    names:
        Optional human-readable series names (defaults to ``S0..S{N-1}``).
    """

    def __init__(self, n_series: int, names: Optional[Sequence[str]] = None) -> None:
        if n_series <= 0:
            raise ValueError("a causal graph needs at least one series")
        self.n_series = int(n_series)
        if names is None:
            names = [f"S{i}" for i in range(n_series)]
        if len(names) != n_series:
            raise ValueError("names length must equal n_series")
        self.names: List[str] = list(names)
        self._edges: Dict[Tuple[int, int], TemporalCausalEdge] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_edge(self, source: int, target: int, delay: int = 1) -> TemporalCausalEdge:
        """Add (or replace) the edge ``source -> target`` with ``delay``."""
        self._check_index(source)
        self._check_index(target)
        edge = TemporalCausalEdge(source, target, delay)
        self._edges[(source, target)] = edge
        return edge

    def remove_edge(self, source: int, target: int) -> None:
        self._edges.pop((source, target), None)

    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.n_series):
            raise IndexError(f"series index {index} out of range [0, {self.n_series})")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def has_edge(self, source: int, target: int) -> bool:
        return (source, target) in self._edges

    def delay(self, source: int, target: int) -> Optional[int]:
        """Delay of the edge, or ``None`` when the edge does not exist."""
        edge = self._edges.get((source, target))
        return None if edge is None else edge.delay

    @property
    def edges(self) -> List[TemporalCausalEdge]:
        return sorted(self._edges.values(), key=lambda e: (e.source, e.target))

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    @property
    def self_loops(self) -> List[TemporalCausalEdge]:
        return [edge for edge in self.edges if edge.is_self_loop]

    @property
    def instantaneous_edges(self) -> List[TemporalCausalEdge]:
        return [edge for edge in self.edges if edge.is_instantaneous]

    def parents(self, target: int) -> List[int]:
        """Indices of series that cause ``target``."""
        self._check_index(target)
        return sorted(edge.source for edge in self._edges.values() if edge.target == target)

    def children(self, source: int) -> List[int]:
        """Indices of series caused by ``source``."""
        self._check_index(source)
        return sorted(edge.target for edge in self._edges.values() if edge.source == source)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        return pair in self._edges

    def __iter__(self) -> Iterator[TemporalCausalEdge]:
        return iter(self.edges)

    def __len__(self) -> int:
        return self.n_edges

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalCausalGraph):
            return NotImplemented
        return (self.n_series == other.n_series
                and {e.as_tuple() for e in self.edges} == {e.as_tuple() for e in other.edges})

    def __repr__(self) -> str:
        return (f"TemporalCausalGraph(n_series={self.n_series}, "
                f"n_edges={self.n_edges})")

    # ------------------------------------------------------------------ #
    # Matrix views
    # ------------------------------------------------------------------ #
    def adjacency_matrix(self) -> np.ndarray:
        """Binary ``N×N`` matrix; ``A[i, j] = 1`` when ``i`` causes ``j``."""
        adjacency = np.zeros((self.n_series, self.n_series), dtype=int)
        for edge in self._edges.values():
            adjacency[edge.source, edge.target] = 1
        return adjacency

    def delay_matrix(self, missing: int = -1) -> np.ndarray:
        """``N×N`` matrix of delays; ``missing`` where there is no edge."""
        delays = np.full((self.n_series, self.n_series), missing, dtype=int)
        for edge in self._edges.values():
            delays[edge.source, edge.target] = edge.delay
        return delays

    @classmethod
    def from_adjacency(cls, adjacency: np.ndarray,
                       delays: Optional[np.ndarray] = None,
                       names: Optional[Sequence[str]] = None) -> "TemporalCausalGraph":
        """Build a graph from a binary adjacency matrix and optional delays."""
        adjacency = np.asarray(adjacency)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError("adjacency must be a square matrix")
        n = adjacency.shape[0]
        graph = cls(n, names=names)
        for i in range(n):
            for j in range(n):
                if adjacency[i, j]:
                    delay = 1
                    if delays is not None and delays[i, j] >= 0:
                        delay = int(delays[i, j])
                    graph.add_edge(i, j, delay)
        return graph

    # ------------------------------------------------------------------ #
    # Conversion / serialization
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.DiGraph:
        """Export to a ``networkx.DiGraph`` with ``delay`` edge attributes."""
        digraph = nx.DiGraph()
        for index, name in enumerate(self.names):
            digraph.add_node(index, name=name)
        for edge in self.edges:
            digraph.add_edge(edge.source, edge.target, delay=edge.delay)
        return digraph

    @classmethod
    def from_networkx(cls, digraph: nx.DiGraph,
                      names: Optional[Sequence[str]] = None) -> "TemporalCausalGraph":
        nodes = sorted(digraph.nodes())
        index_of = {node: i for i, node in enumerate(nodes)}
        graph = cls(len(nodes), names=names)
        for source, target, attributes in digraph.edges(data=True):
            graph.add_edge(index_of[source], index_of[target],
                           int(attributes.get("delay", 1)))
        return graph

    def to_dict(self) -> Dict:
        return {
            "n_series": self.n_series,
            "names": list(self.names),
            "edges": [edge.as_tuple() for edge in self.edges],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "TemporalCausalGraph":
        graph = cls(payload["n_series"], names=payload.get("names"))
        for source, target, delay in payload["edges"]:
            graph.add_edge(int(source), int(target), int(delay))
        return graph

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "TemporalCausalGraph":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------ #
    # Helpers used by evaluation and dataset generation
    # ------------------------------------------------------------------ #
    def copy(self) -> "TemporalCausalGraph":
        clone = TemporalCausalGraph(self.n_series, names=self.names)
        for edge in self.edges:
            clone.add_edge(edge.source, edge.target, edge.delay)
        return clone

    def without_self_loops(self) -> "TemporalCausalGraph":
        clone = TemporalCausalGraph(self.n_series, names=self.names)
        for edge in self.edges:
            if not edge.is_self_loop:
                clone.add_edge(edge.source, edge.target, edge.delay)
        return clone

    def max_delay(self) -> int:
        return max((edge.delay for edge in self.edges), default=0)

    def is_acyclic_ignoring_self_loops(self) -> bool:
        """True when the graph has no directed cycle besides self-loops."""
        digraph = self.without_self_loops().to_networkx()
        return nx.is_directed_acyclic_graph(digraph)

    def edge_set(self, include_self_loops: bool = True) -> set:
        return {
            (edge.source, edge.target)
            for edge in self.edges
            if include_self_loops or not edge.is_self_loop
        }
