"""Random temporal causal graph generators.

Used by the fMRI-style simulator (random sparse connectivity per "brain
network"), by property-based tests, and by the hyper-parameter ablation
benches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.causal_graph import TemporalCausalGraph


def random_dag(n_series: int, edge_probability: float = 0.3,
               max_delay: int = 3, self_loops: bool = False,
               rng: Optional[np.random.Generator] = None) -> TemporalCausalGraph:
    """Random DAG (edges only from lower to higher index) with random delays."""
    if not (0.0 <= edge_probability <= 1.0):
        raise ValueError("edge_probability must be in [0, 1]")
    rng = rng or np.random.default_rng()
    graph = TemporalCausalGraph(n_series)
    for i in range(n_series):
        for j in range(i + 1, n_series):
            if rng.random() < edge_probability:
                graph.add_edge(i, j, int(rng.integers(1, max_delay + 1)))
    if self_loops:
        for i in range(n_series):
            if rng.random() < edge_probability:
                graph.add_edge(i, i, 1)
    return graph


def random_temporal_graph(n_series: int, n_edges: int, max_delay: int = 3,
                          allow_self_loops: bool = True,
                          allow_instantaneous: bool = False,
                          rng: Optional[np.random.Generator] = None) -> TemporalCausalGraph:
    """Random graph with exactly ``n_edges`` distinct edges."""
    rng = rng or np.random.default_rng()
    max_possible = n_series * n_series if allow_self_loops else n_series * (n_series - 1)
    if n_edges > max_possible:
        raise ValueError(f"cannot place {n_edges} edges among {max_possible} ordered pairs")
    graph = TemporalCausalGraph(n_series)
    pairs = [
        (i, j)
        for i in range(n_series)
        for j in range(n_series)
        if allow_self_loops or i != j
    ]
    chosen = rng.choice(len(pairs), size=n_edges, replace=False)
    minimum_delay = 0 if allow_instantaneous else 1
    for index in chosen:
        i, j = pairs[int(index)]
        delay = int(rng.integers(minimum_delay, max_delay + 1))
        if i == j and delay == 0:
            delay = 1  # an instantaneous self-loop is not meaningful
        graph.add_edge(i, j, delay)
    return graph


def stable_var_coefficients(graph: TemporalCausalGraph, max_delay: Optional[int] = None,
                            strength: float = 0.8,
                            rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Lagged coefficient tensor ``W[lag, i, j]`` for a stable VAR process.

    Coefficients are placed only where the graph has edges (at the edge's
    delay) and rescaled so the companion-matrix spectral radius stays below
    one, which keeps simulated series bounded.
    """
    rng = rng or np.random.default_rng()
    if max_delay is None:
        max_delay = max(graph.max_delay(), 1)
    n = graph.n_series
    weights = np.zeros((max_delay + 1, n, n))
    for edge in graph.edges:
        sign = rng.choice([-1.0, 1.0])
        magnitude = rng.uniform(0.4, 0.9)
        lag = min(edge.delay, max_delay)
        weights[lag, edge.source, edge.target] = sign * magnitude
    # Rescale for stability using the companion matrix of the lagged part.
    lagged = weights[1:]
    if lagged.size:
        p = lagged.shape[0]
        companion = np.zeros((n * p, n * p))
        for lag in range(p):
            companion[:n, lag * n:(lag + 1) * n] = lagged[lag].T
        if p > 1:
            companion[n:, :-n] = np.eye(n * (p - 1))
        radius = max(abs(np.linalg.eigvals(companion)))
        if radius >= strength:
            weights[1:] *= strength / (radius + 1e-9)
    return weights
