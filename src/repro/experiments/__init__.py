"""Experiment harness: regenerate every table and figure of the paper.

Each ``run_*`` function returns a :class:`~repro.experiments.reporting.ResultTable`
(or a structured report dict) that prints the same rows the paper reports.
The ``fast`` flag trades series length / seeds / epochs for runtime so the
benchmark suite stays CPU-friendly; the shapes of the comparisons are
preserved (see EXPERIMENTS.md).
"""

from repro.experiments.reporting import ResultTable, CellStatistic, format_mean_std
from repro.experiments.runner import (
    ExperimentSpec,
    MethodSpec,
    run_method_on_dataset,
    evaluate_methods,
    default_method_specs,
    causalformer_spec,
)
from repro.experiments.table1 import run_table1, table1_dataset_specs
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3, ABLATION_NAMES
from repro.experiments.figure7 import describe_structures
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure10 import run_figure10

__all__ = [
    "ResultTable",
    "CellStatistic",
    "format_mean_std",
    "ExperimentSpec",
    "MethodSpec",
    "run_method_on_dataset",
    "evaluate_methods",
    "default_method_specs",
    "causalformer_spec",
    "run_table1",
    "table1_dataset_specs",
    "run_table2",
    "run_table3",
    "ABLATION_NAMES",
    "describe_structures",
    "run_figure8",
    "run_figure10",
]
