"""Deterministic fault injection for the discovery service.

The execution layer (executor, trainers, cache) carries *seams* —
:func:`fault_point` calls naming a site — at which a configured
:class:`FaultPlan` can deterministically inject failures: kill the worker
process handling a dispatch, raise inside a training step, delay a job, or
corrupt the next cache write.  With no plan active a seam is a single
module-global ``None`` check, so production paths pay nothing.

Plans are parsed from the ``REPRO_FAULTS`` environment variable or the CLI's
``--faults`` flag.  The grammar is a comma-separated list of clauses::

    <action>@<site>=<occurrence>[:key=value]...

    kill@dispatch=2                the worker handling the 2nd pooled unit
                                   dispatch exits hard (os._exit)
    raise@train_step=7             the 7th fused training step raises
    raise@lane_step=4:lane=1       the 4th stacked lockstep step raises a
                                   LaneFault for lane row 1 (or model=I for
                                   an admission index)
    delay@job=3:seconds=0.5        the 3rd executed job sleeps 0.5 s first
    corrupt@cache_write=1          the 1st result-cache write is truncated

Determinism contract: every clause fires **exactly once**, when its site's
process-local occurrence counter (1-based) reaches the clause's number.
There is no randomness anywhere in the harness — the same plan against the
same workload injects the same faults at the same places, which is what
lets the chaos tests assert bit-identical recovery.  Pool workers are
forked from the submitting process and inherit the plan (and the counters
as of the fork); sites that count inside workers (``job``, ``train_step``)
therefore count per process, while ``dispatch`` is always counted in the
submitting process and travels to the victim worker as an explicit
directive.

Known sites
-----------
``dispatch``
    One count per unit submitted to the process pool
    (:meth:`repro.service.executor.JobExecutor` — ``kill`` supported).
``job``
    One count per job execution (:func:`repro.service.executor.execute_job`
    — ``delay`` and ``raise`` supported).
``train_step``
    One count per fused training step (:class:`repro.core.training.Trainer`
    — ``raise`` supported).
``lane_step``
    One count per stacked lockstep step
    (:class:`repro.core.batched.StackedCausalFormerTrainer` — ``raise``
    produces a :class:`LaneFault` and quarantines the lane).
``round``
    One count per stacked training round
    (:class:`repro.core.batched.StackedCausalFormerTrainer` — a plain
    ``raise`` here crashes the *whole* stacked fit; the seam the
    checkpoint/resume chaos tests interrupt at).
``cache_write``
    One count per :meth:`repro.service.cache.ResultCache.put` (``corrupt``
    supported).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

#: environment variable holding the default fault plan
ENV_VAR = "REPRO_FAULTS"

#: actions the grammar accepts
ACTIONS = ("kill", "raise", "delay", "corrupt")

#: exit code used by an injected worker kill (recognisable in waitpid logs)
KILL_EXIT_CODE = 87


class FaultSpecError(ValueError):
    """A fault-plan string that does not parse."""


class InjectedFault(RuntimeError):
    """Raised by a ``raise`` clause firing at its seam."""

    def __init__(self, spec: "FaultSpec") -> None:
        message = spec.params.get("error") or f"injected fault at {spec}"
        super().__init__(message)
        self.spec = spec


class LaneFault(InjectedFault):
    """A ``raise`` at the ``lane_step`` site, attributed to one lane.

    Carries the admission index of the model whose lane should be
    quarantined; the stacked trainer compacts that lane out and the service
    layer retries its job solo.
    """

    def __init__(self, spec: "FaultSpec", model_index: int) -> None:
        super().__init__(spec)
        self.model_index = model_index


@dataclass
class FaultSpec:
    """One parsed clause: fire ``action`` at ``site`` occurrence ``occurrence``."""

    action: str
    site: str
    occurrence: int
    params: Dict[str, str] = field(default_factory=dict)

    def __str__(self) -> str:
        text = f"{self.action}@{self.site}={self.occurrence}"
        for key in sorted(self.params):
            text += f":{key}={self.params[key]}"
        return text

    @property
    def seconds(self) -> float:
        """Delay duration (``seconds=``), defaulting to 0."""
        return float(self.params.get("seconds", 0.0))


def _parse_clause(clause: str) -> FaultSpec:
    head, _sep, tail = clause.partition(":")
    if "@" not in head or "=" not in head:
        raise FaultSpecError(
            f"bad fault clause {clause!r}; expected action@site=occurrence")
    action, _at, site_part = head.partition("@")
    site, _eq, count = site_part.partition("=")
    action = action.strip()
    site = site.strip()
    if action not in ACTIONS:
        raise FaultSpecError(
            f"unknown fault action {action!r}; known: {', '.join(ACTIONS)}")
    try:
        occurrence = int(count)
    except ValueError:
        raise FaultSpecError(
            f"fault occurrence must be an integer, got {count!r}")
    if occurrence < 1:
        raise FaultSpecError("fault occurrences are 1-based")
    params: Dict[str, str] = {}
    if tail:
        for pair in tail.split(":"):
            key, sep, value = pair.partition("=")
            if not sep or not key.strip():
                raise FaultSpecError(
                    f"bad fault parameter {pair!r}; expected key=value")
            params[key.strip()] = value.strip()
    return FaultSpec(action=action, site=site, occurrence=occurrence,
                     params=params)


class FaultPlan:
    """An ordered list of :class:`FaultSpec` clauses."""

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)

    @classmethod
    def parse(cls, text: Optional[str]) -> "FaultPlan":
        specs = []
        for clause in (text or "").split(","):
            clause = clause.strip()
            if clause:
                specs.append(_parse_clause(clause))
        return cls(specs)

    def to_spec(self) -> str:
        """The canonical plan string (round-trips through :meth:`parse`)."""
        return ",".join(str(spec) for spec in self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({self.to_spec()!r})"


class FaultInjector:
    """Counts seam visits and fires the plan's clauses deterministically."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters: Dict[str, int] = {}
        self.fired: List[FaultSpec] = []
        self._pending = list(plan.specs)

    def fire(self, site: str, **context: Any) -> Optional[FaultSpec]:
        """Count one visit to ``site``; fire any clause that comes due.

        ``raise`` clauses raise (:class:`InjectedFault`, or
        :class:`LaneFault` at the ``lane_step`` site); other actions return
        the spec for the seam's owner to enact.  At most one non-raising
        spec is returned per visit (the first due in plan order).
        """
        count = self.counters.get(site, 0) + 1
        self.counters[site] = count
        due = [spec for spec in self._pending
               if spec.site == site and spec.occurrence == count]
        if not due:
            return None
        returned: Optional[FaultSpec] = None
        raising: Optional[FaultSpec] = None
        for spec in due:
            self._pending.remove(spec)
            self.fired.append(spec)
            self._record(spec, context)
            if spec.action == "raise":
                raising = raising or spec
            else:
                returned = returned or spec
        if raising is not None:
            if site == "lane_step":
                raise LaneFault(raising, _resolve_lane(raising, context))
            raise InjectedFault(raising)
        return returned

    @staticmethod
    def _record(spec: FaultSpec, context: Dict[str, Any]) -> None:
        from repro.telemetry import get_telemetry

        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("faults.injected").inc()
            telemetry.event("fault_injected", fault=str(spec),
                            action=spec.action, site=spec.site,
                            occurrence=spec.occurrence,
                            **{key: value for key, value in context.items()
                               if isinstance(value, (str, int, float, bool))})

    def __repr__(self) -> str:
        return (f"FaultInjector({self.plan.to_spec()!r}, "
                f"fired={len(self.fired)}/{len(self.plan)})")


def _resolve_lane(spec: FaultSpec, context: Dict[str, Any]) -> int:
    """Admission index of the lane a ``lane_step`` raise targets.

    ``model=I`` names an admission index directly; ``lane=L`` names a row
    of the current stack (resolved through the seam's ``models`` context —
    the admission indices of the step's participants).  With neither, the
    last participating lane is targeted.
    """
    if "model" in spec.params:
        return int(spec.params["model"])
    models = list(context.get("models") or ())
    if not models:
        return int(spec.params.get("lane", 0))
    if "lane" in spec.params:
        row = int(spec.params["lane"])
        if 0 <= row < len(models):
            return int(models[row])
    return int(models[-1])


# ---------------------------------------------------------------------- #
# Process-global injector
# ---------------------------------------------------------------------- #
_UNSET = object()
_injector: Any = _UNSET


def configure(plan: Union[None, str, FaultPlan]) -> Optional[FaultInjector]:
    """Install a plan process-wide (``None``/empty disables injection)."""
    global _injector
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    if plan is None or not len(plan):
        _injector = None
        return None
    _injector = FaultInjector(plan)
    return _injector


def reset() -> None:
    """Forget any installed plan, back to the ``REPRO_FAULTS`` default.

    The environment is re-resolved on the next :func:`get_injector` call
    (with fresh counters), so embedders that configured an explicit plan
    return to the ambient chaos configuration, not to silence.
    """
    global _injector
    _injector = _UNSET


def get_injector() -> Optional[FaultInjector]:
    """The active injector (resolving ``REPRO_FAULTS`` on first use)."""
    global _injector
    if _injector is _UNSET:
        configure(os.environ.get(ENV_VAR))
    return _injector


def active() -> bool:
    """Whether any fault plan is currently installed."""
    return get_injector() is not None


def fault_point(site: str, **context: Any) -> Optional[FaultSpec]:
    """The injection seam: a no-op unless a plan is active.

    Raises for due ``raise`` clauses; returns a due non-raising spec for
    the caller to enact (kill / delay / corrupt), else ``None``.
    """
    injector = get_injector()
    if injector is None:
        return None
    return injector.fire(site, **context)


@contextmanager
def override(plan: Union[None, str, FaultPlan]) -> Iterator[Optional[FaultInjector]]:
    """Temporarily install a plan, restoring the previous injector on exit.

    The restoration preserves the previous injector *object* (counters and
    one-shot state included), so tests can run under an environment-level
    chaos plan without disturbing it.
    """
    global _injector
    previous = get_injector()
    try:
        yield configure(plan)
    finally:
        _injector = previous
