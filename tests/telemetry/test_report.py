"""Trace reporting: loading, span-tree rendering, summaries."""

import json

from repro.telemetry.report import (cache_summary, event_summary, load_trace,
                                    metrics_summary, render_report,
                                    render_span_tree, render_trace,
                                    summarize_spans, training_summary)
from repro.telemetry.runtime import Telemetry


def span(name, span_id, parent_id=None, time=0.0, duration=0.1, attrs=None):
    return {"kind": "span", "name": name, "span_id": span_id,
            "parent_id": parent_id, "time": time, "duration": duration,
            "status": "ok", "attrs": attrs or {}}


def event(name, span_id=None, **attrs):
    return {"kind": "event", "name": name, "span_id": span_id,
            "time": 0.0, "attrs": attrs}


class TestLoadTrace:
    def test_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "event", "name": "ok"}\n'
                        "not json\n"
                        "\n"
                        "[1, 2]\n"
                        '{"kind": "span", "name": "s"}\n')
        records = load_trace(str(path))
        assert [record["name"] for record in records] == ["ok", "s"]


class TestRenderSpanTree:
    def test_nested_rendering_with_attrs(self):
        roots = [dict(span("job", "a", attrs={"job_id": "j1"}),
                      children=[dict(span("train", "b", "a"), children=[])])]
        lines = render_span_tree(roots)
        assert lines[0].startswith("job job_id=j1")
        assert lines[1].startswith("  train")

    def test_bursts_of_siblings_collapse(self):
        children = [dict(span("epoch", f"e{i}", "r", time=float(i),
                              duration=0.5), children=[])
                    for i in range(10)]
        roots = [dict(span("fit", "r", duration=5.0), children=children)]
        lines = render_span_tree(roots)
        assert len(lines) == 2
        assert "epoch ×10" in lines[1]
        assert "total 5.00 s" in lines[1]
        assert "mean 500.0 ms" in lines[1]

    def test_few_siblings_stay_expanded(self):
        children = [dict(span("epoch", f"e{i}", "r"), children=[])
                    for i in range(3)]
        roots = [dict(span("fit", "r"), children=children)]
        assert len(render_span_tree(roots)) == 4


class TestSummaries:
    def test_summarize_spans_aggregates_by_name(self):
        records = [span("a", "1", duration=0.1), span("a", "2", duration=0.2),
                   span("b", "3", duration=0.3), event("x")]
        summary = summarize_spans(records)
        assert summary["a"] == {"count": 2, "total_seconds": 0.3}
        assert summary["b"]["count"] == 1

    def test_training_summary_groups_by_job_and_model(self):
        records = [
            span("job", "j", attrs={"job_id": "abc123"}),
            event("train_epoch", span_id="j", epoch=0, loss=1.0,
                  validation_loss=0.9),
            event("train_epoch", span_id="j", epoch=1, loss=0.5,
                  validation_loss=0.4),
            event("early_stop", span_id="j"),
        ]
        lines = training_summary(records)
        assert len(lines) == 1
        assert lines[0].startswith("abc123: 2 epochs, final loss 0.5")
        assert "best val 0.4" in lines[0]
        assert "[early_stop]" in lines[0]

    def test_cache_summary(self):
        metrics = {"counters": {"cache.hits": 3, "cache.misses": 1}}
        assert cache_summary(metrics) == "hits 3, misses 1 (75% hit rate)"
        assert cache_summary({"counters": {}}) is None

    def test_metrics_summary_lines(self):
        metrics = {
            "counters": {"jobs": 4},
            "gauges": {"depth": 2},
            "histograms": {"lat": {"count": 2, "total": 0.2,
                                   "min": 0.05, "max": 0.15}},
        }
        lines = metrics_summary(metrics)
        assert "counter   jobs = 4" in lines
        assert "gauge     depth = 2" in lines
        assert any(line.startswith("histogram lat: count 2, mean 100.0 ms")
                   for line in lines)

    def test_event_summary_skips_train_epoch(self):
        records = [event("train_epoch"), event("pool_fallback"),
                   event("pool_fallback")]
        assert event_summary(records) == ["pool_fallback ×2"]


class TestEndToEnd:
    def test_render_trace_from_a_real_runtime(self, tmp_path):
        from repro.telemetry.events import JsonlSink

        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(sinks=[JsonlSink(str(path))])
        with telemetry.trace("job", job_id="deadbeef"):
            telemetry.event("train_epoch", epoch=0, loss=0.25, model=0)
            telemetry.counter("cache.hits").inc()
            telemetry.counter("cache.misses").inc()
        telemetry.close()

        text = render_trace(str(path))
        assert text.startswith(f"telemetry report: {path}")
        assert "== span tree ==" in text
        assert "job job_id=deadbeef" in text
        assert "== training ==" in text
        assert "deadbeef model=0: 1 epochs" in text
        assert "== cache ==" in text
        assert "hits 1, misses 1 (50% hit rate)" in text
        assert "== metrics ==" in text

    def test_render_report_on_empty_records(self):
        text = render_report([])
        assert "0 records" in text
        assert "span tree" not in text
