"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures.  The
experiment functions are expensive (they train several models), so each
benchmark runs its payload exactly once (``rounds=1, iterations=1``) — the
timing pytest-benchmark reports is the wall-clock cost of regenerating that
artefact, and the artefact itself is printed so the numbers can be compared
against the paper (see EXPERIMENTS.md).
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
for path in (_ROOT, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

import json

import pytest

RESULTS_DIR = os.path.join(_ROOT, "benchmarks", "results")


def save_result(name: str, payload) -> str:
    """Persist a benchmark's structured result next to the suite."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path


@pytest.fixture()
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
