"""MetricsRegistry: counters, gauges, histograms, snapshots and merging."""

import threading

import pytest

from repro.telemetry.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs")
        counter.inc()
        counter.inc(2.5)
        assert registry.counter("jobs").value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("jobs").inc(-1)

    def test_same_name_returns_same_counter(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")


class TestGauge:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(4.0)
        gauge.add(-1.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_observations_update_stats(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (0.002, 0.02, 0.2):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(0.222)
        assert histogram.mean == pytest.approx(0.074)

    def test_bucket_placement(self):
        histogram = MetricsRegistry().histogram("latency",
                                                buckets=(0.01, 0.1, 1.0))
        histogram.observe(0.005)   # <= 0.01
        histogram.observe(0.05)    # <= 0.1
        histogram.observe(0.05)
        histogram.observe(5.0)     # overflow bucket
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == [0.01, 0.1, 1.0]
        assert snapshot["bucket_counts"] == [1, 2, 0, 1]
        assert snapshot["min"] == pytest.approx(0.005)
        assert snapshot["max"] == pytest.approx(5.0)

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_BUCKETS[0] <= 0.0001
        assert DEFAULT_BUCKETS[-1] >= 30.0


class TestRegistry:
    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.gauge("depth").set(2)
        registry.histogram("latency").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 1.0}
        assert snapshot["gauges"] == {"depth": 2.0}
        assert snapshot["histograms"]["latency"]["count"] == 1

    def test_merge_adds_counters_and_histograms(self):
        source = MetricsRegistry()
        source.counter("hits").inc(2)
        source.histogram("latency").observe(0.01)
        source.gauge("depth").set(7)
        target = MetricsRegistry()
        target.counter("hits").inc()
        target.histogram("latency").observe(0.2)
        target.merge(source.snapshot())
        assert target.counter("hits").value == 3.0
        assert target.histogram("latency").count == 2
        assert target.histogram("latency").total == pytest.approx(0.21)
        assert target.gauge("depth").value == 7.0

    def test_merge_rejects_bucket_layout_mismatch(self):
        source = MetricsRegistry()
        source.histogram("latency", buckets=(1.0, 2.0)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("latency", buckets=(5.0,)).observe(0.5)
        with pytest.raises(ValueError):
            target.merge(source.snapshot())

    def test_len_and_clear(self):
        registry = MetricsRegistry()
        assert len(registry) == 0
        registry.counter("a")
        registry.gauge("b")
        assert len(registry) == 2
        registry.clear()
        assert len(registry) == 0

    def test_thread_safety_of_increments(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.counter("n").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n").value == 4000.0
