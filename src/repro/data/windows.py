"""Windowing and normalisation utilities for time series arrays."""

from __future__ import annotations

import numpy as np


def sliding_windows(values: np.ndarray, window: int, stride: int = 1) -> np.ndarray:
    """Cut an ``(N, T)`` array into overlapping windows.

    Returns an array of shape ``(n_windows, N, window)``.  The causality-aware
    transformer treats each window as one training sample.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("expected a 2-D (n_series, n_timesteps) array")
    n_series, n_timesteps = values.shape
    if window <= 0:
        raise ValueError("window length must be positive")
    if stride <= 0:
        raise ValueError("stride must be positive")
    if window > n_timesteps:
        raise ValueError(f"window {window} longer than the series ({n_timesteps} steps)")
    starts = range(0, n_timesteps - window + 1, stride)
    return np.stack([values[:, s:s + window] for s in starts], axis=0)


def zscore_normalize(values: np.ndarray, axis: int = 1, epsilon: float = 1e-8) -> np.ndarray:
    """Per-series z-score normalisation (zero mean, unit variance)."""
    values = np.asarray(values, dtype=float)
    mean = values.mean(axis=axis, keepdims=True)
    std = values.std(axis=axis, keepdims=True)
    return (values - mean) / (std + epsilon)


def minmax_normalize(values: np.ndarray, axis: int = 1, epsilon: float = 1e-8) -> np.ndarray:
    """Per-series min-max normalisation to ``[0, 1]``."""
    values = np.asarray(values, dtype=float)
    low = values.min(axis=axis, keepdims=True)
    high = values.max(axis=axis, keepdims=True)
    return (values - low) / (high - low + epsilon)


def lagged_design_matrix(values: np.ndarray, max_lag: int) -> tuple:
    """Build a lagged regression design for VAR / Granger baselines.

    Returns ``(X, Y)`` where ``X`` has shape ``(T - max_lag, N * max_lag)``
    (columns ordered lag-major: all series at lag 1, then lag 2, ...) and
    ``Y`` has shape ``(T - max_lag, N)``.
    """
    values = np.asarray(values, dtype=float)
    n_series, n_timesteps = values.shape
    if max_lag <= 0:
        raise ValueError("max_lag must be positive")
    if n_timesteps <= max_lag:
        raise ValueError("series too short for the requested lag")
    rows = n_timesteps - max_lag
    design = np.zeros((rows, n_series * max_lag))
    for lag in range(1, max_lag + 1):
        block = values[:, max_lag - lag:n_timesteps - lag].T
        design[:, (lag - 1) * n_series:lag * n_series] = block
    targets = values[:, max_lag:].T
    return design, targets
