"""Core types of the lint framework: findings, module sources, checkers.

A :class:`Checker` receives one parsed :class:`ModuleSource` at a time and
yields :class:`Finding` objects anchored at the offending AST node.  The
framework (:mod:`repro.analysis.runner`) owns file discovery, suppression
handling (:mod:`repro.analysis.suppressions`) and reporting
(:mod:`repro.analysis.reporters`); checkers stay pure AST walks.

Everything in this package is standard-library only — the linter must be
runnable in CI before the scientific stack imports (and a numpy-level
breakage must not take the lint gate down with it).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored at a source location.

    ``line``/``column`` follow the AST convention (1-based line, 0-based
    column).  ``path`` is repository-relative with ``/`` separators so
    reports are stable across platforms.
    """

    rule: str
    path: str
    line: int
    column: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


class ModuleSource:
    """One file under analysis: path, text, parsed tree, parent links.

    ``parents`` maps every AST node to its parent, built lazily on first
    access — checkers that only walk top-down never pay for it.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestors, innermost first."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)


@dataclass
class CheckerConfig:
    """Per-rule configuration shared by the built-in checkers.

    The defaults encode this repository's real invariants; library users
    embedding the framework pass their own instance to
    :func:`repro.analysis.runner.lint_paths`.
    """

    #: ``no-print``: modules (repo-relative posix paths) allowed to print —
    #: the CLI surfaces whose stdout is the product, not diagnostics.
    print_allowlist: Tuple[str, ...] = (
        "src/repro/service/cli.py",
        "src/repro/analysis/cli.py",
    )

    #: ``dtype-purity``: engine modules where a float64 literal outside a
    #: blessed promotion site is a bug (the float32 default path must not
    #: silently promote).
    dtype_modules: Tuple[str, ...] = (
        "src/repro/nn/inference.py",
        "src/repro/nn/training_engine.py",
        "src/repro/nn/functional.py",
        "src/repro/nn/optim.py",
        "src/repro/core/batched.py",
    )

    #: ``telemetry-guard``: hot modules whose telemetry emissions must be
    #: dominated by an ``if telemetry.enabled``-style guard (the
    #: telemetry-off contract is one attribute check per step).
    telemetry_modules: Tuple[str, ...] = (
        "src/repro/nn/inference.py",
        "src/repro/nn/training_engine.py",
        "src/repro/core/training.py",
        "src/repro/core/batched.py",
    )

    #: ``hot-path-alloc``: decorator names that mark a hot function, plus an
    #: optional explicit ``(module path, qualified name)`` list for code
    #: that cannot import :mod:`repro.contracts`.
    hot_decorators: Tuple[str, ...] = ("hot_path",)
    hot_functions: Tuple[Tuple[str, str], ...] = ()

    #: ``hot-path-alloc``: numpy namespace calls that allocate a fresh array.
    allocating_calls: Tuple[str, ...] = (
        "zeros", "empty", "ones", "full",
        "zeros_like", "empty_like", "ones_like", "full_like",
        "array", "copy", "concatenate", "stack", "vstack", "hstack",
        "tile", "repeat", "ascontiguousarray",
    )


@dataclass
class LintConfig:
    """Framework-level configuration: scope, rule selection, rule settings."""

    #: Root the reported paths are relative to.
    root: str = "."
    checkers: CheckerConfig = field(default_factory=CheckerConfig)

    def with_root(self, root: str) -> "LintConfig":
        return replace(self, root=root)


class Checker:
    """Base class for lint rules.

    Subclasses set ``name`` (the rule id used in reports and in
    ``# repro: allow(<name>)`` suppressions) and ``description`` (one line,
    shown by ``lint --list-rules``), then implement :meth:`check`.
    Registration happens through :func:`repro.analysis.registry.register`.
    """

    name: str = ""
    description: str = ""

    def check(self, module: ModuleSource,
              config: LintConfig) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared AST helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def dotted_name(node: ast.AST) -> Optional[str]:
        """``a.b.c`` for a Name/Attribute chain, else ``None``."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    @staticmethod
    def subscript_base(node: ast.AST) -> Optional[str]:
        """The dotted base of a (possibly nested) subscript expression."""
        while isinstance(node, ast.Subscript):
            node = node.value
        return Checker.dotted_name(node)

    @staticmethod
    def in_scope(module: ModuleSource, scope: Sequence[str]) -> bool:
        """Whether the module's path is listed in ``scope``."""
        return module.path in scope
