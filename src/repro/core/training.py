"""Training loop for the causality-aware transformer.

Follows the paper's scheme (Sec. 5.3): parameters initialised with He
initialisation, optimised with Adam, and trained with an early-stop strategy
on a held-out validation split of the windows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import faults
from repro.core.config import CausalFormerConfig
from repro.core.transformer import CausalityAwareTransformer
from repro.nn.inference import profiling_hook
from repro.nn.optim import Adam
from repro.nn.parallel import get_engine_threads
from repro.nn.training_engine import TrainingEngine
from repro.telemetry import get_telemetry, verbose_telemetry

#: Element budget for the fused multi-step training gather: blocks of
#: mini-batches are staged through one ``np.take`` into a buffer of at most
#: this many elements (~32 MB at float64), amortising per-step gather
#: dispatch without letting wide window sets balloon the arena.
GATHER_ELEMENT_BUDGET = 4_000_000


@dataclass
class TrainingHistory:
    """Per-epoch losses and the early-stopping bookkeeping."""

    train_loss: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_validation_loss: float = float("inf")
    stopped_early: bool = False
    #: training produced a NaN/inf epoch or validation loss and was aborted.
    #: A non-finite loss can never improve ``best_validation_loss``, so
    #: without this flag a diverged run would silently burn the whole
    #: patience window and hand back garbage weights with ``best_epoch == -1``.
    diverged: bool = False
    #: the lane training this model raised mid-fit and was quarantined out
    #: of its stacked fleet (see
    #: :class:`repro.core.batched.StackedCausalFormerTrainer`); the history
    #: covers only the epochs completed before the fault.
    quarantined: bool = False

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)

    def to_dict(self) -> dict:
        """JSON-able snapshot (used by the fit checkpoints)."""
        return {
            "train_loss": list(self.train_loss),
            "validation_loss": list(self.validation_loss),
            "best_epoch": self.best_epoch,
            "best_validation_loss": self.best_validation_loss,
            "stopped_early": self.stopped_early,
            "diverged": self.diverged,
            "quarantined": self.quarantined,
        }

    def restore(self, payload: dict) -> "TrainingHistory":
        """Overwrite this history in place from :meth:`to_dict` output.

        In place (rather than a classmethod constructor) because trainers
        and lanes hold references to the history object they report into —
        a resumed fit must keep appending to the same object."""
        self.train_loss = [float(value) for value in payload["train_loss"]]
        self.validation_loss = [float(value)
                                for value in payload["validation_loss"]]
        self.best_epoch = int(payload["best_epoch"])
        self.best_validation_loss = float(payload["best_validation_loss"])
        self.stopped_early = bool(payload.get("stopped_early", False))
        self.diverged = bool(payload.get("diverged", False))
        self.quarantined = bool(payload.get("quarantined", False))
        return self


def losses_diverged(epoch_loss: float, validation_loss: float) -> bool:
    """Whether a (train, validation) loss pair signals divergence.

    Shared by :class:`Trainer` and the stacked trainer so both stop on the
    exact same condition (the batched path's identity contract includes the
    divergence bookkeeping).
    """
    return not (np.isfinite(epoch_loss) and np.isfinite(validation_loss))


def split_windows(windows: np.ndarray, rng: np.random.Generator,
                  config: CausalFormerConfig):
    """Shuffle-split windows into (train, validation) per the config.

    Shared by :class:`Trainer` and the stacked trainer
    (:mod:`repro.core.batched`) — the batched path's bit-identity contract
    requires both to draw exactly the same split from the same rng stream.
    """
    n_windows = windows.shape[0]
    indices = rng.permutation(n_windows)
    n_validation = int(round(n_windows * config.validation_fraction))
    n_validation = min(max(n_validation, 1 if n_windows > 1 else 0),
                       n_windows - 1)
    validation_idx = indices[:n_validation]
    train_idx = indices[n_validation:]
    return windows[train_idx], windows[validation_idx] if n_validation else None


class Trainer:
    """Adam + early stopping over sliding windows of one dataset."""

    def __init__(self, model: CausalityAwareTransformer,
                 config: Optional[CausalFormerConfig] = None) -> None:
        self.model = model
        self.config = config or model.config
        self._parameters = list(model.parameters())
        self.optimizer = Adam(self._parameters, lr=self.config.learning_rate,
                              clip_norm=self.config.grad_clip)
        self.history = TrainingHistory()
        # The model's fused no-autograd engine runs the validation passes;
        # sharing it (rather than building a private one) means predict()
        # and the stacked trainer reuse the same scratch arena.
        self._inference = model.inference_engine()
        # Training steps run on the fused no-autograd training engine
        # (hand-derived backward, gradients written straight into the flat
        # Adam buffer), sharing the inference engine's arena so training,
        # validation and prediction draw from one buffer pool.
        self._training = TrainingEngine(model, self.optimizer,
                                        arena=self._inference.arena)
        # Resolved per fit(): the active telemetry runtime, or a transient
        # stderr one when fit(verbose=True) runs with telemetry off.
        self._telemetry = None

    def _resolve_telemetry(self, verbose: bool = False):
        """Pick the runtime for this run and sync the engine profiling hook.

        The fused engines' per-op hook is instance state with zero cost when
        off; it follows the runtime's ``engine_profiling`` flag so enabling
        telemetry after the trainer was built still takes effect (and
        disabling it cleanly unhooks).  The hook caches its histograms and
        the metrics registry locks their updates, so profiled engines stay
        safe under threaded op execution.
        """
        telemetry = self._telemetry = verbose_telemetry(verbose)
        if telemetry.enabled:
            telemetry.gauge("engine.threads").set(get_engine_threads())
        if telemetry.engine_profiling:
            hook = profiling_hook(telemetry)
            for engine in (self._training, self._inference):
                engine.enable_profiling(hook)
        else:
            for engine in (self._training, self._inference):
                engine.disable_profiling()
        return telemetry

    # ------------------------------------------------------------------ #
    # Data preparation
    # ------------------------------------------------------------------ #
    def make_windows(self, values: np.ndarray) -> np.ndarray:
        """Cut the ``(N, T_total)`` series into training windows."""
        from repro.data.windows import sliding_windows

        return sliding_windows(values, self.config.window, self.config.window_stride)

    def _split(self, windows: np.ndarray, rng: np.random.Generator):
        return split_windows(windows, rng, self.config)

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, values: np.ndarray, verbose: bool = False,
            checkpoint=None) -> TrainingHistory:
        """Train on an ``(N, T_total)`` array; returns the loss history.

        ``checkpoint`` (an optional
        :class:`~repro.service.checkpoint.FitCheckpointer`) snapshots the
        full optimisation state — weights, flat Adam buffers, RNG state and
        the history bookkeeping — at its cadence; when it already holds a
        snapshot for this fit, training resumes from the saved epoch and the
        finished run is **bit-identical** to an uninterrupted one (every
        array restores in place, the generator resumes from the exact saved
        bit-generator state).  The snapshot is cleared on completion.
        """
        telemetry = self._resolve_telemetry(verbose)
        rng = np.random.default_rng(self.config.seed)
        windows = self.make_windows(values)
        # Cast once to the model's parameter dtype (float32 engine default)
        # so no per-batch Tensor construction re-casts the data.
        dtype = next(iter(self.model.parameters())).data.dtype
        windows = np.ascontiguousarray(windows, dtype=dtype)
        train_windows, validation_windows = self._split(windows, rng)

        best_state = None
        epochs_without_improvement = 0
        start_epoch = 0
        if checkpoint is not None:
            state = checkpoint.load()
            if state is not None:
                try:
                    start_epoch, best_state, epochs_without_improvement = \
                        self._restore_fit_state(state, rng)
                except (KeyError, TypeError, ValueError):
                    # A snapshot from an incompatible config/architecture:
                    # degrade to a fresh fit (validation happens before any
                    # mutation, so nothing is half-restored).
                    if telemetry.enabled:
                        telemetry.counter("checkpoint.rejected").inc()
                        telemetry.event("checkpoint_rejected",
                                        key=checkpoint.key)
                else:
                    if telemetry.enabled:
                        telemetry.event("fit_resumed", epoch=start_epoch,
                                        key=checkpoint.key)

        # repro: allow(telemetry-guard): fit-scoped span; null trace is free
        with telemetry.trace("train_fit", n_windows=windows.shape[0],
                             max_epochs=self.config.max_epochs,
                             seed=self.config.seed) as fit_span:
            for epoch in range(start_epoch, self.config.max_epochs):
                epoch_loss = self._run_epoch(train_windows, rng)
                self.history.train_loss.append(epoch_loss)

                if validation_windows is not None and len(validation_windows):
                    validation_loss = self._evaluate(validation_windows)
                else:
                    validation_loss = epoch_loss
                self.history.validation_loss.append(validation_loss)

                if telemetry.enabled:
                    telemetry.event("train_epoch", epoch=epoch,
                                    loss=epoch_loss,
                                    validation_loss=validation_loss)

                if losses_diverged(epoch_loss, validation_loss):
                    # A non-finite loss never improves and never errors out
                    # of the patience window: stop immediately and flag the
                    # run, restoring the last finite best state below (if
                    # any).
                    self.history.diverged = True
                    if telemetry.enabled:
                        telemetry.event("train_diverged", epoch=epoch,
                                        loss=epoch_loss,
                                        validation_loss=validation_loss)
                    break

                if validation_loss < self.history.best_validation_loss - self.config.min_delta:
                    self.history.best_validation_loss = validation_loss
                    self.history.best_epoch = epoch
                    # Snapshot parameter values directly — cheaper than a
                    # full state_dict walk, and taken every improving epoch.
                    best_state = [parameter.data.copy()
                                  for parameter in self._parameters]
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= self.config.patience:
                        self.history.stopped_early = True
                        if telemetry.enabled:
                            telemetry.event(
                                "early_stop", epoch=epoch,
                                best_epoch=self.history.best_epoch)
                        break

                if checkpoint is not None and checkpoint.due(epoch):
                    checkpoint.save(self._fit_checkpoint_state(
                        epoch + 1, rng, best_state,
                        epochs_without_improvement))
            fit_span.set(epochs=self.history.n_epochs,
                         best_epoch=self.history.best_epoch,
                         stopped_early=self.history.stopped_early,
                         diverged=self.history.diverged)

        if best_state is not None:
            # Copy in place rather than re-pointing ``parameter.data`` at the
            # snapshot arrays: the fused Adam's flat parameter buffer, the
            # shared inference engine and the stacked trainer's (K, P) views
            # are all bound to the current storage — re-pointing would detach
            # every one of them from the restored weights.
            for parameter, saved in zip(self._parameters, best_state):
                parameter.data[...] = saved
        if checkpoint is not None:
            # The fit finished — its resume point would only shadow the
            # (cached/stored) result on a future identical run.
            checkpoint.clear()
        return self.history

    # ------------------------------------------------------------------ #
    # Checkpoint state (consumed by service.checkpoint.FitCheckpointer)
    # ------------------------------------------------------------------ #
    def _fit_checkpoint_state(self, next_epoch: int,
                              rng: np.random.Generator,
                              best_state, epochs_without_improvement: int):
        """Snapshot everything epoch ``next_epoch`` needs to run as if the
        preceding epochs had just happened in this process."""
        arrays = {f"param_{i}": parameter.data.copy()
                  for i, parameter in enumerate(self._parameters)}
        adam = self.optimizer.state_dict()
        arrays["adam_m"] = adam["m"]
        arrays["adam_v"] = adam["v"]
        if best_state is not None:
            for i, saved in enumerate(best_state):
                arrays[f"best_{i}"] = saved
        meta = {
            "kind": "solo_fit",
            "seed": self.config.seed,
            "dtype": str(np.dtype(self._parameters[0].data.dtype)),
            "n_parameters": len(self._parameters),
            "epoch": next_epoch,
            "rng": rng.bit_generator.state,
            "adam_step_count": adam["step_count"],
            "epochs_without_improvement": epochs_without_improvement,
            "has_best": best_state is not None,
            "history": self.history.to_dict(),
        }
        return {"meta": meta, "arrays": arrays}

    def _restore_fit_state(self, state, rng: np.random.Generator):
        """In-place restore of :meth:`_fit_checkpoint_state` output.

        Validates *everything* (kind, seed, dtype, parameter count and
        shapes, RNG family) before mutating anything, so a rejected
        snapshot leaves the fresh fit untouched.  Raises ``KeyError`` /
        ``TypeError`` / ``ValueError`` on mismatch.
        """
        meta = state["meta"]
        arrays = state["arrays"]
        if meta.get("kind") != "solo_fit":
            raise ValueError("not a solo-fit checkpoint")
        if int(meta["seed"]) != self.config.seed:
            raise ValueError("checkpoint seed mismatch")
        dtype = self._parameters[0].data.dtype
        if meta.get("dtype") != str(np.dtype(dtype)):
            raise ValueError("checkpoint dtype mismatch")
        if int(meta["n_parameters"]) != len(self._parameters):
            raise ValueError("checkpoint parameter count mismatch")
        params = [np.asarray(arrays[f"param_{i}"])
                  for i in range(len(self._parameters))]
        for parameter, saved in zip(self._parameters, params):
            if saved.shape != parameter.data.shape or saved.dtype != dtype:
                raise ValueError("checkpoint parameter layout mismatch")
        best_state = None
        if meta.get("has_best"):
            best_state = [np.asarray(arrays[f"best_{i}"]).copy()
                          for i in range(len(self._parameters))]
            for parameter, saved in zip(self._parameters, best_state):
                if saved.shape != parameter.data.shape or saved.dtype != dtype:
                    raise ValueError("checkpoint best-state layout mismatch")
        rng_state = meta["rng"]
        if not isinstance(rng_state, dict) or \
                rng_state.get("bit_generator") != \
                rng.bit_generator.state["bit_generator"]:
            raise ValueError("checkpoint RNG family mismatch")
        start_epoch = int(meta["epoch"])
        if not 0 < start_epoch <= self.config.max_epochs:
            raise ValueError("checkpoint epoch out of range")
        history = dict(meta["history"])

        # Validation passed — mutate in place (the fused Adam buffer, the
        # shared engines and any stacked views stay bound to the restored
        # storage, exactly like the best-state restore at fit end).
        rng.bit_generator.state = rng_state
        self.optimizer.load_state_dict({
            "step_count": meta["adam_step_count"],
            "m": arrays["adam_m"], "v": arrays["adam_v"]})
        for parameter, saved in zip(self._parameters, params):
            parameter.data[...] = saved
        self.history.restore(history)
        return (start_epoch, best_state,
                int(meta["epochs_without_improvement"]))

    def _run_epoch(self, windows: np.ndarray, rng: np.random.Generator) -> float:
        """One shuffled pass over the training windows.

        Runs on the fused no-autograd :class:`TrainingEngine` — the same
        forward/backward arithmetic the autograd fast path performed, minus
        the graph.  Mini-batches are index views: the epoch shuffles indices
        once and gathers a *block* of several mini-batches through one
        stacked ``np.take`` into a persistent arena buffer (bounded by
        :data:`GATHER_ELEMENT_BUDGET`), then steps over contiguous
        ``batch_size`` slices of the block — the same rows in the same
        order as a per-step gather, so losses are bit-identical.
        """
        telemetry = self._telemetry if self._telemetry is not None \
            else get_telemetry()
        order = rng.permutation(windows.shape[0])
        batch_size = self.config.batch_size
        engine = self._training
        # Replays the per-batch Tensor-construction casts once per epoch
        # (a no-op when the windows already carry the engine dtype).
        windows = engine.prepare_windows(windows)
        arena = engine.arena
        tail_shape = windows.shape[1:]
        row_elements = max(1, int(np.prod(tail_shape)))
        steps_per_block = max(1, GATHER_ELEMENT_BUDGET
                              // max(1, row_elements * batch_size))
        block_rows = min(max(len(order), 1), steps_per_block * batch_size)
        gather = arena.take("train.gather", (block_rows,) + tail_shape,
                            windows.dtype)
        losses = []
        if not telemetry.enabled and not faults.active():
            # The instrumented loop below is identical but pays a
            # perf_counter pair and a fault seam per step; this branch keeps
            # the telemetry-off, faults-off path at one attribute check per
            # epoch.
            for block_start in range(0, len(order), block_rows):
                block_index = order[block_start:block_start + block_rows]
                block = gather[:len(block_index)]
                np.take(windows, block_index, axis=0, out=block)
                for start in range(0, len(block_index), batch_size):
                    losses.append(
                        engine.train_step(block[start:start + batch_size]))
            return float(np.mean(losses)) if losses else float("nan")
        # repro: allow(telemetry-guard): also reached with telemetry off when a fault plan is active; the null-runtime histogram is a no-op and chaos runs are not perf-sensitive
        histogram = telemetry.histogram("train.step_seconds")
        for block_start in range(0, len(order), block_rows):
            block_index = order[block_start:block_start + block_rows]
            block = gather[:len(block_index)]
            np.take(windows, block_index, axis=0, out=block)
            for start in range(0, len(block_index), batch_size):
                batch = block[start:start + batch_size]
                faults.fault_point("train_step")
                step_start = time.perf_counter()
                losses.append(engine.train_step(batch))
                histogram.observe(time.perf_counter() - step_start)
        return float(np.mean(losses)) if losses else float("nan")

    def _evaluate(self, windows: np.ndarray) -> float:
        """Validation loss, evaluated in ``batch_size`` chunks.

        Chunking keeps peak memory proportional to the batch size — the
        forward pass materialises a ``(chunk, N, N, T)`` convolution tensor,
        so a single full-split evaluation used to dominate peak RSS.  Each
        window contributes the same number of loss elements and the L1
        penalties are constant across chunks, so the window-weighted mean of
        the chunk losses equals the single-shot loss exactly.

        The pass runs on the fused no-autograd inference engine: the same
        operation sequence as the autograd fast path (losses are
        bit-identical), but with every intermediate written into a reusable
        scratch arena instead of fresh graph nodes and temporaries.
        """
        return self._inference.evaluate(windows, self.config.batch_size)
