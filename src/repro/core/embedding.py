"""Time-series embedding layer (paper Sec. 4.1.1, Eq. 2).

The embedding projects each series' ``T``-slot window to a ``d``-dimensional
vector: ``X_emb = X × W_emb + b_emb``.  The embedding is used only by the
query/key path of the multi-variate causal attention; the value path uses the
causal convolution output directly so the temporal-priority constraint is
never broken by mixing time slots.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class TimeSeriesEmbedding(Module):
    """Row-wise linear projection of a ``(..., N, T)`` window to ``(..., N, d)``."""

    def __init__(self, window: int, d_model: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if d_model <= 0 or window <= 0:
            raise ValueError("window and d_model must be positive")
        self.window = window
        self.d_model = d_model
        rng = rng or init.default_rng()
        self.weight = Parameter(init.he_normal((window, d_model), rng), name="embedding.weight")
        self.bias = Parameter(init.zeros((d_model,)), name="embedding.bias")

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.window:
            raise ValueError(
                f"embedding expects windows of length {self.window}, got {x.shape[-1]}"
            )
        return F.linear(x, self.weight, self.bias)
