"""NetSim-style fMRI BOLD simulator."""

import numpy as np
import pytest

from repro.data.fmri import (
    FmriNetworkSpec,
    double_gamma_hrf,
    fmri_benchmark_suite,
    fmri_dataset,
    simulate_bold,
)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FmriNetworkSpec(n_nodes=1)
        with pytest.raises(ValueError):
            FmriNetworkSpec(length=5)
        with pytest.raises(ValueError):
            FmriNetworkSpec(edge_probability=0.0)


class TestHrf:
    def test_unit_area(self):
        hrf = double_gamma_hrf(24)
        assert hrf.sum() == pytest.approx(1.0, abs=1e-9)

    def test_peak_before_undershoot(self):
        hrf = double_gamma_hrf(30)
        peak_index = hrf.argmax()
        trough_index = hrf.argmin()
        assert 0 < peak_index < trough_index

    def test_length(self):
        assert double_gamma_hrf(12).shape == (12,)


class TestSimulation:
    def test_output_shape(self):
        spec = FmriNetworkSpec(n_nodes=5, length=120)
        bold, graph = simulate_bold(spec, rng=np.random.default_rng(0))
        assert bold.shape == (5, 120)
        assert graph.n_series == 5

    def test_at_least_one_cross_edge(self):
        spec = FmriNetworkSpec(n_nodes=4, length=60, edge_probability=0.05)
        _bold, graph = simulate_bold(spec, rng=np.random.default_rng(1))
        assert graph.without_self_loops().n_edges >= 1

    def test_self_loops_included_by_default(self):
        spec = FmriNetworkSpec(n_nodes=4, length=60)
        _bold, graph = simulate_bold(spec, rng=np.random.default_rng(2))
        assert len(graph.self_loops) == 4

    def test_bold_is_finite_and_bounded(self):
        spec = FmriNetworkSpec(n_nodes=8, length=200)
        bold, _graph = simulate_bold(spec, rng=np.random.default_rng(3))
        assert np.isfinite(bold).all()
        assert np.abs(bold).max() < 50.0

    def test_ground_truth_acyclic(self):
        spec = FmriNetworkSpec(n_nodes=10, length=80)
        _bold, graph = simulate_bold(spec, rng=np.random.default_rng(4))
        assert graph.is_acyclic_ignoring_self_loops()

    def test_coupling_leaves_signature_in_correlation(self):
        """A strongly-coupled pair must correlate more than an uncoupled pair."""
        spec = FmriNetworkSpec(n_nodes=5, length=400, edge_probability=0.4,
                               coupling_strength=0.9, observation_noise_std=0.05)
        bold, graph = simulate_bold(spec, rng=np.random.default_rng(5))
        correlations = np.abs(np.corrcoef(bold))
        coupled = [correlations[e.source, e.target]
                   for e in graph.without_self_loops().edges]
        uncoupled = [correlations[i, j] for i in range(5) for j in range(5)
                     if i < j and not graph.has_edge(i, j) and not graph.has_edge(j, i)]
        if coupled and uncoupled:
            assert np.mean(coupled) > np.mean(uncoupled) - 0.1


class TestDatasetApi:
    def test_dataset_name_and_metadata(self):
        dataset = fmri_dataset(n_nodes=5, length=100, seed=0)
        assert dataset.name == "fmri-5"
        assert dataset.metadata["generator"] == "fmri-netsim-style"

    def test_network_id_changes_topology(self):
        a = fmri_dataset(n_nodes=5, length=80, seed=0, network_id=0)
        b = fmri_dataset(n_nodes=5, length=80, seed=0, network_id=1)
        assert a.graph != b.graph or not np.allclose(a.values, b.values)

    def test_reproducible(self):
        a = fmri_dataset(n_nodes=5, length=80, seed=2)
        b = fmri_dataset(n_nodes=5, length=80, seed=2)
        np.testing.assert_array_equal(a.values, b.values)

    def test_benchmark_suite_sizes(self):
        suite = fmri_benchmark_suite(sizes=[5, 10], networks_per_size=2, length=60)
        assert len(suite) == 4
        assert {dataset.n_series for dataset in suite} == {5, 10}
