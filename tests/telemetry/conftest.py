"""Telemetry test fixtures: never leak an installed runtime across tests."""

import pytest

from repro.telemetry import reset


@pytest.fixture(autouse=True)
def _clean_telemetry():
    yield
    reset(close=False)
