"""On-disk result cache: round-trips, corruption handling, maintenance."""

import json
import os

import pytest

from repro.service import ResultCache
from repro.service.cache import default_cache_dir

KEY = "ab12" * 16
OTHER = "cd34" * 16


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundTrip:
    def test_miss_then_hit(self, cache):
        assert cache.get(KEY) is None
        cache.put(KEY, {"answer": 42})
        assert cache.get(KEY) == {"answer": 42}

    def test_contains(self, cache):
        assert KEY not in cache
        cache.put(KEY, {})
        assert KEY in cache
        assert OTHER not in cache

    def test_overwrite(self, cache):
        cache.put(KEY, {"v": 1})
        cache.put(KEY, {"v": 2})
        assert cache.get(KEY) == {"v": 2}

    def test_entries_sharded_by_prefix(self, cache):
        path = cache.put(KEY, {})
        assert os.path.dirname(path).endswith(KEY[:2])


class TestRobustness:
    def test_corrupted_entry_is_a_miss(self, cache):
        path = cache.put(KEY, {"ok": True})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.get(KEY) is None

    def test_corrupted_entry_is_evicted_and_counted(self, cache):
        from repro.telemetry import capture

        path = cache.put(KEY, {"ok": True})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        with capture() as telemetry:
            assert cache.get(KEY) is None
        assert not os.path.exists(path)
        assert telemetry.counter("cache.corrupt").value == 1.0
        # the poisoned entry never resurfaces, and a rewrite heals it
        assert cache.get(KEY) is None
        cache.put(KEY, {"ok": True})
        assert cache.get(KEY) == {"ok": True}

    def test_non_object_payload_is_evicted(self, cache):
        path = cache.put(KEY, {"ok": True})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps([1, 2, 3]))
        assert cache.get(KEY) is None
        assert not os.path.exists(path)

    def test_injected_corrupt_write_degrades_to_miss(self, cache):
        """The cache_write fault seam truncates the serialized entry; the
        paranoid reader must treat it as a miss and evict it."""
        from repro import faults

        with faults.override("corrupt@cache_write=1"):
            path = cache.put(KEY, {"payload": list(range(50))})
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        with pytest.raises(json.JSONDecodeError):
            json.loads(text)
        assert cache.get(KEY) is None
        assert not os.path.exists(path)

    def test_writes_are_atomic_no_tmp_left_behind(self, cache):
        cache.put(KEY, {"ok": True})
        shard = os.path.dirname(cache.path_for(KEY))
        assert [name for name in os.listdir(shard)
                if name.endswith(".tmp")] == []

    def test_rejects_non_hex_keys(self, cache):
        with pytest.raises(ValueError):
            cache.path_for("../escape")
        with pytest.raises(ValueError):
            cache.path_for("")

    def test_missing_directory_is_empty(self, cache):
        assert list(cache.keys()) == []
        assert cache.stats().n_entries == 0

    def test_non_json_native_values_stored(self, cache):
        """Anything canonical_json can hash, put() must be able to store."""
        import numpy as np

        cache.put(KEY, {"max_lag": np.int64(2), "rate": np.float64(0.5)})
        assert cache.get(KEY) is not None


class TestMaintenance:
    def test_keys_and_clear(self, cache):
        cache.put(KEY, {})
        cache.put(OTHER, {})
        assert sorted(cache.keys()) == sorted([KEY, OTHER])
        assert cache.clear() == 2
        assert list(cache.keys()) == []

    def test_clear_prunes_empty_shards(self, cache):
        """clear() must not leave behind one empty shard directory per key
        prefix it ever touched."""
        cache.put(KEY, {})
        cache.put(OTHER, {})
        assert len(os.listdir(cache.directory)) == 2
        cache.clear()
        assert os.listdir(cache.directory) == []

    def test_clear_removes_stale_tmp_files(self, cache):
        cache.put(KEY, {})
        shard = os.path.dirname(cache.path_for(KEY))
        with open(os.path.join(shard, "leftover.tmp"), "w") as handle:
            handle.write("interrupted write")
        cache.clear()
        assert not os.path.exists(shard)

    def test_clear_keeps_shards_with_foreign_files(self, cache):
        cache.put(KEY, {})
        shard = os.path.dirname(cache.path_for(KEY))
        foreign = os.path.join(shard, "README")
        with open(foreign, "w") as handle:
            handle.write("not a cache entry")
        cache.clear()
        assert os.path.exists(foreign)

    def test_stats_counts_hits_and_misses(self, cache):
        cache.get(KEY)
        cache.put(KEY, {"payload": "x"})
        cache.get(KEY)
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.n_entries == 1
        assert stats.total_bytes > 0
        assert json.dumps(stats.as_dict())  # JSON-able for the CLI

    def test_contains_then_get_counts_once(self, cache):
        """``key in cache`` is a pure probe: the look-before-you-leap
        pattern must record exactly one hit (or one miss), never two."""
        if KEY in cache:
            cache.get(KEY)
        assert cache.hits == 0 and cache.misses == 0
        cache.get(KEY)   # the counting lookup
        assert cache.misses == 1
        cache.put(KEY, {"payload": "x"})
        if KEY in cache:
            cache.get(KEY)
        assert cache.hits == 1 and cache.misses == 1


class TestDefaultDirectory:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == str(tmp_path / "override")
        assert ResultCache().directory == str(tmp_path / "override")

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == str(tmp_path / "repro" / "results")

    def test_tilde_expanded(self):
        assert "~" not in ResultCache("~/somewhere").directory
