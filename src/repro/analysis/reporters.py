"""Finding reporters: human-readable text and machine-readable JSON.

The JSON schema is versioned and stable — CI uploads it as an artifact and
the tree-clean test asserts against it::

    {
      "version": 1,
      "root": "<absolute repo root>",
      "rules": ["dtype-purity", ...],
      "files_checked": 73,
      "suppressed": 16,
      "findings": [
        {"rule": "...", "path": "src/...", "line": 1, "column": 0,
         "message": "..."},
        ...
      ],
      "clean": true
    }
"""

from __future__ import annotations

import json

from repro.analysis.runner import LintResult

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """``path:line:column: rule: message`` lines plus a summary."""
    lines = [f"{finding.location()}: {finding.rule}: {finding.message}"
             for finding in result.sorted_findings()]
    summary = (f"{len(result.findings)} finding(s) in "
               f"{result.files_checked} file(s)"
               f" ({result.suppressed} suppressed)"
               f" [rules: {', '.join(result.rules)}]")
    if not result.findings:
        summary = (f"clean: {result.files_checked} file(s), "
                   f"{result.suppressed} suppression(s) in effect"
                   f" [rules: {', '.join(result.rules)}]")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "root": result.root,
        "rules": list(result.rules),
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "findings": [finding.to_dict()
                     for finding in result.sorted_findings()],
        "clean": not result.findings,
    }
    return json.dumps(payload, indent=2)
