#!/usr/bin/env python3
"""Discover the coupling structure of the Lorenz-96 climate model.

The Lorenz-96 system (paper Sec. 5.1, Eq. 21) couples each variable to its
ring neighbours ``i-2``, ``i-1`` and ``i+1`` plus itself — a dense, non-linear
causal structure that linear Granger methods struggle with.  This example

* simulates the system with the paper's parameters (10 variables,
  forcing F ∈ [30, 40]);
* runs CausalFormer and the linear VAR-Granger reference side by side;
* prints per-variable recovered parents and both methods' F1.

Run with::

    python examples/lorenz96_discovery.py  [--length 600]
"""

import argparse

from repro.baselines import VarGranger
from repro.core import CausalFormer, lorenz_preset
from repro.data import lorenz96_dataset
from repro.graph import evaluate_discovery


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=500,
                        help="number of simulated time slots (paper: 1000)")
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    dataset = lorenz96_dataset(length=arguments.length, seed=arguments.seed)
    print(f"Lorenz-96: {dataset.n_series} variables, forcing "
          f"F={dataset.metadata['forcing']:.1f}, {dataset.n_timesteps} slots")

    causalformer = CausalFormer(lorenz_preset(max_epochs=arguments.epochs,
                                              seed=arguments.seed))
    causalformer_graph = causalformer.discover(dataset)
    causalformer_scores = evaluate_discovery(causalformer_graph, dataset.graph)

    granger = VarGranger(max_lag=3, n_clusters=3, top_clusters=2)
    granger_graph = granger.discover(dataset)
    granger_scores = evaluate_discovery(granger_graph, dataset.graph)

    print("\nrecovered parents per variable (CausalFormer):")
    for variable in range(dataset.n_series):
        truth = dataset.graph.parents(variable)
        found = causalformer_graph.parents(variable)
        print(f"  x{variable}: truth {truth}  found {found}")

    print(f"\nCausalFormer   F1 {causalformer_scores.f1:.2f} "
          f"(precision {causalformer_scores.precision:.2f}, recall {causalformer_scores.recall:.2f})")
    print(f"VAR-Granger    F1 {granger_scores.f1:.2f} "
          f"(precision {granger_scores.precision:.2f}, recall {granger_scores.recall:.2f})")


if __name__ == "__main__":
    main()
