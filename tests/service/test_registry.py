"""Method/dataset registries: lookup, seeds, extensibility."""

import pytest

from repro.baselines import CausalDiscoveryMethod
from repro.core.discovery import CausalFormer
from repro.service import (
    build_dataset,
    build_method,
    dataset_names,
    method_names,
    register_dataset,
    register_method,
)
from repro.service.registry import _DATASETS, _METHODS


class TestMethodRegistry:
    def test_paper_line_up_registered(self):
        assert {"causalformer", "cmlp", "clstm", "tcdf", "dvgnn", "cuts",
                "var_granger"} <= set(method_names())

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError, match="unknown method"):
            build_method("nope")

    @pytest.mark.parametrize("name", ["cmlp", "clstm", "tcdf", "dvgnn", "cuts",
                                      "var_granger"])
    def test_baselines_build_and_take_seed(self, name):
        method = build_method(name, seed=7)
        assert isinstance(method, CausalDiscoveryMethod)
        assert method.seed == 7

    def test_job_seed_wins_over_config_seed(self):
        method = build_method("cmlp", {"seed": 99, "epochs": 5}, seed=7)
        assert method.seed == 7

    def test_causalformer_config_and_switches(self):
        model = build_method("causalformer",
                             {"max_epochs": 3, "temperature": 9.0,
                              "use_relevance": False, "normalize": False},
                             seed=11)
        assert isinstance(model, CausalFormer)
        assert model.config.seed == 11
        assert model.config.max_epochs == 3
        assert model.config.temperature == 9.0
        assert model.use_relevance is False
        assert model.normalize is False

    def test_causalformer_preset_selection(self):
        model = build_method("causalformer", {"preset": "lorenz96"})
        assert model.config.window == 32
        with pytest.raises(KeyError, match="preset"):
            build_method("causalformer", {"preset": "nope"})

    def test_register_custom_method(self):
        sentinel = object()
        register_method("custom-test-method", lambda seed=0, **cfg: sentinel)
        try:
            assert build_method("custom-test-method") is sentinel
        finally:
            _METHODS.pop("custom-test-method", None)


class TestDatasetRegistry:
    def test_paper_datasets_registered(self):
        assert {"diamond", "mediator", "v_structure", "fork", "lorenz96",
                "fmri", "sst"} <= set(dataset_names())

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            build_dataset("nope")

    def test_synthetic_build_honors_kwargs(self):
        dataset = build_dataset("fork", seed=3, length=90)
        assert dataset.n_timesteps == 90
        assert dataset.graph is not None

    def test_seeds_change_data(self):
        one = build_dataset("diamond", seed=0, length=80)
        two = build_dataset("diamond", seed=1, length=80)
        assert not (one.values == two.values).all()

    def test_register_custom_dataset(self):
        fork = build_dataset("fork", seed=0, length=80)
        register_dataset("custom-test-dataset", lambda seed=0, **kw: fork)
        try:
            assert build_dataset("custom-test-dataset") is fork
        finally:
            _DATASETS.pop("custom-test-dataset", None)
