"""Tracer: nesting, error status, retention, cross-process adoption."""

from repro.telemetry.tracing import Tracer, build_span_tree, new_span_id


def make_tracer(emitted=None):
    if emitted is None:
        return Tracer()
    return Tracer(on_finish=lambda span: emitted.append(span.record()))


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = make_tracer()
        with tracer.span("outer", run=1):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        tree = tracer.span_tree()
        assert len(tree) == 1
        root = tree[0]
        assert root["name"] == "outer"
        assert root["attrs"] == {"run": 1}
        assert [child["name"] for child in root["children"]] == ["inner", "inner"]
        assert all(child["parent_id"] == root["span_id"]
                   for child in root["children"])

    def test_duration_and_status(self):
        tracer = make_tracer()
        with tracer.span("work") as span:
            span.set(items=3)
        record = tracer.span_tree()[0]
        assert record["duration"] >= 0.0
        assert record["status"] == "ok"
        assert record["attrs"]["items"] == 3

    def test_exception_marks_error(self):
        tracer = make_tracer()
        try:
            with tracer.span("work"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        record = tracer.span_tree()[0]
        assert record["status"] == "error"
        assert record["attrs"]["error"] == "RuntimeError"

    def test_children_emit_before_parents(self):
        emitted = []
        tracer = make_tracer(emitted)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [record["name"] for record in emitted] == ["inner", "outer"]

    def test_current_id_tracks_the_open_span(self):
        tracer = make_tracer()
        assert tracer.current_id() is None
        with tracer.span("outer") as outer:
            assert tracer.current_id() == outer.span_id
        assert tracer.current_id() is None

    def test_retention_cap(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.span_tree()) == 2

    def test_span_ids_unique(self):
        assert len({new_span_id() for _ in range(100)}) == 100


class TestAdoption:
    def test_adopt_reparents_worker_roots(self):
        worker = make_tracer()
        with worker.span("job"):
            with worker.span("train"):
                pass
        worker_records = [root for root in worker.span_tree()]
        flat = []

        def flatten(node):
            children = node.pop("children")
            flat.append(node)
            for child in children:
                flatten(child)

        for root in worker_records:
            flatten(dict(root))

        parent = make_tracer()
        with parent.span("executor") as outer:
            updated = parent.adopt(flat, outer.span_id)
            reparented = [record for record in updated
                          if record["name"] == "job"]
            assert reparented[0]["parent_id"] == outer.span_id
        tree = parent.span_tree()
        executor = tree[0]
        assert [child["name"] for child in executor["children"]] == ["job"]
        assert [grand["name"] for grand
                in executor["children"][0]["children"]] == ["train"]


class TestBuildSpanTree:
    def test_orphans_become_roots(self):
        records = [
            {"kind": "span", "name": "child", "span_id": "c",
             "parent_id": "missing", "time": 2.0},
            {"kind": "span", "name": "root", "span_id": "r",
             "parent_id": None, "time": 1.0},
            {"kind": "event", "name": "noise"},
        ]
        roots = build_span_tree(records)
        assert [root["name"] for root in roots] == ["root", "child"]

    def test_children_sorted_by_time(self):
        records = [
            {"kind": "span", "name": "b", "span_id": "b",
             "parent_id": "r", "time": 2.0},
            {"kind": "span", "name": "a", "span_id": "a",
             "parent_id": "r", "time": 1.0},
            {"kind": "span", "name": "root", "span_id": "r",
             "parent_id": None, "time": 0.0},
        ]
        roots = build_span_tree(records)
        assert [child["name"] for child in roots[0]["children"]] == ["a", "b"]
