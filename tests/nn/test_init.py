"""Statistical sanity of the parameter initialisers."""

import numpy as np
import pytest

from repro.nn import init


class TestHeInitialisation:
    def test_he_normal_std(self):
        rng = init.default_rng(0)
        shape = (400, 300)
        values = init.he_normal(shape, rng)
        expected_std = np.sqrt(2.0 / shape[0])
        assert values.std() == pytest.approx(expected_std, rel=0.05)

    def test_he_normal_zero_mean(self):
        values = init.he_normal((500, 100), init.default_rng(1))
        assert abs(values.mean()) < 0.01

    def test_he_uniform_bound(self):
        shape = (200, 50)
        values = init.he_uniform(shape, init.default_rng(2))
        bound = np.sqrt(6.0 / shape[0])
        assert np.all(np.abs(values) <= bound)

    def test_deterministic_with_seed(self):
        a = init.he_normal((10, 10), init.default_rng(42))
        b = init.he_normal((10, 10), init.default_rng(42))
        np.testing.assert_array_equal(a, b)


class TestXavierInitialisation:
    def test_xavier_uniform_bound(self):
        shape = (100, 200)
        values = init.xavier_uniform(shape, init.default_rng(3))
        bound = np.sqrt(6.0 / (shape[0] + shape[1]))
        assert np.all(np.abs(values) <= bound)

    def test_xavier_normal_std(self):
        shape = (300, 300)
        values = init.xavier_normal(shape, init.default_rng(4))
        expected_std = np.sqrt(2.0 / (shape[0] + shape[1]))
        assert values.std() == pytest.approx(expected_std, rel=0.05)


class TestSimpleInitialisers:
    def test_zeros_ones_constant(self):
        assert init.zeros((3, 2)).sum() == 0.0
        assert init.ones((3, 2)).sum() == 6.0
        np.testing.assert_allclose(init.constant((2, 2), 3.5), 3.5)

    def test_normal_parameters(self):
        values = init.normal((2000,), mean=1.0, std=0.5, rng=init.default_rng(5))
        assert values.mean() == pytest.approx(1.0, abs=0.05)
        assert values.std() == pytest.approx(0.5, abs=0.05)

    def test_uniform_range(self):
        values = init.uniform((1000,), low=-2.0, high=3.0, rng=init.default_rng(6))
        assert values.min() >= -2.0 and values.max() <= 3.0

    def test_one_dimensional_fan(self):
        # fan_in for a 1-D shape is the length itself and must not crash.
        values = init.he_normal((50,), init.default_rng(7))
        assert values.shape == (50,)
