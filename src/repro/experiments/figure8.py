"""Figure 8 — case study on one fMRI network.

The paper's Fig. 8 draws, for the fMRI-15 network (5 regions shown), the
ground-truth graph and the graphs recovered by cMLP, TCDF, DVGNN, CUTS and
CausalFormer, annotating true-positive / false-positive / false-negative
edges and each method's F1.  ``run_figure8`` produces the same content as a
structured report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines import CMlp, CutsLite, DvgnnLite, Tcdf
from repro.core.config import fmri_preset
from repro.core.discovery import CausalFormer
from repro.data.fmri import fmri_dataset
from repro.experiments.table1 import _scale_config
from repro.graph.metrics import edge_classification, evaluate_discovery


@dataclass
class CaseStudyEntry:
    """One method's recovered graph on the case-study network."""

    method: str
    f1: float
    precision: float
    recall: float
    true_positive: List[tuple] = field(default_factory=list)
    false_positive: List[tuple] = field(default_factory=list)
    false_negative: List[tuple] = field(default_factory=list)


@dataclass
class CaseStudyReport:
    """The full Fig. 8 report: ground truth plus every method's result."""

    truth_edges: List[tuple]
    entries: Dict[str, CaseStudyEntry] = field(default_factory=dict)

    def best_method(self) -> str:
        return max(self.entries.values(), key=lambda entry: entry.f1).method

    def render(self) -> str:
        lines = [f"ground truth edges: {self.truth_edges}"]
        for entry in self.entries.values():
            lines.append(
                f"{entry.method:14s} F1={entry.f1:.2f}  "
                f"TP={len(entry.true_positive)} FP={len(entry.false_positive)} "
                f"FN={len(entry.false_negative)}")
        lines.append(f"best: {self.best_method()}")
        return "\n".join(lines)


def run_figure8(seed: int = 0, fast: bool = True, n_nodes: int = 5,
                length: int = 200, verbose: bool = False) -> CaseStudyReport:
    """Regenerate the Fig. 8 case study on one simulated fMRI network."""
    dataset = fmri_dataset(n_nodes=n_nodes, length=length, seed=seed)
    epoch_scale = 0.5 if fast else 1.0
    methods = {
        "cmlp": CMlp(epochs=int(120 * epoch_scale), sparsity=1e-3, seed=seed),
        "tcdf": Tcdf(epochs=int(120 * epoch_scale), seed=seed),
        "dvgnn": DvgnnLite(epochs=int(150 * epoch_scale), seed=seed),
        "cuts": CutsLite(epochs=int(200 * epoch_scale), seed=seed),
        "causalformer": CausalFormer(_scale_config(fmri_preset(seed=seed), fast)),
    }
    report = CaseStudyReport(truth_edges=[edge.as_tuple() for edge in dataset.graph.edges])
    for name, method in methods.items():
        predicted = method.discover(dataset)
        scores = evaluate_discovery(predicted, dataset.graph)
        classified = edge_classification(predicted, dataset.graph)
        report.entries[name] = CaseStudyEntry(
            method=name,
            f1=scores.f1,
            precision=scores.precision,
            recall=scores.recall,
            true_positive=classified["true_positive"],
            false_positive=classified["false_positive"],
            false_negative=classified["false_negative"],
        )
        if verbose:
            print(f"{name:14s} F1={scores.f1:.2f}")
    return report
