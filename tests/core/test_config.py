"""CausalFormer configuration and presets."""

import pytest

from repro.core import (
    CausalFormerConfig,
    PRESETS,
    fast_preset,
    fmri_preset,
    lorenz_preset,
    sst_preset,
    synthetic_preset,
)


class TestValidation:
    def test_defaults_are_valid(self):
        CausalFormerConfig()

    @pytest.mark.parametrize("field,value", [
        ("window", 1),
        ("d_model", 0),
        ("n_heads", 0),
        ("temperature", 0.0),
        ("lambda_kernel", -1.0),
        ("learning_rate", 0.0),
        ("max_epochs", 0),
        ("batch_size", 0),
        ("validation_fraction", 1.5),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            CausalFormerConfig(**{field: value})

    def test_top_clusters_must_not_exceed_n_clusters(self):
        with pytest.raises(ValueError):
            CausalFormerConfig(top_clusters=3, n_clusters=2)

    def test_density_ratio(self):
        config = CausalFormerConfig(top_clusters=2, n_clusters=3)
        assert config.density_ratio == pytest.approx(2 / 3)

    def test_with_density(self):
        config = CausalFormerConfig().with_density(1, 4)
        assert config.n_clusters == 4 and config.top_clusters == 1

    def test_for_dataset_binds_series_count(self):
        config = CausalFormerConfig().for_dataset(7)
        assert config.n_series == 7

    def test_dict_roundtrip(self):
        config = CausalFormerConfig(window=12, n_heads=3, temperature=5.0)
        restored = CausalFormerConfig.from_dict(config.to_dict())
        assert restored.to_dict() == config.to_dict()

    def test_from_dict_ignores_unknown_keys(self):
        config = CausalFormerConfig.from_dict({"window": 12, "bogus": 1})
        assert config.window == 12


class TestPresets:
    def test_registry_complete(self):
        assert set(PRESETS) == {"synthetic", "lorenz96", "fmri", "sst", "fast"}

    def test_synthetic_temperature_depends_on_structure(self):
        """The paper uses τ=1 for diamond/mediator and τ=100 for v-structure/fork."""
        assert synthetic_preset("diamond").temperature == 1.0
        assert synthetic_preset("mediator").temperature == 1.0
        assert synthetic_preset("v_structure").temperature == 100.0
        assert synthetic_preset("fork").temperature == 100.0

    def test_lorenz_preset_matches_paper_structure(self):
        config = lorenz_preset()
        assert config.window == 32
        assert config.n_heads == 8
        assert config.temperature == 10.0
        assert config.density_ratio == pytest.approx(2 / 3)

    def test_fmri_preset_disables_sparsity(self):
        config = fmri_preset()
        assert config.lambda_kernel == 0.0
        assert config.lambda_mask == 0.0
        assert config.temperature == 100.0

    def test_presets_accept_overrides(self):
        assert fast_preset(max_epochs=3).max_epochs == 3
        assert sst_preset(n_heads=1).n_heads == 1
        assert fmri_preset(window=16).window == 16

    def test_every_preset_is_valid(self):
        for name, factory in PRESETS.items():
            config = factory("diamond") if name == "synthetic" else factory()
            config.validate()
