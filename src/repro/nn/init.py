"""Parameter initialisation schemes.

The paper initialises the causality-aware transformer with He initialisation
(He et al., 2015) and optimises with Adam, so :func:`he_normal` /
:func:`he_uniform` are the defaults used by :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn.tensor import get_default_dtype

_GLOBAL_SEED_SEQUENCE = np.random.SeedSequence(0)


def default_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Return a numpy Generator, seeded deterministically when ``seed`` given."""
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(seed)


def _fan_in_fan_out(shape: Sequence[int]) -> Tuple[int, int]:
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return fan_in, fan_out


def he_normal(shape: Sequence[int], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Kaiming/He normal initialisation: ``std = sqrt(2 / fan_in)``."""
    rng = rng or default_rng()
    fan_in, _ = _fan_in_fan_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def he_uniform(shape: Sequence[int], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Kaiming/He uniform initialisation: ``bound = sqrt(6 / fan_in)``."""
    rng = rng or default_rng()
    fan_in, _ = _fan_in_fan_out(shape)
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def xavier_uniform(shape: Sequence[int], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    rng = rng or default_rng()
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def xavier_normal(shape: Sequence[int], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    rng = rng or default_rng()
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = np.sqrt(2.0 / max(fan_in + fan_out, 1))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def zeros(shape: Sequence[int]) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape: Sequence[int]) -> np.ndarray:
    return np.ones(shape, dtype=get_default_dtype())


def constant(shape: Sequence[int], value: float) -> np.ndarray:
    return np.full(shape, float(value), dtype=get_default_dtype())


def normal(shape: Sequence[int], mean: float = 0.0, std: float = 1.0,
           rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or default_rng()
    return rng.normal(mean, std, size=shape).astype(get_default_dtype(), copy=False)


def uniform(shape: Sequence[int], low: float = -0.1, high: float = 0.1,
            rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng or default_rng()
    return rng.uniform(low, high, size=shape).astype(get_default_dtype(), copy=False)
