"""``no-print``: library code must not call ``print()``.

Library output goes through :mod:`repro.telemetry` — a stray ``print``
cannot be redirected to a trace file, silenced by a consumer, or attributed
to a span.  CLI modules whose stdout *is* the product are allowlisted in
:class:`~repro.analysis.base.CheckerConfig`.

This is the former ``tools/check_print.py`` walk, re-homed as a plugin
(``tools/check_print.py`` remains as a thin shim over this rule).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, Finding, LintConfig, ModuleSource
from repro.analysis.registry import register


@register
class NoPrintChecker(Checker):
    name = "no-print"
    description = ("print() outside the CLI allowlist — route output "
                   "through repro.telemetry")

    def check(self, module: ModuleSource,
              config: LintConfig) -> Iterator[Finding]:
        if module.path in config.checkers.print_allowlist:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "print":
                yield Finding(
                    self.name, module.path, node.lineno, node.col_offset,
                    "print() call in library code; emit a telemetry event "
                    "(repro.telemetry) or use an allowlisted CLI module")
