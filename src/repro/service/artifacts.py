"""Run-directory artifact store for discovery results.

The cache (:mod:`repro.service.cache`) answers "have I computed this exact
job before?"; the artifact store answers "what did run so-and-so produce?".
A store manages numbered run directories, and each run persists discovered
graphs, scores, full job results and a manifest as human-readable JSON:

    <root>/
      run-0001/
        manifest.json
        results/<job_id>.json
        graphs/<name>.json
        scores/<name>.json
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional

from repro.graph.causal_graph import TemporalCausalGraph
from repro.service.jobs import JobResult

_RUN_PATTERN = re.compile(r"^run-(\d{4,})$")


def _write_json(path: str, payload: Any) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path


def _read_json(path: str) -> Any:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class RunArtifacts:
    """One run directory: graphs, scores, job results and a manifest."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        os.makedirs(self.path, exist_ok=True)

    @property
    def run_id(self) -> str:
        return os.path.basename(os.path.normpath(self.path))

    # ------------------------------------------------------------------ #
    # Graphs and scores
    # ------------------------------------------------------------------ #
    def save_graph(self, name: str, graph: TemporalCausalGraph) -> str:
        return _write_json(os.path.join(self.path, "graphs", f"{name}.json"),
                           graph.to_dict())

    def load_graph(self, name: str) -> TemporalCausalGraph:
        return TemporalCausalGraph.from_dict(
            _read_json(os.path.join(self.path, "graphs", f"{name}.json")))

    def save_scores(self, name: str, scores: Dict[str, Any]) -> str:
        return _write_json(os.path.join(self.path, "scores", f"{name}.json"), scores)

    def load_scores(self, name: str) -> Dict[str, Any]:
        return _read_json(os.path.join(self.path, "scores", f"{name}.json"))

    # ------------------------------------------------------------------ #
    # Job results and the manifest
    # ------------------------------------------------------------------ #
    def save_result(self, result: JobResult) -> str:
        """Persist a full job result under ``results/<job_id>.json``."""
        return _write_json(os.path.join(self.path, "results", f"{result.job.job_id}.json"),
                           result.to_dict())

    def load_results(self) -> List[JobResult]:
        results_dir = os.path.join(self.path, "results")
        if not os.path.isdir(results_dir):
            return []
        return [JobResult.from_dict(_read_json(os.path.join(results_dir, entry)))
                for entry in sorted(os.listdir(results_dir))
                if entry.endswith(".json")]

    # ------------------------------------------------------------------ #
    # Fit checkpoints
    # ------------------------------------------------------------------ #
    @property
    def checkpoint_dir(self) -> str:
        """Where this run's fit snapshots live (``checkpoints/``)."""
        return os.path.join(self.path, "checkpoints")

    def checkpointer(self, key: str, every: int = 1):
        """A :class:`~repro.service.checkpoint.FitCheckpointer` for one fit."""
        from repro.service.checkpoint import FitCheckpointer

        return FitCheckpointer(self.checkpoint_dir, key=key, every=every)

    def write_manifest(self, payload: Dict[str, Any]) -> str:
        return _write_json(os.path.join(self.path, "manifest.json"), payload)

    def read_manifest(self) -> Dict[str, Any]:
        return _read_json(os.path.join(self.path, "manifest.json"))

    def __repr__(self) -> str:
        return f"RunArtifacts({self.path!r})"


class ArtifactStore:
    """A root directory of sequentially numbered run directories."""

    def __init__(self, root: str) -> None:
        self.root = str(root)

    def run_ids(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        return sorted(entry for entry in os.listdir(self.root)
                      if _RUN_PATTERN.match(entry)
                      and os.path.isdir(os.path.join(self.root, entry)))

    def create_run(self) -> RunArtifacts:
        """Allocate the next ``run-NNNN`` directory (atomic under contention)."""
        os.makedirs(self.root, exist_ok=True)
        existing = self.run_ids()
        next_index = 1
        if existing:
            next_index = max(int(_RUN_PATTERN.match(run).group(1)) for run in existing) + 1
        while True:
            path = os.path.join(self.root, f"run-{next_index:04d}")
            try:
                # exist_ok=False claims the directory atomically, so two
                # concurrent runs can never share one run id.
                os.makedirs(path)
            except FileExistsError:
                next_index += 1
                continue
            return RunArtifacts(path)

    def open_run(self, run_id: str) -> RunArtifacts:
        path = os.path.join(self.root, run_id)
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no run {run_id!r} under {self.root}")
        return RunArtifacts(path)

    def latest_run(self) -> Optional[RunArtifacts]:
        runs = self.run_ids()
        return self.open_run(runs[-1]) if runs else None

    def __repr__(self) -> str:
        return f"ArtifactStore({self.root!r})"
