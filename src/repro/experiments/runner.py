"""Generic experiment runner: methods × datasets × seeds → scores.

The paper's evaluation runs every method on every dataset for several random
seeds and reports mean ± standard deviation.  ``MethodSpec`` and
``ExperimentSpec`` describe the sweep declaratively; :func:`evaluate_methods`
executes it and fills a :class:`~repro.experiments.reporting.ResultTable`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import CMlp, CLstm, CutsLite, DvgnnLite, Tcdf
from repro.core.config import CausalFormerConfig, fast_preset
from repro.core.discovery import CausalFormer
from repro.data.base import TimeSeriesDataset
from repro.experiments.reporting import ResultTable
from repro.graph.metrics import DiscoveryScores, evaluate_discovery

MethodFactory = Callable[[int], object]
DatasetFactory = Callable[[int], TimeSeriesDataset]


@dataclass
class MethodSpec:
    """A named method factory (the seed is passed to the factory)."""

    name: str
    factory: MethodFactory

    def build(self, seed: int):
        return self.factory(seed)


@dataclass
class ExperimentSpec:
    """A named dataset factory plus the seeds to sweep."""

    name: str
    dataset_factory: DatasetFactory
    seeds: Sequence[int] = (0, 1, 2)

    def datasets(self):
        for seed in self.seeds:
            yield seed, self.dataset_factory(seed)


def run_method_on_dataset(method, dataset: TimeSeriesDataset,
                          delay_tolerance: int = 0) -> DiscoveryScores:
    """Run one method on one dataset and score it against the ground truth."""
    if dataset.graph is None:
        raise ValueError(f"dataset {dataset.name!r} has no ground-truth graph to score against")
    predicted = method.discover(dataset)
    return evaluate_discovery(predicted, dataset.graph, delay_tolerance=delay_tolerance)


def evaluate_methods(experiments: Sequence[ExperimentSpec],
                     methods: Sequence[MethodSpec],
                     metric: str = "f1",
                     title: str = "F1",
                     delay_tolerance: int = 0,
                     verbose: bool = False) -> ResultTable:
    """Run every method on every experiment/seed; aggregate one metric."""
    table = ResultTable(title, metric=metric)
    for experiment in experiments:
        for seed, dataset in experiment.datasets():
            for method_spec in methods:
                method = method_spec.build(seed)
                scores = run_method_on_dataset(method, dataset, delay_tolerance=delay_tolerance)
                value = getattr(scores, metric)
                table.add(experiment.name, method_spec.name, value)
                if verbose:
                    print(f"{experiment.name:12s} seed={seed} {method_spec.name:14s} "
                          f"{metric}={value if value is not None else float('nan'):.3f}")
    return table


# ---------------------------------------------------------------------- #
# Default method factories (paper Sec. 5.2 baselines + CausalFormer)
# ---------------------------------------------------------------------- #
def causalformer_spec(config_factory: Optional[Callable[[], CausalFormerConfig]] = None,
                      name: str = "causalformer", **causalformer_kwargs) -> MethodSpec:
    """MethodSpec for CausalFormer with a per-seed config."""
    def factory(seed: int) -> CausalFormer:
        config = config_factory() if config_factory is not None else fast_preset()
        config = config.__class__(**{**config.to_dict(), "seed": seed})
        return CausalFormer(config, **causalformer_kwargs)

    return MethodSpec(name=name, factory=factory)


def default_method_specs(fast: bool = True,
                         include_causalformer: bool = True,
                         config_factory: Optional[Callable[[], CausalFormerConfig]] = None
                         ) -> List[MethodSpec]:
    """The paper's method line-up: cMLP, cLSTM, TCDF, DVGNN, CUTS, CausalFormer."""
    epoch_scale = 1.0 if not fast else 0.5
    specs = [
        MethodSpec("cmlp", lambda seed: CMlp(epochs=int(120 * epoch_scale),
                                             sparsity=1e-3, seed=seed)),
        MethodSpec("clstm", lambda seed: CLstm(epochs=int(40 * epoch_scale), seed=seed)),
        MethodSpec("tcdf", lambda seed: Tcdf(epochs=int(120 * epoch_scale), seed=seed)),
        MethodSpec("dvgnn", lambda seed: DvgnnLite(epochs=int(150 * epoch_scale), seed=seed)),
        MethodSpec("cuts", lambda seed: CutsLite(epochs=int(200 * epoch_scale), seed=seed)),
    ]
    if include_causalformer:
        specs.append(causalformer_spec(config_factory))
    return specs
