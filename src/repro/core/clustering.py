"""K-means clustering of causal scores (paper Sec. 4.2.3).

The causal-graph construction clusters the causal scores of each target
series' candidate causes into ``n`` classes with k-means (Lloyd, 1982),
sorts the classes by centroid, and keeps the members of the top ``m``
classes as causes.  This module provides a small, dependency-free k-means
(with k-means++ seeding and restarts) plus the top-cluster selection helper.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def kmeans(values: np.ndarray, n_clusters: int, n_restarts: int = 4,
           max_iterations: int = 100, rng: Optional[np.random.Generator] = None
           ) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster 1-D or multi-D points; returns ``(labels, centroids)``.

    Parameters
    ----------
    values:
        Array of shape ``(n_points,)`` or ``(n_points, n_features)``.
    n_clusters:
        Number of clusters ``n``; silently reduced when there are fewer
        distinct points than clusters.
    """
    points = np.asarray(values, dtype=float)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    n_points = points.shape[0]
    if n_points == 0:
        raise ValueError("cannot cluster an empty set of points")
    n_distinct = len(np.unique(points, axis=0))
    n_clusters = max(1, min(n_clusters, n_distinct))
    rng = rng or np.random.default_rng(0)

    best_labels = None
    best_centroids = None
    best_inertia = np.inf
    for _restart in range(max(1, n_restarts)):
        centroids = _kmeans_plus_plus(points, n_clusters, rng)
        labels = np.zeros(n_points, dtype=int)
        for _iteration in range(max_iterations):
            distances = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
            new_labels = distances.argmin(axis=1)
            if np.array_equal(new_labels, labels) and _iteration > 0:
                break
            labels = new_labels
            for cluster in range(n_clusters):
                members = points[labels == cluster]
                if len(members):
                    centroids[cluster] = members.mean(axis=0)
        inertia = float(((points - centroids[labels]) ** 2).sum())
        if inertia < best_inertia:
            best_inertia = inertia
            best_labels = labels.copy()
            best_centroids = centroids.copy()
    return best_labels, best_centroids


def _kmeans_plus_plus(points: np.ndarray, n_clusters: int,
                      rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread the initial centroids apart."""
    n_points = points.shape[0]
    centroids = np.empty((n_clusters, points.shape[1]))
    first = rng.integers(n_points)
    centroids[0] = points[first]
    for k in range(1, n_clusters):
        distances = np.min(
            np.linalg.norm(points[:, None, :] - centroids[None, :k, :], axis=2) ** 2, axis=1)
        total = distances.sum()
        if total <= 0:
            centroids[k] = points[rng.integers(n_points)]
            continue
        probabilities = distances / total
        centroids[k] = points[rng.choice(n_points, p=probabilities)]
    return centroids


def select_top_scores(scores: np.ndarray, n_clusters: int, top_clusters: int,
                      rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Boolean mask of the scores falling in the top ``m`` of ``n`` clusters.

    This is the density control of the causal-graph construction: a larger
    ``m/n`` keeps more clusters and yields a denser graph.  Degenerate inputs
    (all scores identical, or fewer distinct scores than clusters) fall back
    to keeping scores strictly above the minimum, or everything when all
    scores are equal and positive.
    """
    scores = np.asarray(scores, dtype=float).reshape(-1)
    if scores.size == 0:
        return np.zeros(0, dtype=bool)
    if top_clusters <= 0:
        return np.zeros_like(scores, dtype=bool)
    if top_clusters >= n_clusters:
        return np.ones_like(scores, dtype=bool)
    if np.allclose(scores, scores[0]):
        # No structure to cluster: keep everything only if the common value
        # is positive (a zero causal score should never create an edge).
        return np.full(scores.shape, scores[0] > 0, dtype=bool)
    labels, centroids = kmeans(scores, n_clusters, rng=rng)
    order = np.argsort(-centroids[:, 0])
    keep_clusters = set(order[:top_clusters].tolist())
    return np.isin(labels, list(keep_clusters))
