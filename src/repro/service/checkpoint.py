"""Checkpoint/resume storage for training fits.

A :class:`FitCheckpointer` persists one fit's in-flight state — parameter
vectors, the flat Adam moment buffers, per-lane step counts, RNG state and
the :class:`~repro.core.training.TrainingHistory` bookkeeping — as a single
atomically-replaced ``.npz`` file, so an interrupted fit resumes at the
last saved boundary **bit-identically** to an uninterrupted run (the
trainers restore every array in place and re-seed the generator from the
exact saved bit-generator state).

The state format is deliberately dumb: a JSON-able ``meta`` dict plus a
flat ``arrays`` dict of numpy arrays.  The trainers own the schema
(:meth:`repro.core.training.Trainer.fit` and
:meth:`repro.core.batched.StackedCausalFormerTrainer.fit` build and consume
it); this module only moves it to and from disk, with the same paranoia as
the result cache: a checkpoint that fails to load for *any* reason is
evicted and reported as absent — a torn snapshot degrades to a fresh fit,
never to a crash or a wrong resume.

Layout under a checkpoint directory (the executor keys fits by their job's
cache key; ``RunArtifacts.checkpointer`` places the directory inside the
run)::

    <directory>/<key>.ckpt.npz
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

import numpy as np

#: name of the archive member holding the JSON metadata
META_KEY = "__meta__"

#: schema version stamped into every checkpoint; a mismatch means the
#: trainer's state layout changed and the snapshot must not be resumed.
FORMAT_VERSION = 1


class FitCheckpointer:
    """Periodic snapshot storage for one fit, keyed inside a directory.

    Parameters
    ----------
    directory:
        Where snapshots live; created on first save.
    key:
        Filesystem-safe identifier for this fit (the executor uses the
        job's cache key, so a retried job finds its own snapshot).
    every:
        Save cadence in fit-progress units (epochs for the solo trainer,
        rounds for the stacked trainer): state is saved when
        ``due(index)`` is true, i.e. every ``every``-th completed unit.
    """

    def __init__(self, directory: str, key: str = "fit",
                 every: int = 1) -> None:
        if every < 1:
            raise ValueError("checkpoint cadence must be at least 1")
        if not key or any(ch in key for ch in "/\\"):
            raise ValueError(f"checkpoint keys must be filesystem-safe; got {key!r}")
        self.directory = str(directory)
        self.key = key
        self.every = int(every)
        self.saves = 0

    @property
    def path(self) -> str:
        return os.path.join(self.directory, f"{self.key}.ckpt.npz")

    def due(self, index: int) -> bool:
        """Whether the 0-based completed unit ``index`` should snapshot."""
        return (index + 1) % self.every == 0

    # ------------------------------------------------------------------ #
    # Save / load
    # ------------------------------------------------------------------ #
    def save(self, state: Dict[str, Any]) -> str:
        """Atomically persist ``{"meta": ..., "arrays": {...}}``; returns path.

        ``meta`` must be JSON-able (Python floats round-trip exactly through
        ``json`` — repr-based encoding — so loss bookkeeping survives bit
        for bit).  Array names must not collide with ``__meta__``.
        """
        from repro.telemetry import get_telemetry

        meta = dict(state.get("meta") or {})
        meta["format_version"] = FORMAT_VERSION
        arrays = dict(state.get("arrays") or {})
        if META_KEY in arrays:
            raise ValueError(f"array name {META_KEY!r} is reserved")
        os.makedirs(self.directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(dir=self.directory,
                                                 suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                # A file object sidesteps np.savez's extension appending,
                # keeping the tmp-file + os.replace rename atomic.
                np.savez(handle, **arrays,
                         **{META_KEY: np.array(json.dumps(meta))})
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.saves += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("checkpoint.saves").inc()
            telemetry.event("checkpoint_saved", key=self.key,
                            path=self.path)
        return self.path

    def load(self) -> Optional[Dict[str, Any]]:
        """The last saved state, or ``None`` when absent or unreadable.

        Any load failure — missing file, torn archive, wrong format
        version, unparseable metadata — evicts the snapshot and returns
        ``None``: a broken checkpoint must degrade to a fresh fit.
        """
        from repro.telemetry import get_telemetry

        path = self.path
        if not os.path.exists(path):
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(archive[META_KEY][()]))
                if not isinstance(meta, dict) or \
                        meta.get("format_version") != FORMAT_VERSION:
                    raise ValueError("unsupported checkpoint format")
                arrays = {name: archive[name] for name in archive.files
                          if name != META_KEY}
        except Exception:
            telemetry = get_telemetry()
            telemetry.counter("checkpoint.corrupt").inc()
            if telemetry.enabled:
                telemetry.event("checkpoint_corrupt", key=self.key,
                                path=path)
            self.clear()
            return None
        return {"meta": meta, "arrays": arrays}

    def clear(self) -> bool:
        """Remove the snapshot (a completed fit needs no resume point)."""
        try:
            os.unlink(self.path)
        except OSError:
            return False
        return True

    def __repr__(self) -> str:
        return (f"FitCheckpointer({self.directory!r}, key={self.key!r}, "
                f"every={self.every})")
