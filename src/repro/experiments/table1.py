"""Table 1 — overall F1 of every method on every dataset.

The paper's Table 1 reports the F1-score (mean ± std) of cMLP, cLSTM, TCDF,
DVGNN, CUTS and CausalFormer on the four synthetic structures, Lorenz-96 and
the fMRI networks.  ``run_table1`` regenerates that table on this
reproduction's substrates (see EXPERIMENTS.md for the paper-vs-measured
comparison).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import CausalFormerConfig, fmri_preset, lorenz_preset, synthetic_preset
from repro.data.fmri import fmri_dataset
from repro.data.lorenz import lorenz96_dataset
from repro.data.synthetic import synthetic_dataset
from repro.experiments.reporting import ResultTable
from repro.experiments.runner import (
    ExperimentSpec,
    MethodSpec,
    causalformer_spec,
    default_method_specs,
    evaluate_methods,
    make_executor,
)


def _scale_config(preset: CausalFormerConfig, fast: bool) -> CausalFormerConfig:
    if not fast:
        return preset
    # Fast mode shortens the *series* (shorter datasets), not CausalFormer's
    # training budget — the detector's quality depends on a converged model,
    # and the presets are already CPU-sized.  Denser window strides partially
    # compensate for the shorter series.
    payload = preset.to_dict()
    payload["window_stride"] = min(preset.window_stride, 2)
    return CausalFormerConfig(**payload)


def table1_dataset_specs(seeds: Sequence[int] = (0, 1, 2), fast: bool = True,
                         synthetic_length: int = 400, lorenz_length: int = 400,
                         fmri_length: int = 200, fmri_nodes: int = 5
                         ) -> List[ExperimentSpec]:
    """Dataset sweep of Table 1 (series lengths shrink in ``fast`` mode)."""
    if not fast:
        synthetic_length, lorenz_length, fmri_length = 1000, 1000, 400
    specs = [
        ExperimentSpec("diamond",
                       lambda seed: synthetic_dataset("diamond", length=synthetic_length, seed=seed),
                       seeds=seeds),
        ExperimentSpec("mediator",
                       lambda seed: synthetic_dataset("mediator", length=synthetic_length, seed=seed),
                       seeds=seeds),
        ExperimentSpec("v_structure",
                       lambda seed: synthetic_dataset("v_structure", length=synthetic_length, seed=seed),
                       seeds=seeds),
        ExperimentSpec("fork",
                       lambda seed: synthetic_dataset("fork", length=synthetic_length, seed=seed),
                       seeds=seeds),
        ExperimentSpec("lorenz96",
                       lambda seed: lorenz96_dataset(length=lorenz_length, seed=seed),
                       seeds=seeds),
        ExperimentSpec("fmri",
                       lambda seed: fmri_dataset(n_nodes=fmri_nodes, length=fmri_length, seed=seed),
                       seeds=seeds),
    ]
    return specs


def _config_factory_for(dataset_name: str, fast: bool) -> Callable[[], CausalFormerConfig]:
    def factory() -> CausalFormerConfig:
        if dataset_name in ("diamond", "mediator", "v_structure", "fork"):
            preset = synthetic_preset(dataset_name)
        elif dataset_name == "lorenz96":
            preset = lorenz_preset()
        else:
            preset = fmri_preset()
        return _scale_config(preset, fast)

    return factory


def run_table1(seeds: Sequence[int] = (0, 1), fast: bool = True,
               datasets: Optional[Sequence[str]] = None,
               verbose: bool = False,
               max_workers: Optional[int] = None,
               cache=None) -> ResultTable:
    """Regenerate Table 1 (F1 of every method on every dataset).

    Parameters
    ----------
    seeds:
        Random seeds (each seed regenerates the dataset and re-trains every
        method; the paper reports mean ± std the same way).
    fast:
        Use shorter series and fewer epochs so the sweep finishes in minutes
        on CPU.
    datasets:
        Optional subset of dataset names to run (default: all six).
    max_workers / cache:
        Dispatch the sweep through a :class:`~repro.service.JobExecutor`
        with that many worker processes and/or that result cache.
    """
    all_specs = table1_dataset_specs(seeds=seeds, fast=fast)
    if datasets is not None:
        wanted = set(datasets)
        all_specs = [spec for spec in all_specs if spec.name in wanted]
    executor = make_executor(max_workers=max_workers, cache=cache)
    table = ResultTable("Table 1: F1", metric="f1")
    for spec in all_specs:
        methods = default_method_specs(
            fast=fast, config_factory=_config_factory_for(spec.name, fast))
        partial = evaluate_methods([spec], methods, metric="f1",
                                   title=table.title, verbose=verbose,
                                   executor=executor)
        for row in partial.rows:
            for column in partial.columns:
                table.add_many(row, column, partial.cell(row, column).values)
    return table
