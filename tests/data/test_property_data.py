"""Property-based tests of the data layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.windows import sliding_windows, zscore_normalize
from repro.data.var import VarProcessSpec, simulate_var
from repro.graph.random_graphs import random_temporal_graph


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=10, max_value=60),
       st.integers(min_value=2, max_value=8), st.integers(min_value=1, max_value=4))
def test_sliding_window_count_formula(n_series, n_timesteps, window, stride):
    if window > n_timesteps:
        return
    values = np.arange(n_series * n_timesteps, dtype=float).reshape(n_series, n_timesteps)
    windows = sliding_windows(values, window, stride)
    expected = (n_timesteps - window) // stride + 1
    assert windows.shape == (expected, n_series, window)
    # Every window is an exact slice of the source.
    for k in range(expected):
        np.testing.assert_array_equal(windows[k], values[:, k * stride:k * stride + window])


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.integers(min_value=30, max_value=120))
def test_zscore_is_idempotent(n_series, n_timesteps):
    rng = np.random.default_rng(n_series * 100 + n_timesteps)
    values = rng.normal(3.0, 5.0, size=(n_series, n_timesteps))
    once = zscore_normalize(values)
    twice = zscore_normalize(once)
    np.testing.assert_allclose(once, twice, atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=1, max_value=8),
       st.sampled_from(["linear", "tanh", "relu", "sin"]))
def test_var_simulation_always_finite(n_series, n_edges, nonlinearity):
    n_edges = min(n_edges, n_series * n_series)
    rng = np.random.default_rng(n_series * 10 + n_edges)
    graph = random_temporal_graph(n_series, n_edges=n_edges, max_delay=3, rng=rng)
    spec = VarProcessSpec(graph=graph, length=150, nonlinearity=nonlinearity, burn_in=30)
    values = simulate_var(spec, rng=rng)
    assert values.shape == (n_series, 150)
    assert np.isfinite(values).all()


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_var_is_deterministic_given_seed(seed):
    graph = random_temporal_graph(3, n_edges=3, rng=np.random.default_rng(0))
    spec = VarProcessSpec(graph=graph, length=80)
    a = simulate_var(spec, rng=np.random.default_rng(seed))
    b = simulate_var(spec, rng=np.random.default_rng(seed))
    np.testing.assert_array_equal(a, b)
