"""The assembled causality-aware transformer."""

import numpy as np
import pytest

from repro.core import CausalFormerConfig, CausalityAwareTransformer
from repro.nn.tensor import Tensor


class TestForward:
    def test_prediction_shape(self, tiny_transformer, window_batch):
        prediction, cache = tiny_transformer(Tensor(window_batch))
        assert prediction.shape == window_batch.shape
        assert cache is None

    def test_accepts_single_window(self, tiny_transformer, tiny_config):
        single = np.zeros((tiny_config.n_series, tiny_config.window))
        prediction, _ = tiny_transformer(Tensor(single))
        assert prediction.shape == (1, tiny_config.n_series, tiny_config.window)

    def test_accepts_numpy_input(self, tiny_transformer, window_batch):
        prediction, _ = tiny_transformer(window_batch)
        assert prediction.shape == window_batch.shape

    def test_requires_n_series(self):
        with pytest.raises(ValueError):
            CausalityAwareTransformer(CausalFormerConfig(n_series=None))

    def test_cache_contents(self, tiny_transformer, window_batch, tiny_config):
        _prediction, cache = tiny_transformer(Tensor(window_batch), return_cache=True)
        batch, n, t = window_batch.shape
        assert cache.inputs.shape == (batch, n, t)
        assert cache.embedding.shape == (batch, n, tiny_config.d_model)
        assert cache.values.shape == (batch, n, n, t)
        assert cache.values_pre_shift.shape == (batch, n, n, t)
        assert cache.conv_windows.shape == (batch, n, t, t)
        assert len(cache.head_caches) == tiny_config.n_heads
        assert cache.output.shape == (batch, n, t)
        assert cache.ffn_hidden.shape == (batch, n, tiny_config.d_ffn)

    def test_cache_pre_shift_consistency(self, tiny_transformer, window_batch):
        """Post-shift values equal pre-shift values except on the diagonal."""
        _prediction, cache = tiny_transformer(Tensor(window_batch), return_cache=True)
        n = window_batch.shape[1]
        for i in range(n):
            for j in range(n):
                if i == j:
                    np.testing.assert_allclose(cache.values[:, i, i, 1:],
                                               cache.values_pre_shift[:, i, i, :-1], atol=1e-10)
                else:
                    np.testing.assert_allclose(cache.values[:, i, j],
                                               cache.values_pre_shift[:, i, j], atol=1e-10)

    def test_predict_without_graph(self, tiny_transformer, window_batch):
        out = tiny_transformer.predict(window_batch)
        assert isinstance(out, np.ndarray)
        assert out.shape == window_batch.shape

    def test_deterministic_forward(self, tiny_transformer, window_batch):
        a = tiny_transformer.predict(window_batch)
        b = tiny_transformer.predict(window_batch)
        np.testing.assert_array_equal(a, b)

    def test_parameter_count_scales_with_width(self):
        small = CausalityAwareTransformer(CausalFormerConfig(n_series=3, window=8, d_model=8,
                                                             d_qk=8, d_ffn=8, n_heads=1))
        large = CausalityAwareTransformer(CausalFormerConfig(n_series=3, window=8, d_model=32,
                                                             d_qk=32, d_ffn=32, n_heads=4))
        assert large.num_parameters() > small.num_parameters()


class TestLoss:
    def test_loss_is_scalar_and_positive(self, tiny_transformer, window_batch):
        prediction, _ = tiny_transformer(Tensor(window_batch))
        loss = tiny_transformer.loss(prediction, Tensor(window_batch))
        assert loss.data.size == 1
        assert float(loss.data) >= 0.0

    def test_loss_ignores_first_slot(self, tiny_config):
        """Only slots 2..T enter the MSE (the paper drops slot 1 for fairness)."""
        config = CausalFormerConfig(**{**tiny_config.to_dict(),
                                       "lambda_kernel": 0.0, "lambda_mask": 0.0})
        model = CausalityAwareTransformer(config)
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(2, config.n_series, config.window))
        prediction, _ = model(Tensor(batch))
        target_a = batch.copy()
        target_b = batch.copy()
        target_b[:, :, 0] += 100.0  # only the first slot differs
        loss_a = model.loss(prediction, Tensor(target_a))
        loss_b = model.loss(prediction, Tensor(target_b))
        assert float(loss_a.data) == pytest.approx(float(loss_b.data))

    def test_l1_terms_increase_loss(self, tiny_config, window_batch):
        base_config = {**tiny_config.to_dict(), "lambda_kernel": 0.0, "lambda_mask": 0.0}
        plain = CausalityAwareTransformer(CausalFormerConfig(**base_config))
        penalised_config = {**base_config, "lambda_kernel": 1.0, "lambda_mask": 1.0}
        penalised = CausalityAwareTransformer(CausalFormerConfig(**penalised_config))
        penalised.load_state_dict(plain.state_dict())
        prediction, _ = plain(Tensor(window_batch))
        prediction_p, _ = penalised(Tensor(window_batch))
        assert float(penalised.loss(prediction_p, Tensor(window_batch)).data) > \
            float(plain.loss(prediction, Tensor(window_batch)).data)

    def test_loss_backward_reaches_all_parameters(self, tiny_transformer, window_batch):
        tiny_transformer.zero_grad()
        prediction, _ = tiny_transformer(Tensor(window_batch))
        loss = tiny_transformer.loss(prediction, Tensor(window_batch))
        loss.backward()
        with_grad = sum(1 for p in tiny_transformer.parameters() if p.grad is not None)
        total = sum(1 for _ in tiny_transformer.parameters())
        # Every parameter except possibly unused ones must receive a gradient.
        assert with_grad >= total - 1

    def test_prediction_error_metric(self, tiny_transformer, window_batch):
        error = tiny_transformer.prediction_error(window_batch)
        assert error >= 0.0
