"""TimeSeriesDataset container behaviour."""

import numpy as np
import pytest

from repro.data import TimeSeriesDataset
from repro.graph import TemporalCausalGraph


def make_dataset(n=3, t=50, with_graph=True, seed=0):
    rng = np.random.default_rng(seed)
    graph = None
    if with_graph:
        graph = TemporalCausalGraph(n)
        graph.add_edge(0, 1, 2)
        graph.add_edge(1, 1, 1)
    return TimeSeriesDataset(values=rng.normal(size=(n, t)), name="toy", graph=graph)


class TestConstruction:
    def test_shape_properties(self):
        dataset = make_dataset()
        assert dataset.n_series == 3
        assert dataset.n_timesteps == 50
        assert dataset.shape == (3, 50)
        assert len(dataset) == 50

    def test_default_series_names(self):
        assert make_dataset().series_names == ["S0", "S1", "S2"]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            TimeSeriesDataset(values=np.zeros(10))
        with pytest.raises(ValueError):
            TimeSeriesDataset(values=np.zeros((2, 5)), series_names=["only-one"])

    def test_rejects_graph_size_mismatch(self):
        graph = TemporalCausalGraph(5)
        with pytest.raises(ValueError):
            TimeSeriesDataset(values=np.zeros((3, 10)), graph=graph)

    def test_validate_detects_nan(self):
        dataset = make_dataset()
        dataset.values[0, 0] = np.nan
        with pytest.raises(ValueError):
            dataset.validate()

    def test_summary_keys(self):
        summary = make_dataset().summary()
        assert summary["n_series"] == 3
        assert summary["n_true_edges"] == 2


class TestTransformations:
    def test_normalized_moments(self):
        dataset = make_dataset(t=500)
        normalized = dataset.normalized()
        np.testing.assert_allclose(normalized.values.mean(axis=1), 0.0, atol=1e-9)
        assert normalized.metadata["normalized"] is True
        # The original is untouched.
        assert abs(dataset.values.mean()) != pytest.approx(0.0, abs=1e-12)

    def test_slice_time(self):
        dataset = make_dataset()
        sliced = dataset.slice_time(10, 30)
        assert sliced.n_timesteps == 20
        np.testing.assert_array_equal(sliced.values, dataset.values[:, 10:30])

    def test_select_series_restricts_graph(self):
        dataset = make_dataset()
        subset = dataset.select_series([0, 1])
        assert subset.n_series == 2
        assert subset.graph.has_edge(0, 1)
        assert subset.graph.has_edge(1, 1)
        assert subset.graph.n_edges == 2

    def test_select_series_drops_external_edges(self):
        dataset = make_dataset()
        subset = dataset.select_series([1, 2])
        # Edge 0 -> 1 involved a dropped series and must disappear.
        assert subset.graph.n_edges == 1

    def test_train_test_split_chronological(self):
        dataset = make_dataset(t=100)
        train, test = dataset.train_test_split(0.7)
        assert train.n_timesteps == 70
        assert test.n_timesteps == 30
        np.testing.assert_array_equal(np.concatenate([train.values, test.values], axis=1),
                                      dataset.values)

    def test_train_test_split_bounds(self):
        with pytest.raises(ValueError):
            make_dataset().train_test_split(1.5)

    def test_windows_shape(self):
        dataset = make_dataset(t=40)
        windows = dataset.windows(window=8, stride=4)
        assert windows.shape == (9, 3, 8)
