"""Core dataset container used throughout the project.

A :class:`TimeSeriesDataset` holds an ``(N, T)`` array of observations (the
paper's convention: one row per series), optional series names, the
ground-truth :class:`~repro.graph.causal_graph.TemporalCausalGraph` (when the
generator knows it), and free-form metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.windows import sliding_windows, zscore_normalize
from repro.graph.causal_graph import TemporalCausalGraph


@dataclass
class TimeSeriesDataset:
    """Multivariate time series with optional causal ground truth.

    Attributes
    ----------
    values:
        Array of shape ``(n_series, n_timesteps)``.
    name:
        Short dataset identifier (e.g. ``"diamond"``).
    graph:
        Ground-truth temporal causal graph, when known.
    series_names:
        Human-readable names for the series.
    metadata:
        Generator parameters and anything else worth keeping.
    """

    values: np.ndarray
    name: str = "dataset"
    graph: Optional[TemporalCausalGraph] = None
    series_names: Optional[List[str]] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 2:
            raise ValueError(f"values must be (n_series, n_timesteps); got shape {self.values.shape}")
        if self.series_names is None:
            self.series_names = [f"S{i}" for i in range(self.n_series)]
        if len(self.series_names) != self.n_series:
            raise ValueError("series_names length must match the number of series")
        if self.graph is not None and self.graph.n_series != self.n_series:
            raise ValueError("ground-truth graph and values disagree on the number of series")

    # ------------------------------------------------------------------ #
    # Shape helpers
    # ------------------------------------------------------------------ #
    @property
    def n_series(self) -> int:
        return self.values.shape[0]

    @property
    def n_timesteps(self) -> int:
        return self.values.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self.values.shape

    def __len__(self) -> int:
        return self.n_timesteps

    # ------------------------------------------------------------------ #
    # Transformations (all return new datasets, never mutate)
    # ------------------------------------------------------------------ #
    def normalized(self) -> "TimeSeriesDataset":
        """Z-score normalise each series."""
        return TimeSeriesDataset(
            values=zscore_normalize(self.values),
            name=self.name,
            graph=self.graph,
            series_names=list(self.series_names),
            metadata={**self.metadata, "normalized": True},
        )

    def slice_time(self, start: int, stop: Optional[int] = None) -> "TimeSeriesDataset":
        """Restrict to a time range ``[start, stop)``."""
        return TimeSeriesDataset(
            values=self.values[:, start:stop],
            name=self.name,
            graph=self.graph,
            series_names=list(self.series_names),
            metadata=dict(self.metadata),
        )

    def select_series(self, indices: Sequence[int]) -> "TimeSeriesDataset":
        """Keep only the given series (ground truth restricted accordingly)."""
        indices = list(indices)
        subgraph = None
        if self.graph is not None:
            subgraph = TemporalCausalGraph(len(indices),
                                           names=[self.series_names[i] for i in indices])
            position = {series: k for k, series in enumerate(indices)}
            for edge in self.graph.edges:
                if edge.source in position and edge.target in position:
                    subgraph.add_edge(position[edge.source], position[edge.target], edge.delay)
        return TimeSeriesDataset(
            values=self.values[indices, :],
            name=self.name,
            graph=subgraph,
            series_names=[self.series_names[i] for i in indices],
            metadata=dict(self.metadata),
        )

    def train_test_split(self, train_fraction: float = 0.8
                         ) -> Tuple["TimeSeriesDataset", "TimeSeriesDataset"]:
        """Chronological split into a training prefix and a test suffix."""
        if not (0.0 < train_fraction < 1.0):
            raise ValueError("train_fraction must be in (0, 1)")
        cut = int(round(self.n_timesteps * train_fraction))
        cut = max(1, min(self.n_timesteps - 1, cut))
        return self.slice_time(0, cut), self.slice_time(cut, None)

    def windows(self, window: int, stride: int = 1) -> np.ndarray:
        """Sliding windows of shape ``(n_windows, n_series, window)``."""
        return sliding_windows(self.values, window, stride)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise when the data contains NaN or infinite values."""
        if not np.isfinite(self.values).all():
            bad = int((~np.isfinite(self.values)).sum())
            raise ValueError(f"dataset {self.name!r} contains {bad} non-finite values")

    def summary(self) -> Dict[str, Any]:
        """Lightweight description used by example scripts and reports."""
        return {
            "name": self.name,
            "n_series": self.n_series,
            "n_timesteps": self.n_timesteps,
            "n_true_edges": None if self.graph is None else self.graph.n_edges,
            "mean": float(self.values.mean()),
            "std": float(self.values.std()),
        }
