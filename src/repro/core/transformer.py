"""The causality-aware transformer (paper Sec. 4.1, Fig. 3a).

The model is trained on a one-step-ahead prediction task over sliding windows
of the input time series.  Its forward pass produces, alongside the
prediction, a :class:`TransformerCache` holding every intermediate the
decomposition-based causality detector needs: the per-head attention
matrices, the causal-convolution values (pre- and post- self-shift) and the
feed-forward activations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.attention import AttentionHeadCache, MultiVariateCausalAttention
from repro.core.config import CausalFormerConfig
from repro.core.convolution import MultiKernelCausalConvolution
from repro.core.embedding import TimeSeriesEmbedding
from repro.core.feedforward import FeedForward, OutputLayer
from repro.nn import functional as F
from repro.nn import init
from repro.nn.inference import InferenceEngine
from repro.nn.module import Module
from repro.nn.tensor import Tensor


@dataclass
class TransformerCache:
    """Every intermediate needed by regression relevance propagation."""

    inputs: np.ndarray                       # (B, N, T)
    embedding: np.ndarray                    # (B, N, d)
    values_pre_shift: np.ndarray             # (B, N, N, T) before the diagonal shift
    values: np.ndarray                       # (B, N, N, T) after the diagonal shift
    conv_windows: np.ndarray                 # (B, N, T, T) padded history windows
    head_caches: List[AttentionHeadCache] = field(default_factory=list)
    attention_combined: np.ndarray = None    # (B, N, T)
    ffn_hidden: np.ndarray = None            # (B, N, d_ffn) pre-activation
    ffn_activated: np.ndarray = None         # (B, N, d_ffn)
    ffn_output: np.ndarray = None            # (B, N, T)
    output: np.ndarray = None                # (B, N, T)
    values_tensor: object = None             # live Tensor for gradient access


class CausalityAwareTransformer(Module):
    """Embedding → multi-kernel causal convolution → causal attention → FFN → output."""

    def __init__(self, config: CausalFormerConfig) -> None:
        super().__init__()
        if config.n_series is None:
            raise ValueError("config.n_series must be set before building the model")
        self.config = config
        rng = init.default_rng(config.seed)
        n, t = config.n_series, config.window
        self.embedding = TimeSeriesEmbedding(t, config.d_model, rng=rng)
        self.convolution = MultiKernelCausalConvolution(
            n, t, single_kernel=config.single_kernel, rng=rng)
        self.attention = MultiVariateCausalAttention(
            n, config.d_model, config.d_qk, config.n_heads, config.temperature, rng=rng)
        self.feed_forward = FeedForward(t, config.d_ffn, rng=rng)
        self.output_layer = OutputLayer(t, rng=rng)
        self._inference: Optional[InferenceEngine] = None

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor, return_cache: bool = False
                ) -> Tuple[Tensor, Optional[TransformerCache]]:
        """Predict each series over the window.

        Parameters
        ----------
        x:
            ``(batch, N, T)`` window batch.
        return_cache:
            When true, also return the :class:`TransformerCache` of
            intermediates needed by the causality detector.
        """
        dtype = self.embedding.weight.data.dtype
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=dtype))
        elif x.data.dtype != dtype and not x.requires_grad:
            # Keep the whole graph in the engine dtype (float32 by default):
            # mixed-precision inputs would silently promote every op to
            # float64 and forfeit the fast path.
            x = Tensor(x.data.astype(dtype))
        if x.ndim == 2:
            x = x.unsqueeze(0)
        values = self.convolution(x)
        if return_cache:
            embedding = self.embedding(x)
            # Only the causality detector reads values.grad; training steps
            # skip the retained-gradient copy and the per-head cache nodes.
            values.retain_grad()
            combined, head_caches = self.attention(embedding, values,
                                                   collect_caches=True)
        else:
            # Training fast path: embedding, Q/K projection and the masked
            # softmax fuse into one node; application + head combination
            # into a second.
            attention = self.attention
            scale = 1.0 / (attention.temperature * np.sqrt(attention.d_qk))
            probabilities = F.causal_attention_probs(
                x, attention.query_weights, attention.query_biases,
                attention.key_weights, attention.key_biases,
                attention.mask_parameters, scale,
                embed_weight=self.embedding.weight,
                embed_bias=self.embedding.bias)
            combined = F.attention_combine(probabilities, values, attention.w_output)
            head_caches = []
        if return_cache:
            ffn_hidden = F.linear(combined, self.feed_forward.w1, self.feed_forward.b1)
            ffn_activated = F.leaky_relu(ffn_hidden, self.feed_forward.negative_slope)
            ffn_output = F.linear(ffn_activated, self.feed_forward.w2, self.feed_forward.b2)
            prediction = self.output_layer(ffn_output)
        else:
            # Training fast path: the FFN + output tail runs as one fused
            # node (the cache path above keeps the individual intermediates
            # relevance propagation reads).
            prediction = F.mlp_chain(
                combined, self.feed_forward.w1, self.feed_forward.b1,
                self.feed_forward.w2, self.feed_forward.b2,
                self.output_layer.weight, self.output_layer.bias,
                self.feed_forward.negative_slope)

        cache: Optional[TransformerCache] = None
        if return_cache:
            # Recompute the pre-shift convolution values in numpy (cheap) so
            # relevance propagation has the un-shifted denominators.
            conv_windows = self.convolution.convolution_windows(x.data)
            kernel = self.convolution.effective_kernel().data
            scale = self.convolution._scale_array
            values_pre = np.einsum("bitk,ijk->bijt", conv_windows, kernel) * scale
            cache = TransformerCache(
                inputs=x.data,
                embedding=embedding.data,
                values_pre_shift=values_pre,
                values=values.data,
                conv_windows=conv_windows,
                head_caches=head_caches,
                attention_combined=combined.data,
                ffn_hidden=ffn_hidden.data,
                ffn_activated=ffn_activated.data,
                ffn_output=ffn_output.data,
                output=prediction.data,
                values_tensor=values,
            )
        return prediction, cache

    def inference_engine(self) -> InferenceEngine:
        """The model's fused no-autograd inference engine (lazily built)."""
        if self._inference is None:
            self._inference = InferenceEngine(self)
        return self._inference

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Numpy-in / numpy-out prediction without building the autograd graph.

        Runs on the fused inference engine — bit-identical to the previous
        ``no_grad()`` autograd forward, with zero steady-state allocation.
        """
        return self.inference_engine().predict(x)

    # ------------------------------------------------------------------ #
    # Loss (paper Eq. 9)
    # ------------------------------------------------------------------ #
    def loss(self, prediction: Tensor, target: Tensor) -> Tensor:
        """MSE over slots ``2..T`` plus the L1 kernel/mask penalties."""
        if not isinstance(target, Tensor):
            target = Tensor(np.asarray(target, dtype=prediction.data.dtype))
        elif target.data.dtype != prediction.data.dtype and not target.requires_grad:
            target = Tensor(target.data.astype(prediction.data.dtype))
        penalties = []
        if self.config.lambda_kernel > 0:
            penalties.append((self.config.lambda_kernel, self.convolution.kernel))
        if self.config.lambda_mask > 0:
            penalties.extend((self.config.lambda_mask, head.mask)
                             for head in self.attention.heads)
        return F.prediction_loss_with_l1(prediction, target, penalties,
                                         start_slot=1)

    def prediction_error(self, x: np.ndarray) -> float:
        """Plain MSE (no penalties) of the model on a batch of windows."""
        prediction = self.predict(x)
        return float(np.mean((prediction[:, :, 1:] - np.asarray(x)[:, :, 1:]) ** 2))
