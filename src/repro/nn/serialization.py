"""Saving and loading model state dicts as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.module import Module


def save_state_dict(module: Module, path: str) -> str:
    """Save ``module.state_dict()`` to ``path`` (``.npz`` appended if missing)."""
    state = module.state_dict()
    if not path.endswith(".npz"):
        path = path + ".npz"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)
    return path


def load_state_dict(module: Module, path: str, strict: bool = True) -> Module:
    """Load parameters saved by :func:`save_state_dict` into ``module``."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    module.load_state_dict(state, strict=strict)
    return module
