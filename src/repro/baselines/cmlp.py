"""cMLP — component-wise MLP neural Granger causality (Tank et al., 2021).

One small MLP is trained per target series, taking the lagged observations of
every series as input.  The first-layer weights are grouped by source series
(all lags of one source form a group) and penalised with a group lasso, so a
source whose group shrinks to (near) zero is declared non-causal.  The causal
score of ``j → i`` is the L2 norm of source ``j``'s group in target ``i``'s
network, and the delay estimate is the lag with the largest within-group norm
(the paper notes cMLP "imposes more penalties to more previous observations",
which is why its delay precision is high).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import ScoreBasedMethod
from repro.data.windows import lagged_design_matrix
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class _TargetMlp(Module):
    """One target's MLP: lagged inputs → hidden → scalar prediction."""

    def __init__(self, n_series: int, max_lag: int, hidden: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.n_series = n_series
        self.max_lag = max_lag
        rng = rng or init.default_rng()
        self.w_input = Parameter(init.he_normal((n_series * max_lag, hidden), rng))
        self.b_input = Parameter(init.zeros((hidden,)))
        self.w_output = Parameter(init.he_normal((hidden, 1), rng))
        self.b_output = Parameter(init.zeros((1,)))

    def forward(self, x: Tensor) -> Tensor:
        hidden = F.relu(x @ self.w_input + self.b_input)
        return (hidden @ self.w_output + self.b_output).squeeze(-1)

    def group_norms(self) -> np.ndarray:
        """L2 norm of the input weights per (lag, source) group → (max_lag, N)."""
        weights = self.w_input.data.reshape(self.max_lag, self.n_series, -1)
        return np.sqrt((weights ** 2).sum(axis=-1))

    def group_lasso_penalty(self) -> Tensor:
        reshaped = self.w_input.reshape((self.max_lag, self.n_series, -1))
        squared = (reshaped * reshaped).sum(axis=-1)
        # Penalise longer lags slightly more, as the original cMLP's
        # hierarchical penalty does — this is what gives cMLP good delay
        # precision in Table 2.
        lag_weights = Tensor(np.linspace(1.0, 2.0, self.max_lag).reshape(-1, 1))
        return (((squared + 1e-12) ** 0.5) * lag_weights).sum()


class CMlp(ScoreBasedMethod):
    """Neural Granger causality with per-target MLPs and group-sparse inputs."""

    name = "cmlp"

    def __init__(self, max_lag: int = 3, hidden: int = 16, epochs: int = 120,
                 learning_rate: float = 1e-2, sparsity: float = 5e-3, **kwargs) -> None:
        super().__init__(**kwargs)
        self.max_lag = max_lag
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.sparsity = sparsity
        self.models_: List[_TargetMlp] = []

    def _fit(self, values: np.ndarray) -> None:
        rng = init.default_rng(self.seed)
        n_series = values.shape[0]
        design, targets = lagged_design_matrix(values, self.max_lag)
        design_tensor = Tensor(design)
        self.models_ = []
        for target in range(n_series):
            model = _TargetMlp(n_series, self.max_lag, self.hidden, rng=rng)
            optimizer = Adam(model.parameters(), lr=self.learning_rate)
            target_tensor = Tensor(targets[:, target])
            for _epoch in range(self.epochs):
                optimizer.zero_grad()
                prediction = model(design_tensor)
                loss = F.mse_loss(prediction, target_tensor)
                loss = loss + self.sparsity * model.group_lasso_penalty()
                loss.backward()
                optimizer.step()
            self.models_.append(model)

    def causal_scores(self, values: np.ndarray) -> np.ndarray:
        self._fit(values)
        n_series = values.shape[0]
        scores = np.zeros((n_series, n_series))
        for target, model in enumerate(self.models_):
            scores[target] = model.group_norms().max(axis=0)
        return scores

    def estimated_delays(self, values: np.ndarray) -> np.ndarray:
        if not self.models_:
            self._fit(values)
        n_series = values.shape[0]
        delays = np.ones((n_series, n_series), dtype=int)
        for target, model in enumerate(self.models_):
            norms = model.group_norms()           # (max_lag, N)
            delays[target] = norms.argmax(axis=0) + 1
        return delays
