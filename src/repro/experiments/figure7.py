"""Figure 7 — the four synthetic causal structures.

The paper's Fig. 7 just draws the diamond / mediator / v-structure / fork
ground-truth graphs.  ``describe_structures`` regenerates the same
information as a structured report (edges, self-loops, densities), which the
Figure-7 benchmark prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.data.synthetic import SYNTHETIC_STRUCTURES, synthetic_dataset


def describe_structures(structures: Optional[Sequence[str]] = None,
                        seed: int = 0, length: int = 200) -> Dict[str, Dict]:
    """Edge lists and summary statistics of each synthetic structure."""
    structures = tuple(structures) if structures is not None else SYNTHETIC_STRUCTURES
    report: Dict[str, Dict] = {}
    for structure in structures:
        dataset = synthetic_dataset(structure, length=length, seed=seed)
        graph = dataset.graph
        non_self = graph.without_self_loops()
        report[structure] = {
            "n_series": graph.n_series,
            "n_edges": graph.n_edges,
            "n_cross_edges": non_self.n_edges,
            "n_self_loops": len(graph.self_loops),
            "edges": [edge.as_tuple() for edge in graph.edges],
            "is_acyclic": graph.is_acyclic_ignoring_self_loops(),
            "series_std": float(dataset.values.std()),
        }
    return report


def render_structures(report: Dict[str, Dict]) -> str:
    """Plain-text rendering of the Fig. 7 structures."""
    lines: List[str] = []
    for structure, info in report.items():
        lines.append(f"{structure}: {info['n_series']} series, "
                     f"{info['n_cross_edges']} cross edges, "
                     f"{info['n_self_loops']} self-loops")
        for source, target, delay in info["edges"]:
            lines.append(f"  S{source} -> S{target} (delay {delay})")
    return "\n".join(lines)
