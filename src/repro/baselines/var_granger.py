"""Classical linear VAR Granger causality.

Fits a vector autoregression by ordinary least squares on a lagged design
matrix and scores the relation ``j → i`` by the largest absolute coefficient
of series ``j`` across lags in series ``i``'s equation (Sec. 2.1 of the
paper, the ``w^τ_{i,j} ≠ 0`` criterion).  The delay estimate is the lag of
that largest coefficient.  This statistical reference is not one of the
paper's deep baselines but provides a sanity anchor for the benchmark
harness.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import ScoreBasedMethod
from repro.data.windows import lagged_design_matrix


class VarGranger(ScoreBasedMethod):
    """Linear VAR Granger causal discovery by OLS."""

    name = "var_granger"

    def __init__(self, max_lag: int = 3, ridge: float = 1e-3,
                 include_self: bool = True, **kwargs) -> None:
        super().__init__(**kwargs)
        if max_lag < 1:
            raise ValueError("max_lag must be at least 1")
        self.max_lag = max_lag
        self.ridge = ridge
        self.include_self = include_self
        self.coefficients_: Optional[np.ndarray] = None

    def _fit_coefficients(self, values: np.ndarray) -> np.ndarray:
        """Return coefficients of shape ``(max_lag, n_series, n_series)``.

        ``coefficients[lag - 1, j, i]`` is the weight of series ``j`` at lag
        ``lag`` in the equation of series ``i``.
        """
        n_series = values.shape[0]
        design, targets = lagged_design_matrix(values, self.max_lag)
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        solution = np.linalg.solve(gram, design.T @ targets)
        return solution.reshape(self.max_lag, n_series, n_series)

    def causal_scores(self, values: np.ndarray) -> np.ndarray:
        self.coefficients_ = self._fit_coefficients(values)
        # scores[target, source] = max over lags of |coef[lag, source, target]|
        scores = np.max(np.abs(self.coefficients_), axis=0).T
        if not self.include_self:
            np.fill_diagonal(scores, 0.0)
        return scores

    def estimated_delays(self, values: np.ndarray) -> np.ndarray:
        if self.coefficients_ is None:
            self.coefficients_ = self._fit_coefficients(values)
        best_lag = np.argmax(np.abs(self.coefficients_), axis=0) + 1
        return best_lag.T
