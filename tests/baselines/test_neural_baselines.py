"""The deep baselines: cMLP, cLSTM, TCDF, DVGNN-lite, CUTS-lite.

Each baseline is checked on a strongly-coupled two-series system (series 0
drives series 1) — the causal score of the true relation must exceed the
score of the reverse relation — plus interface-level behaviour.  Heavier
accuracy comparisons live in the benchmark suite.
"""

import numpy as np
import pytest

from repro.baselines import CLstm, CMlp, CutsLite, DvgnnLite, Tcdf
from repro.data.var import VarProcessSpec, simulate_var
from repro.graph import TemporalCausalGraph


@pytest.fixture(scope="module")
def driven_pair():
    """Series 0 strongly drives series 1 with lag 1; no reverse influence."""
    graph = TemporalCausalGraph(2)
    graph.add_edge(0, 1, 1)
    weights = np.zeros((2, 2, 2))
    weights[1, 0, 1] = 0.9
    spec = VarProcessSpec(graph=graph, length=500, noise_std=0.4, coefficients=weights)
    values = simulate_var(spec, rng=np.random.default_rng(0))
    return values, graph


FAST_BASELINES = [
    pytest.param(lambda: CMlp(epochs=80, sparsity=1e-3, seed=0), id="cmlp"),
    pytest.param(lambda: CLstm(epochs=25, seed=0), id="clstm"),
    pytest.param(lambda: Tcdf(epochs=80, seed=0), id="tcdf"),
    pytest.param(lambda: DvgnnLite(epochs=100, seed=0), id="dvgnn"),
    pytest.param(lambda: CutsLite(epochs=120, seed=0), id="cuts"),
]


class TestDirectionality:
    @pytest.mark.parametrize("factory", FAST_BASELINES)
    def test_true_direction_scores_higher(self, factory, driven_pair):
        values, _graph = driven_pair
        method = factory()
        scores = method.causal_scores(values)
        # scores[target, source]: the relation 0 → 1 must beat 1 → 0.
        assert scores[1, 0] > scores[0, 1]

    @pytest.mark.parametrize("factory", FAST_BASELINES)
    def test_scores_shape_and_finiteness(self, factory, driven_pair):
        values, _graph = driven_pair
        scores = factory().causal_scores(values)
        assert scores.shape == (2, 2)
        assert np.isfinite(scores).all()

    @pytest.mark.parametrize("factory", FAST_BASELINES)
    def test_discover_returns_graph(self, factory, driven_pair):
        values, graph = driven_pair
        predicted = factory().discover(values)
        assert predicted.n_series == 2


class TestDelayEstimates:
    def test_cmlp_delay_matrix(self, driven_pair):
        values, _ = driven_pair
        method = CMlp(epochs=60, seed=0)
        method.causal_scores(values)
        delays = method.estimated_delays(values)
        assert delays.shape == (2, 2)
        assert (delays >= 1).all()

    def test_tcdf_delay_matrix(self, driven_pair):
        values, _ = driven_pair
        method = Tcdf(epochs=60, seed=0)
        method.causal_scores(values)
        delays = method.estimated_delays(values)
        assert delays.shape == (2, 2)
        assert (delays >= 1).all()

    def test_cuts_delay_matrix(self, driven_pair):
        values, _ = driven_pair
        method = CutsLite(epochs=60, seed=0)
        method.causal_scores(values)
        delays = method.estimated_delays(values)
        assert (delays >= 1).all() and (delays <= 3).all()

    def test_clstm_has_no_delays(self, driven_pair):
        values, _ = driven_pair
        method = CLstm(epochs=10, seed=0)
        assert method.estimated_delays(values) is None


class TestInternals:
    def test_cmlp_group_norms_shape(self, driven_pair):
        values, _ = driven_pair
        method = CMlp(epochs=10, max_lag=4, hidden=8, seed=0)
        method.causal_scores(values)
        norms = method.models_[0].group_norms()
        assert norms.shape == (4, 2)
        assert (norms >= 0).all()

    def test_cmlp_sparsity_shrinks_weights(self, driven_pair):
        values, _ = driven_pair
        loose = CMlp(epochs=60, sparsity=0.0, seed=0)
        tight = CMlp(epochs=60, sparsity=5e-2, seed=0)
        loose_scores = loose.causal_scores(values)
        tight_scores = tight.causal_scores(values)
        assert tight_scores.sum() < loose_scores.sum()

    def test_tcdf_attention_normalised(self, driven_pair):
        values, _ = driven_pair
        method = Tcdf(epochs=20, seed=0)
        scores = method.causal_scores(values)
        np.testing.assert_allclose(scores.sum(axis=1), 1.0, atol=1e-8)

    def test_dvgnn_adjacency_rows_normalised(self, driven_pair):
        values, _ = driven_pair
        method = DvgnnLite(epochs=20, seed=0)
        scores = method.causal_scores(values)
        np.testing.assert_allclose(scores.sum(axis=1), 1.0, atol=1e-8)

    def test_cuts_gates_are_probabilities(self, driven_pair):
        values, _ = driven_pair
        method = CutsLite(epochs=20, seed=0)
        scores = method.causal_scores(values)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_clstm_window_cap(self, driven_pair):
        values, _ = driven_pair
        method = CLstm(epochs=2, max_windows=32, seed=0)
        inputs, _targets = method._prepare(values)
        assert inputs.shape[0] <= 32

    def test_seed_reproducibility(self, driven_pair):
        values, _ = driven_pair
        a = CutsLite(epochs=40, seed=5).causal_scores(values)
        b = CutsLite(epochs=40, seed=5).causal_scores(values)
        np.testing.assert_allclose(a, b)
