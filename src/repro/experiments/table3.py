"""Table 3 — ablation study of CausalFormer on the fMRI dataset.

The paper removes one component at a time and reports precision / recall /
F1 on the fMRI networks:

* ``w/o interpretation`` — read attention/kernel weights instead of running
  the decomposition-based detector;
* ``w/o relevance``      — use only gradients as causal scores;
* ``w/o gradient``       — use only relevance scores;
* ``w/o bias``           — drop the bias term from the RRP denominators;
* ``w/o multi conv kernel`` — a single convolution kernel shared by all pairs;
* ``CausalFormer``       — the full model.

Every variant is expressible as a ``causalformer`` job config (the detector
switches and ``single_kernel`` are part of the config payload), so the
ablation sweep dispatches through the :mod:`repro.service` executor and
gains ``max_workers`` / ``cache`` like the other runners.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional, Sequence

from repro.core.config import CausalFormerConfig, fmri_preset
from repro.data.fmri import fmri_dataset
from repro.experiments.reporting import ResultTable
from repro.experiments.runner import causalformer_config_payload, make_executor
from repro.service.executor import execute_job
from repro.service.jobs import DiscoveryJob, fingerprint_dataset
from repro.telemetry import verbose_telemetry

ABLATION_NAMES = (
    "w/o interpretation",
    "w/o relevance",
    "w/o gradient",
    "w/o bias",
    "w/o multi conv kernel",
    "CausalFormer",
)

#: extra causalformer job-config entries for each ablation variant
_VARIANT_OVERRIDES: Dict[str, Dict[str, Any]] = {
    "w/o interpretation": {"use_interpretation": False},
    "w/o relevance": {"use_relevance": False},
    "w/o gradient": {"use_gradient": False},
    "w/o bias": {"use_bias": False},
    "w/o multi conv kernel": {"single_kernel": True},
    "CausalFormer": {},
}


def variant_config(name: str, config: CausalFormerConfig) -> Dict[str, Any]:
    """The ``causalformer`` job-config payload for one ablation variant."""
    if name not in _VARIANT_OVERRIDES:
        raise ValueError(f"unknown ablation variant {name!r}")
    return causalformer_config_payload(config, **_VARIANT_OVERRIDES[name])


def run_table3(seeds: Sequence[int] = (0, 1), fast: bool = True,
               n_nodes: int = 5, length: int = 200,
               variants: Optional[Sequence[str]] = None,
               verbose: bool = False,
               max_workers: Optional[int] = None,
               cache=None) -> ResultTable:
    """Regenerate Table 3 (ablations on fMRI): precision, recall and F1 rows."""
    variants = tuple(variants) if variants is not None else ABLATION_NAMES
    preset = fmri_preset()
    if fast:
        # Keep the full training budget (the detector needs a converged
        # model); only the windowing stride is loosened for speed.
        preset = replace(preset, window_stride=2)
    executor = make_executor(max_workers=max_workers, cache=cache)

    pairs = []
    for seed in seeds:
        dataset = fmri_dataset(n_nodes=n_nodes, length=length, seed=seed)
        fingerprint = fingerprint_dataset(dataset)
        for variant in variants:
            job = DiscoveryJob(
                method="causalformer",
                config=variant_config(variant, preset),
                dataset=f"fmri-{n_nodes}",
                dataset_fingerprint=fingerprint,
                seed=seed,
            )
            pairs.append((variant, seed, job, dataset))

    if executor is not None:
        results = executor.run([(job, dataset) for _v, _s, job, dataset in pairs])
    else:
        results = [execute_job(job, dataset) for _v, _s, job, dataset in pairs]

    table = ResultTable("Table 3: fMRI ablations", metric="f1")
    telemetry = verbose_telemetry(verbose)
    for (variant, seed, _job, _dataset), result in zip(pairs, results):
        if not result.ok:
            raise RuntimeError(f"ablation {variant!r} (seed={seed}) failed:\n{result.error}")
        scores = result.scores
        table.add(variant, "precision", scores.precision)
        table.add(variant, "recall", scores.recall)
        table.add(variant, "f1", scores.f1)
        if telemetry.enabled:
            telemetry.event("ablation_result", variant=variant, seed=seed,
                            precision=scores.precision, recall=scores.recall,
                            f1=scores.f1)
    return table
