"""Generic experiment runner: methods × datasets × seeds → scores.

The paper's evaluation runs every method on every dataset for several random
seeds and reports mean ± standard deviation.  ``MethodSpec`` and
``ExperimentSpec`` describe the sweep declaratively; :func:`evaluate_methods`
executes it and fills a :class:`~repro.experiments.reporting.ResultTable`.

Sweeps dispatch through the :mod:`repro.service` job subsystem: a
``MethodSpec`` that names a registry method (rather than wrapping an opaque
factory) becomes a picklable :class:`~repro.service.jobs.DiscoveryJob`, so
``evaluate_methods(..., max_workers=4, cache="...")`` fans the sweep out over
worker processes and answers repeated cells from the on-disk result cache.
Specs built from bare factories still run, in-process, exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import CausalFormerConfig, fast_preset
from repro.data.base import TimeSeriesDataset
from repro.experiments.reporting import ResultTable
from repro.graph.metrics import DiscoveryScores, evaluate_discovery
from repro.service.cache import ResultCache
from repro.service.executor import JobExecutor
from repro.service.jobs import DiscoveryJob, fingerprint_dataset
from repro.service.registry import build_method, method_names
from repro.telemetry import verbose_telemetry

MethodFactory = Callable[[int], object]
DatasetFactory = Callable[[int], TimeSeriesDataset]


@dataclass
class MethodSpec:
    """A named method, either registry-addressable or an opaque factory.

    Registry form (``method`` + ``config``) is preferred: it serializes into
    :class:`~repro.service.jobs.DiscoveryJob` specs, so sweeps can run in
    worker processes and hit the result cache.  The ``factory`` form remains
    for ad-hoc methods (the factory receives the seed) but always runs
    in-process and uncached.
    """

    name: str
    factory: Optional[MethodFactory] = None
    method: Optional[str] = None
    config: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.factory is None and self.method is None:
            # ``MethodSpec("cmlp")`` addresses the registry method "cmlp".
            self.method = self.name

    @property
    def is_schedulable(self) -> bool:
        """True when this spec can become a picklable discovery job."""
        return self.factory is None and self.method in method_names()

    def build(self, seed: int):
        if self.factory is not None:
            return self.factory(seed)
        return build_method(self.method, self.config, seed=seed)

    def job_for(self, dataset_name: str, dataset_fingerprint: str, seed: int,
                delay_tolerance: int = 0) -> DiscoveryJob:
        if not self.is_schedulable:
            raise ValueError(f"method spec {self.name!r} wraps a bare factory "
                             f"and cannot be scheduled as a job")
        return DiscoveryJob(
            method=self.method,
            config=dict(self.config),
            dataset=dataset_name,
            dataset_fingerprint=dataset_fingerprint,
            seed=seed,
            delay_tolerance=delay_tolerance,
        )


@dataclass
class ExperimentSpec:
    """A named dataset factory plus the seeds to sweep."""

    name: str
    dataset_factory: DatasetFactory
    seeds: Sequence[int] = (0, 1, 2)

    def datasets(self):
        for seed in self.seeds:
            yield seed, self.dataset_factory(seed)


def run_method_on_dataset(method, dataset: TimeSeriesDataset,
                          delay_tolerance: int = 0) -> DiscoveryScores:
    """Run one method on one dataset and score it against the ground truth."""
    if dataset.graph is None:
        raise ValueError(f"dataset {dataset.name!r} has no ground-truth graph to score against")
    predicted = method.discover(dataset)
    return evaluate_discovery(predicted, dataset.graph, delay_tolerance=delay_tolerance)


def make_executor(executor: Optional[JobExecutor] = None,
                  max_workers: Optional[int] = None,
                  cache=None,
                  batch_jobs: bool = False) -> Optional[JobExecutor]:
    """Resolve the executor the table/figure runners should dispatch through.

    An explicit ``executor`` wins; otherwise one is built when parallelism
    (``max_workers`` ≠ 1), caching or job batching is requested; otherwise
    ``None`` (the caller runs serially in-process).
    """
    if executor is not None:
        return executor
    if (max_workers is not None and max_workers != 1) or cache is not None \
            or batch_jobs:
        # Invalid worker counts (e.g. 0) surface as JobExecutor's ValueError.
        return JobExecutor(max_workers=1 if max_workers is None else max_workers,
                           cache=cache, batch_jobs=batch_jobs)
    return None


def evaluate_methods(experiments: Sequence[ExperimentSpec],
                     methods: Sequence[MethodSpec],
                     metric: str = "f1",
                     title: str = "F1",
                     delay_tolerance: int = 0,
                     verbose: bool = False,
                     executor: Optional[JobExecutor] = None,
                     max_workers: Optional[int] = None,
                     cache=None,
                     batch_jobs: bool = False) -> ResultTable:
    """Run every method on every experiment/seed; aggregate one metric.

    With ``executor`` (or ``max_workers`` / ``cache`` / ``batch_jobs``),
    registry-addressable method specs are dispatched as discovery jobs — in
    parallel when the executor has workers, same-shape CausalFormer cells
    stacked into one training pass when batching is on, answered from its
    cache when warm.  Factory-based specs always run serially in-process.
    A job that crashed raises, naming the offending cell, so a sweep cannot
    silently lose values.
    """
    executor = make_executor(executor, max_workers=max_workers, cache=cache,
                             batch_jobs=batch_jobs)
    table = ResultTable(title, metric=metric)
    # verbose progress flows through telemetry: a configured runtime records
    # cell_result events alongside everything else; with telemetry off,
    # verbose=True gets a transient stderr runtime (the old print lines,
    # now as structured events on stderr).
    telemetry = verbose_telemetry(verbose)

    def record(experiment_name: str, seed: int, method_spec: MethodSpec, value) -> None:
        table.add(experiment_name, method_spec.name, value)
        if telemetry.enabled:
            telemetry.event(
                "cell_result", experiment=experiment_name, seed=seed,
                method=method_spec.name, metric=metric,
                value=float(value) if value is not None else None)

    with telemetry.trace("evaluate_methods", experiments=len(experiments),
                         methods=len(methods), metric=metric):
        if executor is None:
            # Serial path: stream one dataset at a time (no sweep-wide
            # materialization), exactly like the pre-service runner.
            for experiment in experiments:
                for seed, dataset in experiment.datasets():
                    for method_spec in methods:
                        method = method_spec.build(seed)
                        scores = run_method_on_dataset(method, dataset,
                                                       delay_tolerance=delay_tolerance)
                        record(experiment.name, seed, method_spec,
                               getattr(scores, metric))
            return table

        # Executor path: materialize the cells so jobs can fan out all at once.
        cells: List[Tuple[str, int, TimeSeriesDataset, MethodSpec]] = []
        for experiment in experiments:
            for seed, dataset in experiment.datasets():
                if dataset.graph is None:
                    raise ValueError(f"dataset {dataset.name!r} has no ground-truth "
                                     f"graph to score against")
                for method_spec in methods:
                    cells.append((experiment.name, seed, dataset, method_spec))

        scheduled = [index for index, cell in enumerate(cells)
                     if cell[3].is_schedulable]
        values: Dict[int, Optional[float]] = {}

        if scheduled:
            fingerprints: Dict[int, str] = {}
            pairs = []
            for index in scheduled:
                experiment_name, seed, dataset, method_spec = cells[index]
                fingerprint = fingerprints.get(id(dataset))
                if fingerprint is None:
                    fingerprint = fingerprint_dataset(dataset)
                    fingerprints[id(dataset)] = fingerprint
                pairs.append((method_spec.job_for(experiment_name, fingerprint, seed,
                                                  delay_tolerance), dataset))
            for index, result in zip(scheduled, executor.run(pairs)):
                experiment_name, seed, _dataset, method_spec = cells[index]
                if not result.ok:
                    raise RuntimeError(
                        f"{method_spec.name} on {experiment_name} (seed={seed}) failed:\n"
                        f"{result.error}")
                values[index] = result.metric(metric)

        for index, (experiment_name, seed, dataset, method_spec) in enumerate(cells):
            if index in values:
                value = values[index]
            else:
                method = method_spec.build(seed)
                scores = run_method_on_dataset(method, dataset,
                                               delay_tolerance=delay_tolerance)
                value = getattr(scores, metric)
            record(experiment_name, seed, method_spec, value)
        return table


# ---------------------------------------------------------------------- #
# Default method factories (paper Sec. 5.2 baselines + CausalFormer)
# ---------------------------------------------------------------------- #
def causalformer_config_payload(config: CausalFormerConfig, **causalformer_kwargs
                                ) -> Dict[str, Any]:
    """Flatten a config + detector switches into a job config payload.

    The seed is dropped — the job's own seed always wins — and the detector
    switches ride alongside the model hyper-parameters (the registry factory
    splits them back apart).
    """
    payload = config.to_dict()
    payload.pop("seed", None)
    payload.update(causalformer_kwargs)
    return payload


def causalformer_spec(config_factory: Optional[Callable[[], CausalFormerConfig]] = None,
                      name: str = "causalformer", **causalformer_kwargs) -> MethodSpec:
    """MethodSpec for CausalFormer with a per-seed config."""
    config = config_factory() if config_factory is not None else fast_preset()
    return MethodSpec(name=name, method="causalformer",
                      config=causalformer_config_payload(config, **causalformer_kwargs))


def default_method_specs(fast: bool = True,
                         include_causalformer: bool = True,
                         config_factory: Optional[Callable[[], CausalFormerConfig]] = None
                         ) -> List[MethodSpec]:
    """The paper's method line-up: cMLP, cLSTM, TCDF, DVGNN, CUTS, CausalFormer."""
    epoch_scale = 1.0 if not fast else 0.5
    specs = [
        MethodSpec("cmlp", config={"epochs": int(120 * epoch_scale), "sparsity": 1e-3}),
        MethodSpec("clstm", config={"epochs": int(40 * epoch_scale)}),
        MethodSpec("tcdf", config={"epochs": int(120 * epoch_scale)}),
        MethodSpec("dvgnn", config={"epochs": int(150 * epoch_scale)}),
        MethodSpec("cuts", config={"epochs": int(200 * epoch_scale)}),
    ]
    if include_causalformer:
        specs.append(causalformer_spec(config_factory))
    return specs
