"""Continuous batching of CausalFormer discovery jobs into stacked lanes.

A sweep frequently schedules the *same* CausalFormer configuration over
several datasets and seeds.  Dispatching each as its own job repeats the
whole per-model numpy call sequence — at sweep model sizes the dispatch
overhead dominates the arithmetic.  This module packs compatible jobs into
one process pass that stays stacked end to end: the models train together
through :class:`repro.core.batched.StackedCausalFormerTrainer` (stacked
GEMMs for every step *and* every validation pass, one fused training
engine + scratch arena serving both), then the group's detector
interpretation runs as stacked passes reusing that same arena
(:func:`repro.core.detector.compute_scores_group`) instead of one
interpretation per job; only graph construction and scoring stay per job.

Three continuous-batching mechanisms keep the stack full:

* **Shape bucketing** — jobs are stackable when they name the
  ``causalformer`` method with identical configuration (up to the seed) on
  datasets with the same *variable count*; series lengths may differ.
  :func:`group_batchable` buckets each signature's jobs by length under a
  configurable relative ``slack`` (``0.0``, the default, reproduces exact
  same-length grouping) and the stacked trainer runs the mixed window
  counts with lane-axis pad-and-mask steps.
* **Lane compaction + queue refill** — :func:`execute_batched_jobs` can
  cap the live stack at ``max_lanes`` and holds the rest of the bucket in
  an admission queue; when a lane finishes (early stop / divergence /
  ``max_epochs``) the trainer compacts it away and refills from the queue.
* **Cache awareness** — grouping and admission both consult the
  :class:`~repro.service.cache.ResultCache` when one is provided, so an
  already-cached job never anchors a bucket and never occupies a lane.

Batching is numerics-preserving: the stacked trainer's per-model steps and
the stacked interpretation's per-model scores are bit-identical to the
sequential paths, so a batched sweep returns the same graphs and scores as
per-job dispatch — the correctness tests assert this.  Everything else —
baselines, odd-shaped cells — falls through to the ordinary per-job path.
"""

from __future__ import annotations

import time
import traceback
from collections import OrderedDict, deque
from typing import List, Optional, Sequence, Tuple

from repro.data.base import TimeSeriesDataset
from repro.service.cache import ResultCache
from repro.service.jobs import DiscoveryJob, JobResult, canonical_json

JobPair = Tuple[DiscoveryJob, TimeSeriesDataset]

#: minimum group size worth a stacked pass
MIN_GROUP = 2


def batch_signature(job: DiscoveryJob, dataset: TimeSeriesDataset):
    """Hard grouping key for stackable jobs (``None`` when not batchable).

    The configuration (minus the seed) is part of the key, so the
    single-kernel ablation groups with other single-kernel jobs and never
    with multi-kernel ones.  The dataset contributes only its *variable
    count* — series length is soft (bucketed under slack by
    :func:`group_batchable`), since the stacked trainer pads and masks
    heterogeneous window counts without changing any model's numerics.
    """
    if job.method != "causalformer":
        return None
    config = {key: value for key, value in job.config.items() if key != "seed"}
    try:
        n_series = int(dataset.values.shape[0])
    except AttributeError:
        return None
    return (job.method, canonical_json(config), n_series)


def _series_length(dataset: TimeSeriesDataset) -> int:
    return int(dataset.values.shape[1])


def _shape_buckets(members: List[Tuple[int, JobPair]], slack: float
                   ) -> List[List[Tuple[int, JobPair]]]:
    """Greedily bucket one signature's jobs by series length under slack.

    Members sort by length; each bucket anchors at its shortest remaining
    job and admits jobs while ``length <= anchor * (1 + slack)`` — padding
    cost is relative to the shortest lane, so the bound caps the padded
    fraction any lane can impose on the bucket.  ``slack == 0`` admits only
    exact length matches (the historical same-shape grouping).
    """
    ordered = sorted(members, key=lambda item: _series_length(item[1][1]))
    buckets: List[List[Tuple[int, JobPair]]] = []
    for member in ordered:
        length = _series_length(member[1][1])
        if buckets:
            anchor = _series_length(buckets[-1][0][1][1])
            if length <= anchor * (1.0 + slack):
                buckets[-1].append(member)
                continue
        buckets.append([member])
    return buckets


def group_batchable(pairs: Sequence[Tuple[int, JobPair]],
                    slack: float = 0.0,
                    cache: Optional[ResultCache] = None
                    ) -> Tuple[List[List[Tuple[int, JobPair]]],
                               List[Tuple[int, JobPair]]]:
    """Split indexed pairs into stackable groups and per-job leftovers.

    ``slack`` is the relative series-length slack for shape bucketing.
    When a ``cache`` is given, jobs whose cache key already has an entry go
    straight to the leftovers (their results come from disk — they must not
    anchor a bucket or occupy a lane).
    """
    if slack < 0:
        raise ValueError("bucket slack must be non-negative")
    grouped: "OrderedDict[tuple, List[Tuple[int, JobPair]]]" = OrderedDict()
    singles: List[Tuple[int, JobPair]] = []
    for index, (job, dataset) in pairs:
        signature = batch_signature(job, dataset)
        if signature is None or (cache is not None
                                 and cache.get(job.cache_key()) is not None):
            singles.append((index, (job, dataset)))
        else:
            grouped.setdefault(signature, []).append((index, (job, dataset)))
    groups: List[List[Tuple[int, JobPair]]] = []
    for members in grouped.values():
        for bucket in _shape_buckets(members, slack):
            if len(bucket) >= MIN_GROUP:
                groups.append(bucket)
            else:
                singles.extend(bucket)
    singles.sort(key=lambda item: item[0])
    return groups, singles


class _Admitted:
    """One job occupying (or having occupied) a trainer lane."""

    __slots__ = ("position", "job", "dataset", "method", "values")

    def __init__(self, position, job, dataset, method, values) -> None:
        self.position = position
        self.job = job
        self.dataset = dataset
        self.method = method
        self.values = values


def execute_batched_jobs(pairs: Sequence[JobPair],
                         max_lanes: Optional[int] = None,
                         cache: Optional[ResultCache] = None
                         ) -> List[JobResult]:
    """Run one bucket of stackable jobs as one continuous stacked pass.

    ``max_lanes`` caps the live stack width; the rest of the bucket waits
    in an admission queue and refills lanes freed by compaction.  When a
    ``cache`` is given it is consulted at admission time, so jobs cached
    since grouping never occupy a lane.

    Per-job failures during graph construction/scoring are captured into
    their own :class:`JobResult`; a failure of the *shared* stacked training
    falls back to sequential per-job execution, and a failure of the shared
    stacked interpretation falls back to per-job interpretation — batching
    never loses a sweep.
    """
    from repro.core.batched import StackedCausalFormerTrainer
    from repro.service.executor import execute_job, lookup_cached
    from repro.service.registry import build_method
    from repro.telemetry import get_telemetry

    telemetry = get_telemetry()
    pairs = list(pairs)
    results: List[Optional[JobResult]] = [None] * len(pairs)
    lanes = len(pairs) if max_lanes is None else max(1, int(max_lanes))
    group_span = telemetry.trace(
        "job_group", jobs=len(pairs), lanes=min(lanes, len(pairs)),
        job_id=pairs[0][0].job_id if pairs else None,
        method=pairs[0][0].method if pairs else None)
    with group_span as span:
        queue = deque(range(len(pairs)))
        admitted: List[_Admitted] = []

        def admit(position: int) -> Optional[_Admitted]:
            """Prepare one queued job for a lane; cache hits short-circuit."""
            job, dataset = pairs[position]
            if cache is not None:
                hit = lookup_cached(cache, job)
                if hit is not None:
                    results[position] = hit
                    telemetry.event("job_cache_hit", job_id=job.job_id,
                                    lookup_duration=hit.lookup_duration)
                    return None
            method = build_method(job.method, job.config, seed=job.seed)
            values = method.prepare_fit(dataset)
            entry = _Admitted(position, job, dataset, method, values)
            admitted.append(entry)
            return entry

        try:
            start = time.perf_counter()
            with telemetry.trace("group_train", jobs=len(pairs),
                                 lanes=min(lanes, len(pairs))):
                initial: List[_Admitted] = []
                while queue and len(initial) < lanes:
                    entry = admit(queue.popleft())
                    if entry is not None:
                        initial.append(entry)
                if not initial:
                    # The whole bucket answered from cache.
                    span.set(cache_hits=len(pairs))
                    return [result for result in results
                            if result is not None]

                def refill(free: int):
                    admissions = []
                    while queue and len(admissions) < free:
                        entry = admit(queue.popleft())
                        if entry is not None:
                            admissions.append((entry.method.model_,
                                               entry.values))
                    return admissions

                trainer = StackedCausalFormerTrainer(
                    [entry.method.model_ for entry in initial],
                    capacity=min(lanes, len(pairs)))
                histories = trainer.fit([entry.values for entry in initial],
                                        refill=refill)
                # Lanes whose training step raised were quarantined by the
                # trainer (the survivors trained on unchanged); their jobs
                # re-run solo below instead of being finalized here.
                quarantined = dict(trainer.quarantined)
                # finalize_fit is two attribute assignments; it lives in the
                # shared block because the group interpretation below needs
                # every method finalized before it can collect the detector
                # windows.
                for index, (entry, history) in enumerate(zip(admitted,
                                                             histories)):
                    if index not in quarantined:
                        entry.method.finalize_fit(entry.values, history)
            shared = (time.perf_counter() - start) / len(admitted)
        except Exception:
            # The stacked pass itself failed (incompatible shapes slipping
            # past the signature, resource limits, …): degrade to per-job
            # execution for everything not already answered from cache.
            span.set(fallback="stacked_training")
            telemetry.counter("batched.train_fallbacks").inc()
            telemetry.event("stacked_train_fallback", jobs=len(pairs))
            return [results[position]
                    if results[position] is not None
                    else execute_job(job, dataset)
                    for position, (job, dataset) in enumerate(pairs)]

        # Stacked detector interpretation: one cache forward, multi-target
        # backward and relevance propagation per *shape sub-group*
        # (bit-identical per-model scores; heterogeneous lanes often share
        # a detector-window shape anyway once max_detector_windows caps the
        # count).  Any failure degrades to per-job interpretation.
        detectors = None
        scores_list = None
        try:
            from repro.core.detector import compute_scores_group

            interpret_start = time.perf_counter()
            with telemetry.trace("group_interpret", jobs=len(admitted)):
                # Quarantined entries hold None placeholders: never
                # finalized, so they have no detector and no windows.
                detectors = [None if index in quarantined
                             else entry.method.build_detector()
                             for index, entry in enumerate(admitted)]
                windows_list = [None if index in quarantined
                                else entry.method.detector_windows()
                                for index, entry in enumerate(admitted)]
                scores_list = [None] * len(admitted)
                shape_groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
                for index, windows in enumerate(windows_list):
                    if windows is None:
                        continue
                    shape_groups.setdefault(tuple(windows.shape),
                                            []).append(index)
                for members in shape_groups.values():
                    if len(members) < MIN_GROUP:
                        continue   # solo interpretation below
                    # The trainer's engine arena is reused for the stacked
                    # cache forward/backward — training, validation and
                    # interpretation share one buffer pool for the group.
                    sub_scores = compute_scores_group(
                        [detectors[index] for index in members],
                        [windows_list[index] for index in members],
                        arena=trainer.engine.arena)
                    for index, scores in zip(members, sub_scores):
                        scores_list[index] = scores
            shared += (time.perf_counter() - interpret_start) / len(admitted)
        except Exception:
            detectors = None
            scores_list = None
            telemetry.counter("batched.interpret_fallbacks").inc()
            telemetry.event("stacked_interpret_fallback", jobs=len(admitted))

        for index, entry in enumerate(admitted):
            job, dataset = entry.job, entry.dataset
            if index in quarantined:
                # The lane's training step raised and the trainer excised
                # it; retry the job solo (one-shot injected faults have
                # already fired, and a genuine per-model failure will
                # surface as this job's own error result).
                telemetry.counter("batched.quarantine_retries").inc()
                telemetry.event("job_quarantine_retry", job_id=job.job_id,
                                error=quarantined[index])
                results[entry.position] = execute_job(job, dataset)
                continue
            own = time.perf_counter()
            try:
                if scores_list is None or scores_list[index] is None:
                    graph = entry.method.interpret()
                else:
                    graph = entry.method.adopt_interpretation(
                        detectors[index], scores_list[index])
                scores = None
                if dataset.graph is not None:
                    from repro.graph.metrics import evaluate_discovery

                    scores = evaluate_discovery(
                        graph, dataset.graph,
                        delay_tolerance=job.delay_tolerance)
                results[entry.position] = JobResult(
                    job=job, graph=graph, scores=scores,
                    duration=shared + time.perf_counter() - own)
            except Exception:
                telemetry.counter("executor.job_errors").inc()
                telemetry.event("job_error", job_id=job.job_id,
                                method=job.method)
                results[entry.position] = JobResult(
                    job=job, error=traceback.format_exc(),
                    duration=shared + time.perf_counter() - own)
    return [result for result in results if result is not None]


def execute_batched_jobs_with_dtype(pairs: Sequence[JobPair], dtype: str,
                                    collect_telemetry: bool = False,
                                    engine_threads: Optional[int] = None,
                                    max_lanes: Optional[int] = None,
                                    cache_dir: Optional[str] = None,
                                    directives: Optional[dict] = None
                                    ) -> List[JobResult]:
    """Pool worker entry point: adopt the submitter's engine dtype, then run.

    ``engine_threads`` re-applies the submitter's engine thread count inside
    the worker (fresh processes start with an empty engine pool), so stacked
    groups thread their training pass exactly like an in-process run would.
    ``max_lanes`` and ``cache_dir`` travel as plain data (a cache path, not
    a cache object) so the worker rebuilds its own admission-time cache.

    With ``collect_telemetry``, the whole group runs under an in-worker
    buffering runtime whose export ships back on the group's *first* result
    (the group shares one training pass, so its telemetry is one payload).
    """
    from repro.nn.parallel import set_engine_threads
    from repro.nn.tensor import set_default_dtype
    from repro.service.executor import _apply_directives
    from repro.telemetry import capture

    _apply_directives(directives)
    set_default_dtype(dtype)
    if engine_threads is not None:
        set_engine_threads(engine_threads)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    if not collect_telemetry:
        return execute_batched_jobs(pairs, max_lanes=max_lanes, cache=cache)
    with capture() as telemetry:
        results = execute_batched_jobs(pairs, max_lanes=max_lanes, cache=cache)
    if results:
        results[0].telemetry = telemetry.export()
    return results
