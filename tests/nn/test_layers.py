"""Behaviour of the standard layers (Linear, Conv1d, LSTM, Dropout, ...)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import (
    Conv1d,
    Dropout,
    Identity,
    LeakyReLU,
    Linear,
    LSTM,
    LSTMCell,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.tensor import Tensor


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 7)
        assert layer(Tensor(np.zeros((3, 4)))).shape == (3, 7)

    def test_batched_3d_input(self):
        layer = Linear(4, 7)
        assert layer(Tensor(np.zeros((2, 5, 4)))).shape == (2, 5, 7)

    def test_matches_manual_affine(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 3)
        x = rng.normal(size=(5, 4))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        x = np.ones((2, 4))
        np.testing.assert_allclose(layer(Tensor(x)).data, x @ layer.weight.data)

    def test_gradients_reach_parameters(self):
        layer = Linear(3, 2)
        layer(Tensor(np.ones((4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_repr(self):
        assert "in_features=3" in repr(Linear(3, 2))


class TestActivationsAndContainers:
    def test_identity(self):
        x = Tensor(np.arange(4.0))
        np.testing.assert_allclose(Identity()(x).data, x.data)

    def test_sequential_applies_in_order(self):
        model = Sequential(Linear(2, 2), ReLU(), Linear(2, 1))
        assert model(Tensor(np.zeros((3, 2)))).shape == (3, 1)

    def test_sequential_indexing_and_len(self):
        model = Sequential(Linear(2, 2), Tanh())
        assert len(model) == 2
        assert isinstance(model[1], Tanh)

    def test_activation_modules_match_functional(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(LeakyReLU(0.2)(Tensor(x)).data,
                                   F.leaky_relu(Tensor(x), 0.2).data)
        np.testing.assert_allclose(Sigmoid()(Tensor(x)).data, F.sigmoid(Tensor(x)).data)
        np.testing.assert_allclose(Tanh()(Tensor(x)).data, np.tanh(x))


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5)
        layer.eval()
        x = Tensor(np.ones((8, 8)))
        np.testing.assert_allclose(layer(x).data, 1.0)

    def test_training_mode_zeroes_entries(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((20, 20))))
        assert (out.data == 0).any()
        assert (out.data != 0).any()


class TestConv1d:
    def test_output_shape_causal(self):
        conv = Conv1d(3, 5, kernel_size=3)
        assert conv(Tensor(np.zeros((2, 3, 10)))).shape == (2, 5, 10)

    def test_matches_manual_convolution(self):
        rng = np.random.default_rng(2)
        conv = Conv1d(1, 1, kernel_size=3, bias=False)
        x = rng.normal(size=(1, 1, 6))
        out = conv(Tensor(x)).data[0, 0]
        kernel = conv.weight.data[0, 0]
        padded = np.concatenate([np.zeros(2), x[0, 0]])
        expected = np.array([np.dot(kernel, padded[t:t + 3]) for t in range(6)])
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_causality(self):
        """Changing a future input must not change past outputs."""
        rng = np.random.default_rng(3)
        conv = Conv1d(2, 2, kernel_size=3, dilation=2)
        x = rng.normal(size=(1, 2, 12))
        base = conv(Tensor(x)).data
        perturbed = x.copy()
        perturbed[:, :, 8] += 10.0
        out = conv(Tensor(perturbed)).data
        np.testing.assert_allclose(out[:, :, :8], base[:, :, :8], atol=1e-10)

    def test_grouped_depthwise(self):
        conv = Conv1d(4, 4, kernel_size=2, groups=4)
        assert conv.weight.shape == (4, 1, 2)
        assert conv(Tensor(np.zeros((2, 4, 7)))).shape == (2, 4, 7)

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            Conv1d(3, 4, kernel_size=2, groups=2)

    def test_gradients_flow(self):
        conv = Conv1d(2, 3, kernel_size=2)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 5)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None
        assert conv.weight.grad is not None


class TestLstm:
    def test_cell_shapes(self):
        cell = LSTMCell(3, 5)
        h, c = cell.initial_state(batch_size=4)
        h2, c2 = cell(Tensor(np.zeros((4, 3))), (h, c))
        assert h2.shape == (4, 5) and c2.shape == (4, 5)

    def test_sequence_output_shape(self):
        lstm = LSTM(3, 6)
        outputs, (h, c) = lstm(Tensor(np.zeros((2, 7, 3))))
        assert outputs.shape == (2, 7, 6)
        assert h.shape == (2, 6) and c.shape == (2, 6)

    def test_state_carries_information(self):
        """The last output must depend on the first input."""
        rng = np.random.default_rng(4)
        lstm = LSTM(2, 4, rng=rng)
        x = rng.normal(size=(1, 5, 2))
        base = lstm(Tensor(x))[0].data[:, -1, :]
        perturbed = x.copy()
        perturbed[0, 0, :] += 5.0
        changed = lstm(Tensor(perturbed))[0].data[:, -1, :]
        assert not np.allclose(base, changed)

    def test_gradients_reach_input_weights(self):
        lstm = LSTM(2, 3)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 2)))
        out, _ = lstm(x)
        out.sum().backward()
        assert lstm.cell.weight_ih.grad is not None
        assert lstm.cell.weight_hh.grad is not None

    def test_bounded_hidden_state(self):
        lstm = LSTM(2, 3)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 20, 2)) * 100)
        out, _ = lstm(x)
        assert np.all(np.abs(out.data) <= 1.0 + 1e-9)
