"""The process-wide telemetry runtime: configure once, instrument everywhere.

Instrumented code asks for the active runtime with :func:`get_telemetry`
and calls ``tel.event(...)`` / ``with tel.trace(...)`` /
``tel.counter(name).inc()``.  By default the active runtime is a
:class:`NullTelemetry` whose every operation is a no-op returning shared
singletons — hot paths pay one attribute check (``tel.enabled``) and
nothing else, which is what keeps the training loop within its perf budget
when observability is off.

:func:`configure` installs a real :class:`Telemetry` (sinks, metrics
registry, tracer); :func:`telemetry_from_spec` parses the CLI's
``--telemetry jsonl:PATH|stderr|off`` syntax.  :func:`capture` is the pool
workers' entry point: it installs a buffering runtime for the duration of a
job, and ``export()``/``absorb()`` carry the collected records and metric
snapshots across the process boundary.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.events import (JsonlSink, RingBufferSink, Sink,
                                    StderrSink)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Span, Tracer


class _NullMetric:
    """Counter/gauge/histogram stand-in: every mutation is a no-op."""

    __slots__ = ()
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullSpanContext:
    """Reusable no-op ``with`` target; yields a do-nothing span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *_exc) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpanContext":
        return self


_NULL_METRIC = _NullMetric()
_NULL_SPAN = _NullSpanContext()


class NullTelemetry:
    """The disabled runtime: stateless, allocation-free no-ops throughout."""

    enabled = False
    engine_profiling = False

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def trace(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, buckets=None) -> _NullMetric:
        return _NULL_METRIC

    def emit(self, record: Dict[str, Any]) -> None:
        pass

    def export(self) -> Dict[str, Any]:
        return {"records": [], "metrics": {}}

    def absorb(self, payload: Optional[Dict[str, Any]]) -> None:
        pass

    def span_tree(self) -> List[Dict[str, Any]]:
        return []

    def records(self) -> List[Dict[str, Any]]:
        return []

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class Telemetry:
    """An enabled runtime: event bus + metrics registry + tracer.

    Parameters
    ----------
    sinks:
        Destinations for every record (JSONL file, stderr, ...).
    buffer:
        Ring buffer retaining recent records for ``export()``/``records()``.
        Defaults to a fresh 4096-slot buffer; pass ``None`` to disable
        retention (pure streaming).
    registry:
        Metrics registry; a fresh one when omitted.
    engine_profiling:
        When true, trainers enable the fused engines' per-op profiling hook
        and feed op wall times into ``engine.<op>_seconds`` histograms.
    """

    enabled = True

    def __init__(self, sinks: Sequence[Sink] = (),
                 buffer: Optional[RingBufferSink] = RingBufferSink,
                 registry: Optional[MetricsRegistry] = None,
                 engine_profiling: bool = False) -> None:
        if buffer is RingBufferSink:  # default sentinel: fresh buffer
            buffer = RingBufferSink()
        self.buffer = buffer
        self.sinks: List[Sink] = list(sinks)
        if buffer is not None:
            self.sinks.append(buffer)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(on_finish=self._finish_span)
        self.engine_profiling = engine_profiling

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def emit(self, record: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def event(self, name: str, **attrs: Any) -> None:
        self.emit({
            "kind": "event",
            "name": name,
            "time": time.time(),
            "span_id": self.tracer.current_id(),
            "attrs": attrs,
        })

    def trace(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def _finish_span(self, span: Span) -> None:
        self.emit(span.record())

    # ------------------------------------------------------------------ #
    # Metrics passthrough
    # ------------------------------------------------------------------ #
    def counter(self, name: str):
        return self.metrics.counter(name)

    def gauge(self, name: str):
        return self.metrics.gauge(name)

    def histogram(self, name: str, buckets=None):
        return self.metrics.histogram(name, buckets)

    # ------------------------------------------------------------------ #
    # Introspection and cross-process aggregation
    # ------------------------------------------------------------------ #
    def records(self) -> List[Dict[str, Any]]:
        return self.buffer.records() if self.buffer is not None else []

    def span_tree(self) -> List[Dict[str, Any]]:
        return self.tracer.span_tree()

    def export(self) -> Dict[str, Any]:
        """Everything collected so far, as one picklable/JSON-able payload.

        This is what a pool worker attaches to its
        :class:`~repro.service.jobs.JobResult` so the parent process can
        :meth:`absorb` it.
        """
        return {"records": self.records(), "metrics": self.metrics.snapshot()}

    def absorb(self, payload: Optional[Dict[str, Any]]) -> None:
        """Fold a worker's exported payload into this runtime.

        Metric snapshots merge into the registry; span records are grafted
        into the tracer's tree under the currently open span (orphan roots
        re-parented) and every record is re-emitted to this runtime's sinks,
        so a JSONL trace contains the worker's spans alongside the parent's.
        """
        if not payload:
            return
        metrics = payload.get("metrics")
        if metrics:
            self.metrics.merge(metrics)
        records = payload.get("records") or []
        updated = self.tracer.adopt(records, self.tracer.current_id())
        for record in updated:
            self.emit(record)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def metrics_record(self) -> Dict[str, Any]:
        record = {
            "kind": "metrics",
            "time": time.time(),
            "metrics": self.metrics.snapshot(),
        }
        self.emit(record)
        return record

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        """Emit the final metrics snapshot (if any) and close every sink."""
        if len(self.metrics):
            self.metrics_record()
        for sink in self.sinks:
            sink.flush()
            sink.close()


NULL_TELEMETRY = NullTelemetry()
_active: Any = NULL_TELEMETRY


def get_telemetry():
    """The process-wide active runtime (a cheap no-op unless configured)."""
    return _active


def install(telemetry) -> Any:
    """Swap the active runtime; returns the previous one (for restoration)."""
    global _active
    previous = _active
    _active = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


def configure(spec: Optional[str] = None,
              sinks: Optional[Sequence[Sink]] = None,
              engine_profiling: bool = False,
              registry: Optional[MetricsRegistry] = None):
    """Install a configured runtime process-wide and return it.

    ``spec`` uses the CLI syntax (see :func:`telemetry_from_spec`);
    ``sinks`` adds explicit sink instances on top.  ``configure("off")``
    with no sinks installs the null runtime.
    """
    parsed = telemetry_from_spec(spec) if spec is not None else []
    all_sinks = list(parsed) + list(sinks or ())
    if not all_sinks and spec in (None, "", "off") and not engine_profiling:
        return install_null()
    telemetry = Telemetry(sinks=all_sinks, registry=registry,
                          engine_profiling=engine_profiling)
    install(telemetry)
    return telemetry


def install_null():
    """Reset to the disabled runtime (does not close the previous one)."""
    install(NULL_TELEMETRY)
    return NULL_TELEMETRY


def reset(close: bool = True) -> None:
    """Tear down the active runtime and reinstall the null one."""
    previous = install(NULL_TELEMETRY)
    if close and previous is not NULL_TELEMETRY:
        previous.close()


def telemetry_from_spec(spec: Optional[str]) -> List[Sink]:
    """Parse ``--telemetry`` values into sinks.

    ``off`` / empty
        No sinks (the null runtime stays active).
    ``stderr``
        Human-readable lines on standard error.
    ``jsonl:PATH``
        Structured JSONL trace appended to ``PATH``.
    ``memory``
        No explicit sink — records are still retained in the ring buffer.

    Comma-separated combinations are allowed (``stderr,jsonl:trace.jsonl``).
    """
    if spec is None:
        return []
    sinks: List[Sink] = []
    for part in str(spec).split(","):
        part = part.strip()
        if part in ("", "off", "none", "memory"):
            continue
        if part == "stderr":
            sinks.append(StderrSink())
        elif part.startswith("jsonl:"):
            path = part[len("jsonl:"):]
            if not path:
                raise ValueError("--telemetry jsonl: requires a path "
                                 "(jsonl:trace.jsonl)")
            sinks.append(JsonlSink(path))
        else:
            raise ValueError(
                f"unknown telemetry spec {part!r}; expected "
                "off, stderr, memory or jsonl:PATH")
    return sinks


@contextmanager
def capture(engine_profiling: bool = False, capacity: int = 4096):
    """Temporarily install a buffering runtime; yields it.

    The worker-process pattern::

        with capture() as tel:
            result = execute_job(job, dataset)
        result.telemetry = tel.export()

    The previous runtime is restored on exit (the captured one is *not*
    closed — its buffer is about to be exported).
    """
    telemetry = Telemetry(buffer=RingBufferSink(capacity),
                          engine_profiling=engine_profiling)
    previous = install(telemetry)
    try:
        yield telemetry
    finally:
        install(previous)


def verbose_telemetry(verbose: bool):
    """The active runtime — or a transient stderr runtime for verbose CLIs.

    Call sites that used to ``print`` progress behind a ``verbose`` flag
    emit events instead; when nothing is configured, ``verbose=True`` still
    shows them (human-readably, on stderr) without installing anything
    process-wide.
    """
    telemetry = get_telemetry()
    if verbose and not telemetry.enabled:
        return Telemetry(sinks=[StderrSink()], buffer=None)
    return telemetry
