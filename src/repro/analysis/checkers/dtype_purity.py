"""``dtype-purity``: the float32 default path must not silently promote.

PR 2 made the engine dtype configurable with a float32 default; a stray
``np.float64`` literal, a ``dtype=float`` keyword (Python's ``float`` *is*
float64) or an ``.astype(float)`` on an engine path silently doubles the
memory traffic and breaks the "float32 unless explicitly blessed" story.

The rule covers the configured engine modules only.  Deliberate float64
promotion sites stay expressible:

* ``arena.take(..., np.float64)`` / ``space.take(..., np.float64)`` — an
  arena buffer pinned to float64 is an explicit, visible blessing (the
  attention-modulation contract of the autograd path);
* ``np.result_type(...)`` / ``np.dtype(...)`` operands — dtype *arithmetic*
  is how the engines reason about promotion, not promotion itself;
* annotations — typing, not computation;
* anything else carries a ``# repro: allow(dtype-purity): <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.base import Checker, Finding, LintConfig, ModuleSource
from repro.analysis.registry import register

#: Call names whose arguments may legitimately mention float64.
_BLESSED_CALLS = ("take", "result_type", "dtype")

#: numpy ufuncs checked for bare Python-float literal operands.
_UFUNCS = ("add", "subtract", "multiply", "divide", "true_divide", "power")


def _is_float64_attribute(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == "float64" \
        and isinstance(node.value, ast.Name) \
        and node.value.id in ("np", "numpy")


def _is_float64_expression(node: ast.AST) -> bool:
    """``np.float64``, bare ``float``, or the strings naming them."""
    if _is_float64_attribute(node):
        return True
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    return isinstance(node, ast.Constant) and node.value in ("float64", "f8")


class _Visitor(ast.NodeVisitor):
    """Walks expressions but skips annotation fields entirely."""

    def __init__(self, checker: "DtypePurityChecker",
                 module: ModuleSource) -> None:
        self.checker = checker
        self.module = module
        self.findings = []

    def _report(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            self.checker.name, self.module.path,
            node.lineno, node.col_offset, message))

    # -- annotations are typing, not computation ----------------------- #
    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)

    def _visit_function(self, node) -> None:
        for default in list(node.args.defaults) + \
                [d for d in node.args.kw_defaults if d is not None]:
            self.visit(default)
        for statement in node.body:
            self.visit(statement)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- the actual rule ------------------------------------------------ #
    def _call_name(self, node: ast.Call) -> Optional[str]:
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        if isinstance(node.func, ast.Name):
            return node.func.id
        return None

    def visit_Call(self, node: ast.Call) -> None:
        name = self._call_name(node)
        if name in _BLESSED_CALLS:
            # Arguments are blessed; still descend into nested calls so
            # e.g. take("x", np.zeros(...).astype(float), ...) is caught.
            for child in list(node.args) + [kw.value for kw in node.keywords]:
                if not _is_float64_expression(child):
                    self.visit(child)
            self.visit(node.func)
            return
        if name == "astype" and node.args \
                and _is_float64_expression(node.args[0]):
            self._report(node, "astype to float64 on an engine path; stay in "
                               "the configured engine dtype or bless the "
                               "promotion explicitly")
            # The receiver may hide further violations.
            self.visit(node.func.value)
            return
        for keyword in node.keywords:
            if keyword.arg == "dtype" \
                    and _is_float64_expression(keyword.value):
                self._report(
                    keyword.value,
                    "dtype=float64 literal on an engine path (Python float "
                    "is float64); use the engine default dtype")
        if name in _UFUNCS and isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in ("np", "numpy"):
            for operand in node.args[:2]:
                if isinstance(operand, ast.Constant) \
                        and isinstance(operand.value, float):
                    self._report(
                        operand,
                        f"bare Python float operand to np.{name} on an "
                        "engine path; wrap it in the engine dtype so the "
                        "output dtype is explicit")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _is_float64_attribute(node):
            self._report(node, "np.float64 literal on an engine path "
                               "outside a blessed promotion site")
            return
        self.generic_visit(node)


@register
class DtypePurityChecker(Checker):
    name = "dtype-purity"
    description = ("float64 literals / dtype=float / astype(float) in "
                   "engine modules outside blessed promotion sites")

    def check(self, module: ModuleSource,
              config: LintConfig) -> Iterator[Finding]:
        if module.path not in config.checkers.dtype_modules:
            return
        visitor = _Visitor(self, module)
        visitor.visit(module.tree)
        yield from visitor.findings
