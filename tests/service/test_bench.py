"""Bench report naming (trajectory slots) and the multi-key regression gate."""

import json

import pytest

from repro.service import bench


def write(path, payload):
    path.write_text(json.dumps(payload))


class TestTrajectoryNaming:
    def test_first_slot_is_01(self, tmp_path):
        assert bench.next_output_path(str(tmp_path)).endswith("BENCH_01.json")
        assert bench.latest_report_path(str(tmp_path)) is None

    def test_successive_runs_append_instead_of_overwriting(self, tmp_path):
        write(tmp_path / "BENCH_01.json", {"schema": 1})
        write(tmp_path / "BENCH_02.json", {"schema": 1})
        assert bench.next_output_path(str(tmp_path)).endswith("BENCH_03.json")
        assert bench.latest_report_path(str(tmp_path)).endswith("BENCH_02.json")

    def test_non_trajectory_files_ignored(self, tmp_path):
        write(tmp_path / "BENCH_ci.json", {"schema": 1})
        write(tmp_path / "BENCH_nn.json", {"schema": 1})
        assert bench.next_output_path(str(tmp_path)).endswith("BENCH_01.json")

    def test_write_report_defaults_to_next_slot(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench, "_ROOT", str(tmp_path))
        first = bench.write_report({"schema": 1})
        second = bench.write_report({"schema": 1})
        assert first.endswith("BENCH_01.json")
        assert second.endswith("BENCH_02.json")


def report_with(timings):
    return {"timings": {name: {"seconds": seconds}
                        for name, seconds in timings.items()}}


class TestRegressionGate:
    def test_multiple_keys_checked(self):
        reference = report_with({"train_epoch": 1.0, "evaluate": 1.0,
                                 "tensor_ops": 1.0})
        current = report_with({"train_epoch": 1.0, "evaluate": 2.0,
                               "tensor_ops": 1.0})
        messages = bench.check_regressions(current, reference=reference,
                                           keys=("train_epoch", "evaluate"))
        assert len(messages) == 1
        assert "evaluate" in messages[0]

    def test_missing_key_in_reference_is_skipped(self):
        reference = report_with({"train_epoch": 1.0})
        current = report_with({"train_epoch": 1.0, "evaluate": 99.0})
        assert bench.check_regressions(current, reference=reference) == []

    def test_normalized_gate_ignores_machine_speed(self):
        reference = report_with({"train_epoch": 1.0, "tensor_ops": 0.1})
        current = report_with({"train_epoch": 3.0, "tensor_ops": 0.3})
        assert bench.check_regressions(current, reference=reference,
                                       keys=("train_epoch",),
                                       normalize_by="tensor_ops") == []

    def test_default_keys_gate_inference(self):
        assert "evaluate" in bench.REGRESSION_KEYS
        assert "train_epoch" in bench.REGRESSION_KEYS

    def test_payloads_include_new_benchmarks(self):
        for name in ("evaluate", "detector_interpret", "sweep_batched"):
            assert name in bench.PAYLOADS
