"""Parallel job execution with result caching and per-job error capture.

:class:`JobExecutor` takes ``(DiscoveryJob, TimeSeriesDataset)`` pairs and
returns one :class:`~repro.service.jobs.JobResult` per pair, in order:

1. jobs whose cache key already has an entry are answered from disk;
2. the rest run on a ``concurrent.futures.ProcessPoolExecutor`` when
   ``max_workers > 1`` (falling back to in-process execution when the pool
   cannot be created, e.g. in sandboxes without working semaphores) or
   inline when ``max_workers == 1``;
3. every job is wrapped in its own try/except — a crashing method produces a
   ``JobResult`` with a formatted traceback instead of killing the sweep;
4. fresh successful results are written back to the cache.

With ``batch_jobs=True``, same-shape CausalFormer jobs are additionally
packed into stacked training passes (:mod:`repro.service.batched`): each
group runs as one unit — in-process or as a single pool task — with
bit-identical results to per-job dispatch.

The worker entry point :func:`execute_job` is a module-level function (so the
pool can pickle it by reference) and rebuilds the method inside the worker
from the registry, so only plain data crosses the process boundary.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

from repro.data.base import TimeSeriesDataset
from repro.service.cache import ResultCache
from repro.service.jobs import DiscoveryJob, JobResult
from repro.service.registry import build_method
from repro.telemetry import capture, get_telemetry

JobPair = Tuple[DiscoveryJob, TimeSeriesDataset]
CacheLike = Union[None, str, ResultCache]


def execute_job_with_dtype(job: DiscoveryJob, dataset: TimeSeriesDataset,
                           dtype: str,
                           collect_telemetry: bool = False,
                           engine_threads: Optional[int] = None) -> JobResult:
    """Worker entry point: adopt the submitter's engine dtype, then run.

    The engine's default dtype is thread-local state, so a fresh pool worker
    would otherwise silently fall back to float32 even when the submitting
    process opted into float64 (``set_default_dtype``/``default_dtype``).
    ``engine_threads`` likewise re-applies the submitter's engine thread
    count (:func:`repro.nn.parallel.set_engine_threads`) — worker processes
    start with a fresh (empty) engine pool, so the setting must travel with
    the job rather than rely on inherited module state.

    With ``collect_telemetry`` (requested when the submitting process has
    telemetry configured), the job runs under an in-worker buffering
    runtime and the collected spans/events/metrics ship back attached to
    the result, for the parent executor to absorb.
    """
    from repro.nn.parallel import set_engine_threads
    from repro.nn.tensor import set_default_dtype

    set_default_dtype(dtype)
    if engine_threads is not None:
        set_engine_threads(engine_threads)
    if not collect_telemetry:
        return execute_job(job, dataset)
    with capture() as telemetry:
        result = execute_job(job, dataset)
    result.telemetry = telemetry.export()
    return result


def execute_job(job: DiscoveryJob, dataset: TimeSeriesDataset) -> JobResult:
    """Run one job to completion, capturing any exception into the result."""
    telemetry = get_telemetry()
    start = time.perf_counter()
    with telemetry.trace("job", job_id=job.job_id, method=job.method,
                         dataset=job.dataset, seed=job.seed) as span:
        try:
            method = build_method(job.method, job.config, seed=job.seed)
            graph = method.discover(dataset)
            scores = None
            if dataset.graph is not None:
                from repro.graph.metrics import evaluate_discovery

                scores = evaluate_discovery(graph, dataset.graph,
                                            delay_tolerance=job.delay_tolerance)
            span.set(n_edges=graph.n_edges, ok=True)
            return JobResult(job=job, graph=graph, scores=scores,
                             duration=time.perf_counter() - start)
        except Exception:
            span.set(ok=False)
            telemetry.counter("executor.job_errors").inc()
            telemetry.event("job_error", job_id=job.job_id, method=job.method)
            return JobResult(job=job, error=traceback.format_exc(),
                             duration=time.perf_counter() - start)


def _coerce_cache(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(str(cache))


def lookup_cached(cache: Optional[ResultCache],
                  job: DiscoveryJob) -> Optional[JobResult]:
    """Answer a job from the cache, or ``None`` (shared by executor and
    the batched scheduler's lane admission)."""
    if cache is None:
        return None
    start = time.perf_counter()
    payload = cache.get(job.cache_key())
    if payload is None:
        return None
    try:
        result = JobResult.from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return None
    result.cached = True
    # ``duration`` keeps the original run's compute time (restored from
    # the cached payload); the price actually paid for this result is
    # the lookup, recorded separately.
    result.lookup_duration = time.perf_counter() - start
    return result


class JobExecutor:
    """Fan discovery jobs out over worker processes, through a result cache.

    Parameters
    ----------
    max_workers:
        Process-pool size; ``1`` (the default) executes in-process, ``None``
        uses ``os.cpu_count()``.
    cache:
        ``None`` disables caching; a path creates a
        :class:`~repro.service.cache.ResultCache` there; an existing cache
        instance is used as-is.
    batch_jobs:
        Pack compatible CausalFormer jobs into stacked training passes (see
        :mod:`repro.service.batched`).  Each group runs as one unit — one
        in-process pass, or one pool task when workers are available — and
        returns the same results as per-job dispatch, faster.
    bucket_slack:
        Relative series-length slack for shape bucketing (``0.0`` groups
        only exact same-length jobs; ``0.25`` lets lengths within 25% of a
        bucket's shortest job stack together via pad-and-mask lanes).
    max_lanes:
        Cap on a stacked group's live lane count; the rest of the bucket
        queues and refills lanes freed by compaction.  ``None`` (default)
        trains each bucket at its full width.
    """

    def __init__(self, max_workers: Optional[int] = 1,
                 cache: CacheLike = None,
                 batch_jobs: bool = False,
                 bucket_slack: float = 0.0,
                 max_lanes: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1 (or None for cpu_count)")
        if max_workers is None:
            import os

            max_workers = os.cpu_count() or 1
        if bucket_slack < 0:
            raise ValueError("bucket_slack must be non-negative")
        if max_lanes is not None and max_lanes < 1:
            raise ValueError("max_lanes must be at least 1 (or None)")
        self.max_workers = max_workers
        self.cache = _coerce_cache(cache)
        self.batch_jobs = batch_jobs
        self.bucket_slack = bucket_slack
        self.max_lanes = max_lanes

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, pairs: Sequence[JobPair]) -> List[JobResult]:
        """Execute every ``(job, dataset)`` pair; results come back in order."""
        telemetry = get_telemetry()
        pairs = list(pairs)
        results: List[Optional[JobResult]] = [None] * len(pairs)

        with telemetry.trace("executor.run", jobs=len(pairs),
                             workers=self.max_workers,
                             batch_jobs=self.batch_jobs) as span:
            pending: List[Tuple[int, JobPair]] = []
            for index, (job, dataset) in enumerate(pairs):
                cached = self._lookup(job)
                if cached is not None:
                    results[index] = cached
                    telemetry.event("job_cache_hit", job_id=job.job_id,
                                    lookup_duration=cached.lookup_duration)
                else:
                    pending.append((index, (job, dataset)))

            span.set(cache_hits=len(pairs) - len(pending))
            if pending:
                for index, result in self._dispatch(pending).items():
                    results[index] = result
                    self._store(result)

        unfilled = [pairs[index][0] for index, result in enumerate(results)
                    if result is None]
        if unfilled:
            # A hole here means _dispatch lost a job (a bug, not a job
            # failure — failures come back as error-carrying results).
            # Returning a silently shortened list would desynchronise every
            # caller that zips results against its submissions.
            raise RuntimeError(
                "executor dispatch returned no result for: "
                + ", ".join(job.job_id for job in unfilled))
        return [result for result in results if result is not None]

    def run_one(self, job: DiscoveryJob, dataset: TimeSeriesDataset) -> JobResult:
        return self.run([(job, dataset)])[0]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _dispatch(self, pending: List[Tuple[int, JobPair]]) -> dict:
        """Run the uncached jobs; returns ``{original index: result}``.

        Work is split into *units*: stacked groups of same-shape jobs (only
        when ``batch_jobs`` is on) plus per-job leftovers.  Every unit runs
        either on the process pool (one submit per unit, each wrapped so a
        dying worker degrades to per-job error results) or inline — the
        inline path also serves as the fallback when the pool cannot be
        created (e.g. sandboxes without working semaphores).
        """
        from repro.service.batched import (execute_batched_jobs,
                                           execute_batched_jobs_with_dtype,
                                           group_batchable)

        telemetry = get_telemetry()
        if self.batch_jobs:
            # The cache travels into grouping too: a job cached between the
            # run()-level lookup and here (another process finishing it)
            # must not anchor a bucket.
            groups, singles = group_batchable(pending,
                                              slack=self.bucket_slack,
                                              cache=self.cache)
        else:
            groups, singles = [], list(pending)
        results: dict = {}
        use_pool = self.max_workers > 1 and len(groups) + len(singles) > 1
        telemetry.event("executor.dispatch", pending=len(pending),
                        groups=len(groups), singles=len(singles),
                        pool=use_pool, workers=self.max_workers)
        if use_pool:
            from repro.nn.parallel import get_engine_threads
            from repro.nn.tensor import get_default_dtype

            dtype = str(get_default_dtype())
            collect = telemetry.enabled
            engine_threads = get_engine_threads()
            cache_dir = self.cache.directory if self.cache is not None else None
            try:
                with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                    group_futures = [
                        (members,
                         pool.submit(execute_batched_jobs_with_dtype,
                                     [pair for _idx, pair in members], dtype,
                                     collect, engine_threads,
                                     self.max_lanes, cache_dir))
                        for members in groups]
                    single_futures = [
                        (index, job,
                         pool.submit(execute_job_with_dtype, job, dataset,
                                     dtype, collect, engine_threads))
                        for index, (job, dataset) in singles]
                    for members, future in group_futures:
                        try:
                            fresh = future.result()
                        except Exception:
                            # The worker died (or the result failed to
                            # unpickle); degrade to per-job errors instead
                            # of aborting the sweep.
                            error = traceback.format_exc()
                            fresh = [JobResult(job=job, error=error)
                                     for _idx, (job, _ds) in members]
                        for (index, _pair), result in zip(members, fresh):
                            results[index] = self._absorb(result, telemetry)
                    for index, job, future in single_futures:
                        try:
                            results[index] = self._absorb(future.result(),
                                                          telemetry)
                        except Exception:
                            results[index] = JobResult(
                                job=job, error=traceback.format_exc())
                return results
            except (OSError, PermissionError):
                # No usable multiprocessing primitives — run inline instead.
                telemetry.counter("executor.pool_fallbacks").inc()
                telemetry.event("pool_fallback", workers=self.max_workers,
                                pending=len(pending))
                results.clear()
        for members in groups:
            fresh = execute_batched_jobs([pair for _idx, pair in members],
                                         max_lanes=self.max_lanes,
                                         cache=self.cache)
            for (index, _pair), result in zip(members, fresh):
                results[index] = result
        for index, (job, dataset) in singles:
            results[index] = execute_job(job, dataset)
        return results

    @staticmethod
    def _absorb(result: JobResult, telemetry) -> JobResult:
        """Fold worker-collected telemetry into this process, then drop it."""
        if result.telemetry is not None:
            telemetry.absorb(result.telemetry)
            result.telemetry = None
        return result

    def _lookup(self, job: DiscoveryJob) -> Optional[JobResult]:
        return lookup_cached(self.cache, job)

    def _store(self, result: JobResult) -> None:
        # ``cached`` results came *from* the cache (possibly via a stacked
        # group's admission-time lookup) — don't rewrite them.
        if self.cache is None or not result.ok or result.cached:
            return
        self.cache.put(result.job.cache_key(), result.to_dict())

    def __repr__(self) -> str:
        return (f"JobExecutor(max_workers={self.max_workers}, "
                f"cache={self.cache!r}, batch_jobs={self.batch_jobs}, "
                f"bucket_slack={self.bucket_slack}, "
                f"max_lanes={self.max_lanes})")
