"""Machine-checkable markers for the engine invariants.

The performance story of the fused engines rests on contracts that used to
live only in docstrings: steady-state code must not allocate large
temporaries (it draws from a :class:`~repro.nn.inference.ScratchArena`),
must not silently promote the float32 default path to float64, and must
declare every buffer a ``parallel_for`` body writes.  The markers in this
module make the first of those contracts *visible to static analysis*:
:mod:`repro.analysis` walks the AST and enforces the allocation discipline
inside every function carrying :func:`hot_path`.

The markers are deliberately free at runtime — :func:`hot_path` tags the
function object and returns it unchanged, so decorating a hot function adds
zero per-call overhead.
"""

from __future__ import annotations

__all__ = ["hot_path", "is_hot_path"]

#: Attribute set on functions marked as steady-state hot paths.
HOT_PATH_ATTRIBUTE = "__repro_hot_path__"


def hot_path(function):
    """Mark ``function`` as a steady-state hot path (allocation-free zone).

    A hot-path function runs once per training step / evaluation call in
    the fused engines; every large temporary it touches must come from a
    scratch arena or an ``out=`` buffer.  The ``hot-path-alloc`` checker in
    :mod:`repro.analysis` statically flags allocating numpy calls
    (``np.zeros``, ``np.empty``, ``np.concatenate``, ``.copy()``,
    ``.astype(...)`` without ``copy=False``, ...) inside marked functions.

    The decorator only tags the function object — no wrapper, no per-call
    cost::

        @hot_path
        def _forward(self, x, stage):
            ...
    """
    setattr(function, HOT_PATH_ATTRIBUTE, True)
    return function


def is_hot_path(function) -> bool:
    """Whether ``function`` was marked with :func:`hot_path`."""
    return bool(getattr(function, HOT_PATH_ATTRIBUTE, False))
