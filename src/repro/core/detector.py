"""Decomposition-based causality detector (paper Sec. 4.2, Fig. 6).

Given a trained causality-aware transformer, the detector:

1. runs the model on a batch of windows, recording the gradients of the
   per-head attention matrices and of the causal convolution kernel with
   respect to the summed prediction of the target series (Fig. 6b);
2. runs regression relevance propagation from a one-hot output relevance to
   the attention matrices and kernel (Fig. 6a);
3. combines them with gradient modulation, ``S = E_h[|∇f| ⊙ R]⁺`` (Eq. 19);
4. clusters the attention causal scores with k-means and keeps the top
   clusters as causes, reading each cause's delay from the kernel causal
   scores (Sec. 4.2.3, Eq. 20).

The constructor flags reproduce the paper's Table 3 ablations:
``use_interpretation=False`` reads the raw attention/kernel weights instead
of interpreting the model; ``use_relevance=False`` keeps only gradients;
``use_gradient=False`` keeps only relevance; ``use_bias=False`` removes the
bias term from the RRP denominators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.clustering import select_top_scores
from repro.core.config import CausalFormerConfig
from repro.core.relevance import (RegressionRelevancePropagation,
                                  StackedRelevancePropagation)
from repro.core.transformer import CausalityAwareTransformer
from repro.graph.causal_graph import TemporalCausalGraph
from repro.nn.inference import (InferenceEngine, InterpretationForward,
                                StackedInferenceEngine)


@dataclass
class CausalScores:
    """Causal scores for every (target, source) pair.

    ``attention[i, j]`` scores the relation "series ``j`` causes series
    ``i``"; ``kernel[i, j, τ]`` scores kernel position ``τ`` of that relation
    and is used only to read off the causal delay.
    """

    attention: np.ndarray   # (N, N): [target, source]
    kernel: np.ndarray      # (N, N, T): [target, source, kernel position]

    @property
    def n_series(self) -> int:
        return self.attention.shape[0]

    @property
    def window(self) -> int:
        return self.kernel.shape[-1]


class DecompositionCausalityDetector:
    """Interpret a trained causality-aware transformer into causal scores."""

    def __init__(self, model: CausalityAwareTransformer,
                 config: Optional[CausalFormerConfig] = None,
                 use_interpretation: bool = True,
                 use_relevance: bool = True,
                 use_gradient: bool = True,
                 use_bias: bool = True) -> None:
        self._source_model = model
        self.model = self._interpretation_model(model)
        self.config = config or model.config
        self.use_interpretation = use_interpretation
        self.use_relevance = use_relevance
        self.use_gradient = use_gradient
        self.use_bias = use_bias
        if not use_relevance and not use_gradient:
            raise ValueError("at least one of relevance or gradients must be used")
        self._rrp = RegressionRelevancePropagation(
            self.model, use_bias=use_bias, epsilon=self.config.relevance_epsilon)
        # Fused no-autograd engine over the interpretation model; its scratch
        # arena is reused across every scoring call.
        self._engine = InferenceEngine(self.model)

    #: soft bound on the largest per-chunk intermediate (elements) when the
    #: per-target gradient/relevance pass is vectorised over target series.
    TARGET_CHUNK_ELEMENTS = 4_000_000

    @staticmethod
    def _interpretation_model(model: CausalityAwareTransformer
                              ) -> CausalityAwareTransformer:
        """A float64 view of the trained model for interpretation.

        Training runs in float32 (the engine default), but the detector's
        gradient-modulated relevance scores divide by stabilised activations
        (Eq. 15–18) — float32 noise there measurably shifts Table 2/3
        scores, and interpretation cost is bounded by
        ``max_detector_windows``, so precision is cheap here.  The trained
        weights are copied into a float64 twin; a model that is already
        float64 is used as-is.
        """
        parameter = next(iter(model.parameters()))
        if parameter.data.dtype == np.float64:
            return model
        from repro.nn.tensor import default_dtype

        with default_dtype(np.float64):
            twin = CausalityAwareTransformer(model.config)
        twin.load_state_dict(model.state_dict())
        return twin

    def _sync_interpretation_model(self) -> None:
        """Copy the source model's current weights into the float64 twin.

        The twin must track the live model — the detector may be constructed
        before (or between) training runs, so weights are re-synced on every
        scoring call rather than frozen at construction time.
        """
        if self.model is self._source_model:
            return
        for twin_param, source_param in zip(self.model.parameters(),
                                            self._source_model.parameters()):
            twin_param.data = source_param.data.astype(twin_param.data.dtype)

    # ------------------------------------------------------------------ #
    # Causal scores
    # ------------------------------------------------------------------ #
    def compute_scores(self, windows: np.ndarray) -> CausalScores:
        """Causal scores of every potential relation from a batch of windows.

        The interpretation runs entirely on the fused no-autograd engine:
        one shared cache forward for every target series, a hand-derived
        multi-target backward for the Fig. 6b gradients, and a vectorised
        relevance propagation — bit-identical to the historical
        one-autograd-pass-per-target implementation, several times faster.
        """
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 2:
            windows = windows[None, :, :]
        n_series = windows.shape[1]
        window = windows.shape[2]
        if n_series != self.config.n_series or window != self.config.window:
            raise ValueError(
                f"windows of shape {windows.shape[1:]} do not match the model "
                f"({self.config.n_series} series, window {self.config.window})"
            )
        self._sync_interpretation_model()
        forward = self._engine.interpretation_forward(windows)
        if not self.use_interpretation:
            return self._raw_weight_scores(forward)

        cache = forward.cache
        prepared = self._rrp.prepare(cache) if self.use_relevance else None
        attention_scores = np.zeros((n_series, n_series))
        kernel_scores = np.zeros((n_series, n_series, window))
        batch = windows.shape[0]
        per_target = max(batch * n_series * n_series * window, 1)
        chunk_size = max(1, self.TARGET_CHUNK_ELEMENTS // per_target)
        for start in range(0, n_series, chunk_size):
            targets = list(range(start, min(start + chunk_size, n_series)))
            if self.use_gradient:
                attention_grads, kernel_grads = \
                    self._engine.interpretation_gradients(forward, targets)
            else:
                attention_grads = kernel_grads = None
            if self.use_relevance:
                relevances = self._rrp.propagate_targets(
                    cache, targets, prepared=prepared, include_values=False)
            else:
                relevances = None
            for index, target in enumerate(targets):
                row, kernel_slab = self._combine_target(
                    cache, target,
                    None if attention_grads is None else attention_grads[index],
                    None if kernel_grads is None else kernel_grads[index],
                    None if relevances is None else relevances[index])
                attention_scores[target] = row
                kernel_scores[target] = kernel_slab
        return CausalScores(attention=attention_scores, kernel=kernel_scores)

    def _raw_weight_scores(self, forward: InterpretationForward) -> CausalScores:
        """The "w/o interpretation" ablation: read model weights directly."""
        cache = forward.cache
        # Mean attention over heads and batch; attention[b, i, j] already has
        # target as the row index, matching CausalScores' convention.
        attention = np.mean(
            [head.attention_data for head in cache.head_caches], axis=0).mean(axis=0)
        kernel = np.abs(self.model.convolution.effective_kernel().data)
        # kernel[source, target, τ] → scores[target, source, τ]
        kernel_scores = np.transpose(kernel, (1, 0, 2))
        return CausalScores(attention=attention, kernel=kernel_scores)

    def _combine_target(self, cache, target: int,
                        attention_gradient_stack: Optional[np.ndarray],
                        kernel_gradient: Optional[np.ndarray],
                        relevance) -> Tuple[np.ndarray, np.ndarray]:
        """Gradient modulation ``S = E_h[|∇f| ⊙ R]⁺`` (Eq. 19) for one target."""
        n_series = cache.output.shape[1]
        window = cache.output.shape[2]
        if kernel_gradient is not None:
            kernel_gradient = np.broadcast_to(np.abs(kernel_gradient),
                                              (n_series, n_series, window))

        attention_accumulator = np.zeros((n_series, n_series))
        kernel_accumulator = np.zeros((n_series, n_series, window))
        n_heads = len(cache.head_caches)
        for head_index, head_cache in enumerate(cache.head_caches):
            if self.use_relevance:
                relevance_attention = relevance.heads[head_index].attention
                relevance_kernel = relevance.heads[head_index].kernel
            else:
                relevance_attention = np.ones_like(head_cache.attention_data)
                relevance_kernel = np.ones((n_series, n_series, window))

            if self.use_gradient:
                attention_gradient = np.abs(attention_gradient_stack[head_index])
                attention_term = attention_gradient * relevance_attention
                kernel_term = kernel_gradient * relevance_kernel
            else:
                attention_term = relevance_attention
                kernel_term = relevance_kernel

            attention_accumulator += attention_term.mean(axis=0)
            kernel_accumulator += kernel_term
        attention_scores = np.maximum(attention_accumulator / n_heads, 0.0)
        kernel_scores = np.maximum(kernel_accumulator / n_heads, 0.0)

        # The paper selects S(A)[i]_{i,:} (causes of the target) and
        # S(K)[i]_{:,i,:} (kernel scores of sources for the target).
        row = attention_scores[target, :]
        kernel_slab = kernel_scores[:, target, :]
        return row, kernel_slab

    # ------------------------------------------------------------------ #
    # Causal graph construction (Sec. 4.2.3)
    # ------------------------------------------------------------------ #
    def build_graph(self, scores: CausalScores,
                    series_names: Optional[list] = None) -> TemporalCausalGraph:
        """Cluster the causal scores and assemble the temporal causal graph."""
        n_series = scores.n_series
        window = scores.window
        rng = np.random.default_rng(self.config.seed)
        graph = TemporalCausalGraph(n_series, names=series_names)
        for target in range(n_series):
            row = scores.attention[target]
            keep = select_top_scores(row, self.config.n_clusters,
                                     self.config.top_clusters, rng=rng)
            for source in np.flatnonzero(keep):
                source = int(source)
                kernel_profile = scores.kernel[target, source]
                position = int(np.argmax(kernel_profile))
                delay = (window - 1) - position
                if source == target:
                    # The self-convolution is right-shifted by one slot, so
                    # kernel position T-1 corresponds to a delay of 1.
                    delay += 1
                    delay = max(delay, 1)
                else:
                    delay = max(delay, 0)
                graph.add_edge(source, target, delay)
        return graph

    def detect(self, windows: np.ndarray,
               series_names: Optional[list] = None
               ) -> Tuple[TemporalCausalGraph, CausalScores]:
        """Convenience: compute scores and build the causal graph."""
        scores = self.compute_scores(windows)
        graph = self.build_graph(scores, series_names=series_names)
        return graph, scores


def compute_scores_group(detectors: Sequence[DecompositionCausalityDetector],
                         windows_list: Sequence[np.ndarray],
                         arena=None) -> List[CausalScores]:
    """Causal scores for a whole group of same-architecture detectors at once.

    The stacked analogue of :meth:`DecompositionCausalityDetector
    .compute_scores` for a batched sweep group: one stacked cache forward
    shared by every model *and* target, one stacked multi-target backward,
    and one model-axis relevance propagation — instead of one full
    interpretation per job.  Every returned :class:`CausalScores` is
    **bit-identical** to calling ``detectors[m].compute_scores
    (windows_list[m])`` alone, across all Table 3 ablations (the detectors
    must share their ablation flags and configuration; the window sets must
    share one shape).

    ``arena`` optionally hands the stacked engine an existing
    :class:`~repro.nn.inference.ScratchArena` — the batched sweep passes its
    trainer's engine arena so training, validation and interpretation share
    one buffer pool.  Safe because the phases run sequentially and every
    call site fully overwrites the buffers it reads before reading them
    (arena buffers are keyed by name and shape; a same-key take with a new
    dtype replaces the buffer, so interleaving phases mid-call is not
    supported).
    """
    detectors = list(detectors)
    if not detectors:
        raise ValueError("need at least one detector")
    if len(detectors) != len(windows_list):
        raise ValueError("one window set per detector required")
    first = detectors[0]
    flags = (first.use_interpretation, first.use_relevance,
             first.use_gradient, first.use_bias)
    for detector in detectors[1:]:
        if (detector.use_interpretation, detector.use_relevance,
                detector.use_gradient, detector.use_bias) != flags:
            raise ValueError(
                "grouped interpretation requires identical detector flags")
        # The stabiliser is read from the first detector only; a silent
        # mismatch would compute every other detector's relevance with the
        # wrong epsilon (non-bit-identical to its own compute_scores).
        if detector.config.relevance_epsilon \
                != first.config.relevance_epsilon:
            raise ValueError(
                "grouped interpretation requires one relevance_epsilon")

    prepared_windows: List[np.ndarray] = []
    for detector, windows in zip(detectors, windows_list):
        windows = np.asarray(windows, dtype=float)
        if windows.ndim == 2:
            windows = windows[None, :, :]
        n_series, window = windows.shape[1], windows.shape[2]
        if n_series != detector.config.n_series \
                or window != detector.config.window:
            raise ValueError(
                f"windows of shape {windows.shape[1:]} do not match the model "
                f"({detector.config.n_series} series, window "
                f"{detector.config.window})")
        prepared_windows.append(windows)
    if len({windows.shape for windows in prepared_windows}) != 1:
        raise ValueError(
            "grouped interpretation requires same-shape window sets")

    for detector in detectors:
        detector._sync_interpretation_model()
    models = [detector.model for detector in detectors]
    engine = StackedInferenceEngine(models, arena=arena)
    forward = engine.interpretation_forward(prepared_windows)
    if not first.use_interpretation:
        return [detector._raw_weight_scores(model_forward)
                for detector, model_forward in zip(detectors,
                                                   forward.forwards)]

    m = len(detectors)
    batch, n_series, window = prepared_windows[0].shape
    propagation = StackedRelevancePropagation(
        models, use_bias=first.use_bias,
        epsilon=first.config.relevance_epsilon) if first.use_relevance \
        else None
    prepared = propagation.prepare(forward) if propagation is not None \
        else None
    attention_scores = np.zeros((m, n_series, n_series))
    kernel_scores = np.zeros((m, n_series, n_series, window))
    per_target = max(m * batch * n_series * n_series * window, 1)
    chunk_size = max(1,
                     DecompositionCausalityDetector.TARGET_CHUNK_ELEMENTS
                     // per_target)
    for start in range(0, n_series, chunk_size):
        targets = list(range(start, min(start + chunk_size, n_series)))
        if first.use_gradient:
            attention_grads, kernel_grads = \
                engine.interpretation_gradients(forward, targets)
        else:
            attention_grads = kernel_grads = None
        if first.use_relevance:
            relevances = propagation.propagate_targets(
                forward, targets, prepared=prepared, include_values=False)
        else:
            relevances = None
        for row, detector in enumerate(detectors):
            for index, target in enumerate(targets):
                score_row, kernel_slab = detector._combine_target(
                    forward.forwards[row].cache, target,
                    None if attention_grads is None
                    else attention_grads[row, index],
                    None if kernel_grads is None
                    else kernel_grads[row, index],
                    None if relevances is None else relevances[row][index])
                attention_scores[row, target] = score_row
                kernel_scores[row, target] = kernel_slab
    return [CausalScores(attention=attention_scores[row],
                         kernel=kernel_scores[row]) for row in range(m)]
