"""Optimisers: SGD (with momentum) and Adam, plus gradient clipping.

The paper optimises the causality-aware transformer with Adam and an early
stop strategy; the training loop in :mod:`repro.core.training` uses
:class:`Adam` from this module.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding a list of parameters to update."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(parameter)] = velocity
                grad = velocity
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias_correction1 = 1.0 - self.beta1 ** t
        bias_correction2 = 1.0 - self.beta2 ** t
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            key = id(parameter)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(parameter.data)
                v = np.zeros_like(parameter.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * (grad * grad)
            self._m[key] = m
            self._v[key] = v
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm_(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm, which the trainer logs for diagnostics.
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / (total + 1e-12)
        for parameter in parameters:
            parameter.grad = parameter.grad * scale
    return total
