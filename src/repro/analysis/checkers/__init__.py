"""Built-in checkers — importing this package registers all of them.

Each module defines one rule:

``hot-path-alloc``
    No allocating numpy calls inside ``@hot_path`` functions.
``dtype-purity``
    No silent float64 promotion in engine modules.
``parallel-outputs``
    Every buffer a ``parallel_for`` body writes is declared in ``outputs=``.
``telemetry-guard``
    Hot-module telemetry emissions stay behind ``.enabled`` guards.
``no-print``
    No ``print()`` outside the CLI allowlist.
"""

from repro.analysis.checkers import (dtype_purity, hot_path_alloc,  # noqa: F401
                                     no_print, parallel_outputs,
                                     telemetry_guard)
