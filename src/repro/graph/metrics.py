"""Evaluation metrics for temporal causal discovery.

The paper evaluates with precision, recall and F1 on the recovered edge set
(Table 1, Table 3, Fig. 8) and with the precision of delay (PoD, Table 2):
among the correctly discovered causal relations, the fraction whose estimated
delay matches the ground truth (within an optional tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.causal_graph import TemporalCausalGraph


@dataclass
class ConfusionCounts:
    """Edge-level confusion counts between a predicted and a true graph."""

    true_positive: int
    false_positive: int
    false_negative: int
    true_negative: int

    @property
    def total(self) -> int:
        return self.true_positive + self.false_positive + self.false_negative + self.true_negative


@dataclass
class DiscoveryScores:
    """Scores for one causal-discovery run."""

    precision: float
    recall: float
    f1: float
    precision_of_delay: Optional[float] = None
    counts: Optional[ConfusionCounts] = None

    def as_dict(self) -> Dict[str, float]:
        payload = {"precision": self.precision, "recall": self.recall, "f1": self.f1}
        if self.precision_of_delay is not None:
            payload["precision_of_delay"] = self.precision_of_delay
        return payload


def _validate_pair(predicted: TemporalCausalGraph, truth: TemporalCausalGraph) -> None:
    if predicted.n_series != truth.n_series:
        raise ValueError(
            f"graphs compare different numbers of series: {predicted.n_series} vs {truth.n_series}"
        )


def confusion_counts(predicted: TemporalCausalGraph, truth: TemporalCausalGraph,
                     include_self_loops: bool = True) -> ConfusionCounts:
    """Edge-level confusion counts over all ordered series pairs."""
    _validate_pair(predicted, truth)
    n = truth.n_series
    predicted_set = predicted.edge_set(include_self_loops)
    truth_set = truth.edge_set(include_self_loops)
    pairs = [
        (i, j)
        for i in range(n)
        for j in range(n)
        if include_self_loops or i != j
    ]
    tp = sum(1 for pair in pairs if pair in predicted_set and pair in truth_set)
    fp = sum(1 for pair in pairs if pair in predicted_set and pair not in truth_set)
    fn = sum(1 for pair in pairs if pair not in predicted_set and pair in truth_set)
    tn = len(pairs) - tp - fp - fn
    return ConfusionCounts(tp, fp, fn, tn)


def precision_recall_f1(predicted: TemporalCausalGraph, truth: TemporalCausalGraph,
                        include_self_loops: bool = True) -> Tuple[float, float, float]:
    """Precision, recall and F1 of the predicted edge set."""
    counts = confusion_counts(predicted, truth, include_self_loops)
    tp, fp, fn = counts.true_positive, counts.false_positive, counts.false_negative
    precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 0.0
    if precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def precision_of_delay(predicted: TemporalCausalGraph, truth: TemporalCausalGraph,
                       tolerance: int = 0) -> Optional[float]:
    """Fraction of correctly-discovered edges whose delay is also correct.

    Returns ``None`` when no true-positive edges exist (PoD is undefined
    then, matching the paper's practice of not reporting it).
    """
    _validate_pair(predicted, truth)
    correct = 0
    total = 0
    for edge in predicted.edges:
        true_delay = truth.delay(edge.source, edge.target)
        if true_delay is None:
            continue
        total += 1
        if abs(edge.delay - true_delay) <= tolerance:
            correct += 1
    if total == 0:
        return None
    return correct / total


def structural_hamming_distance(predicted: TemporalCausalGraph,
                                truth: TemporalCausalGraph) -> int:
    """Number of edge insertions/deletions/reversals to reach the truth."""
    _validate_pair(predicted, truth)
    predicted_set = predicted.edge_set()
    truth_set = truth.edge_set()
    missing = truth_set - predicted_set
    extra = predicted_set - truth_set
    # A reversal (predicted j->i where truth has i->j and not j->i) counts once.
    reversals = {
        (i, j) for (i, j) in extra
        if (j, i) in missing
    }
    distance = len(missing) + len(extra) - len(reversals)
    return distance


def evaluate_discovery(predicted: TemporalCausalGraph, truth: TemporalCausalGraph,
                       include_self_loops: bool = True,
                       delay_tolerance: int = 0) -> DiscoveryScores:
    """All edge metrics for one run, bundled."""
    precision, recall, f1 = precision_recall_f1(predicted, truth, include_self_loops)
    pod = precision_of_delay(predicted, truth, tolerance=delay_tolerance)
    counts = confusion_counts(predicted, truth, include_self_loops)
    return DiscoveryScores(precision=precision, recall=recall, f1=f1,
                           precision_of_delay=pod, counts=counts)


@dataclass
class AggregateScore:
    """Mean ± standard deviation of a metric over several runs."""

    mean: float
    std: float
    n_runs: int
    values: List[float] = field(default_factory=list)

    def __str__(self) -> str:
        return f"{self.mean:.2f}±{self.std:.2f}"


def aggregate_scores(scores: Sequence[DiscoveryScores], metric: str = "f1") -> AggregateScore:
    """Aggregate one metric (``f1``/``precision``/``recall``/``precision_of_delay``)."""
    values = []
    for score in scores:
        value = getattr(score, metric)
        if value is None:
            continue
        values.append(float(value))
    if not values:
        return AggregateScore(mean=float("nan"), std=float("nan"), n_runs=0, values=[])
    array = np.asarray(values)
    return AggregateScore(mean=float(array.mean()), std=float(array.std()),
                          n_runs=len(values), values=values)


def edge_classification(predicted: TemporalCausalGraph, truth: TemporalCausalGraph
                        ) -> Dict[str, List[Tuple[int, int]]]:
    """Classify every predicted/true edge as TP / FP / FN (for Fig. 8 plots)."""
    _validate_pair(predicted, truth)
    predicted_set = predicted.edge_set()
    truth_set = truth.edge_set()
    return {
        "true_positive": sorted(predicted_set & truth_set),
        "false_positive": sorted(predicted_set - truth_set),
        "false_negative": sorted(truth_set - predicted_set),
    }
