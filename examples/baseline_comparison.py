#!/usr/bin/env python3
"""Reproduce a slice of the paper's Table 1 from the command line.

Runs every method (cMLP, cLSTM, TCDF, DVGNN-lite, CUTS-lite, CausalFormer)
on a chosen dataset for several seeds and prints the mean ± std F1 table —
the same harness the benchmark suite uses for the full Table 1.

Run with::

    python examples/baseline_comparison.py --dataset fork --seeds 0 1
    python examples/baseline_comparison.py --dataset lorenz96
"""

import argparse

from repro.experiments import run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="fork",
                        choices=["diamond", "mediator", "v_structure", "fork",
                                 "lorenz96", "fmri"])
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1])
    parser.add_argument("--full", action="store_true",
                        help="use full-length series and full training budgets")
    arguments = parser.parse_args()

    table = run_table1(seeds=tuple(arguments.seeds), fast=not arguments.full,
                       datasets=(arguments.dataset,), verbose=True)
    print()
    print(table.render())
    best = table.best_column(arguments.dataset)
    print(f"\nbest method on {arguments.dataset}: {best}")


if __name__ == "__main__":
    main()
