"""Feed-forward and output layers of the causality-aware transformer.

The feed-forward layer (paper Sec. 4.1.4, Eq. 8) is two linear layers with a
leaky ReLU in between, applied along the time dimension of the attention
output; the output layer (Sec. 4.1.5) is a final fully connected layer that
produces the prediction ``X̃ ∈ R^{N×T}``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class FeedForward(Module):
    """``Linear(T → d_FFN) → leakyReLU → Linear(d_FFN → T)``."""

    def __init__(self, window: int, d_ffn: int, negative_slope: float = 0.01,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.window = window
        self.d_ffn = d_ffn
        self.negative_slope = negative_slope
        rng = rng or init.default_rng()
        self.w1 = Parameter(init.he_normal((window, d_ffn), rng))
        self.b1 = Parameter(init.zeros((d_ffn,)))
        self.w2 = Parameter(init.he_normal((d_ffn, window), rng))
        self.b2 = Parameter(init.zeros((window,)))

    def forward(self, x: Tensor) -> Tensor:
        hidden = F.linear(x, self.w1, self.b1)
        activated = F.leaky_relu(hidden, self.negative_slope)
        return F.linear(activated, self.w2, self.b2)


class OutputLayer(Module):
    """Final fully connected layer producing the ``(batch, N, T)`` prediction."""

    def __init__(self, window: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.window = window
        rng = rng or init.default_rng()
        self.weight = Parameter(init.he_normal((window, window), rng))
        self.bias = Parameter(init.zeros((window,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)
