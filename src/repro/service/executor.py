"""Parallel job execution with result caching and per-job error capture.

:class:`JobExecutor` takes ``(DiscoveryJob, TimeSeriesDataset)`` pairs and
returns one :class:`~repro.service.jobs.JobResult` per pair, in order:

1. jobs whose cache key already has an entry are answered from disk;
2. the rest run on a ``concurrent.futures.ProcessPoolExecutor`` when
   ``max_workers > 1`` (falling back to in-process execution when the pool
   cannot be created, e.g. in sandboxes without working semaphores) or
   inline when ``max_workers == 1``;
3. every job is wrapped in its own try/except — a crashing method produces a
   ``JobResult`` with a formatted traceback instead of killing the sweep;
4. fresh successful results are written back to the cache.

With ``batch_jobs=True``, same-shape CausalFormer jobs are additionally
packed into stacked training passes (:mod:`repro.service.batched`): each
group runs as one unit — in-process or as a single pool task — with
bit-identical results to per-job dispatch.

Fault tolerance: pooled dispatch survives dying workers and wall-clock
overruns.  A worker death breaks the whole ``ProcessPoolExecutor``
(``BrokenProcessPool``); the executor hard-kills what is left of the pool,
respawns it and resubmits — the failing unit with a counted attempt and
exponential backoff (deterministic jitter, so retry schedules reproduce),
abandoned innocent units for free.  A per-job ``job_timeout`` is enforced
the same way: the overrunning worker is killed, the pool respawned, the
unit retried.  A job that keeps failing exhausts its attempts and comes
back as a *dead-letter* result (``JobResult.dead_letter``) carrying the
last error, so one poisonous job can never wedge a sweep.  Jobs whose
method supports it can additionally checkpoint their fit state
(:mod:`repro.service.checkpoint`) keyed by cache key, so a retried job
resumes training where the killed attempt left off — bit-identically.

The worker entry point :func:`execute_job` is a module-level function (so the
pool can pickle it by reference) and rebuilds the method inside the worker
from the registry, so only plain data crosses the process boundary.
:mod:`repro.faults` seams: ``dispatch`` counts pool submissions in the
parent (a due ``kill`` travels to the worker as an explicit directive and
exits it hard), ``job`` counts :func:`execute_job` calls (``delay`` /
``raise``).
"""

from __future__ import annotations

import hashlib
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence, Tuple, Union

from repro import faults
from repro.data.base import TimeSeriesDataset
from repro.service.cache import ResultCache
from repro.service.jobs import DiscoveryJob, JobResult
from repro.service.registry import build_method
from repro.telemetry import capture, get_telemetry

JobPair = Tuple[DiscoveryJob, TimeSeriesDataset]
CacheLike = Union[None, str, ResultCache]
#: checkpoint plumbing crosses the process boundary as plain data:
#: ``(checkpoint directory, save cadence)``
CheckpointSpec = Optional[Tuple[str, int]]


def _apply_directives(directives) -> None:
    """Honour parent-side fault directives inside a worker entry point.

    The ``dispatch`` site counts in the *parent* (worker processes each
    inherit their own counter copies), so a due ``kill`` travels with the
    submission and the worker executes it here: a hard ``os._exit`` —
    exactly what a segfault, OOM kill or machine loss looks like to the
    ``ProcessPoolExecutor``.
    """
    if directives and directives.get("kill"):
        import os

        os._exit(faults.KILL_EXIT_CODE)


def execute_job_with_dtype(job: DiscoveryJob, dataset: TimeSeriesDataset,
                           dtype: str,
                           collect_telemetry: bool = False,
                           engine_threads: Optional[int] = None,
                           checkpoint: CheckpointSpec = None,
                           directives: Optional[dict] = None) -> JobResult:
    """Worker entry point: adopt the submitter's engine dtype, then run.

    The engine's default dtype is thread-local state, so a fresh pool worker
    would otherwise silently fall back to float32 even when the submitting
    process opted into float64 (``set_default_dtype``/``default_dtype``).
    ``engine_threads`` likewise re-applies the submitter's engine thread
    count (:func:`repro.nn.parallel.set_engine_threads`) — worker processes
    start with a fresh (empty) engine pool, so the setting must travel with
    the job rather than rely on inherited module state.

    With ``collect_telemetry`` (requested when the submitting process has
    telemetry configured), the job runs under an in-worker buffering
    runtime and the collected spans/events/metrics ship back attached to
    the result, for the parent executor to absorb.
    """
    from repro.nn.parallel import set_engine_threads
    from repro.nn.tensor import set_default_dtype

    _apply_directives(directives)
    set_default_dtype(dtype)
    if engine_threads is not None:
        set_engine_threads(engine_threads)
    if not collect_telemetry:
        return execute_job(job, dataset, checkpoint=checkpoint)
    with capture() as telemetry:
        result = execute_job(job, dataset, checkpoint=checkpoint)
    result.telemetry = telemetry.export()
    return result


def _job_checkpointer(job: DiscoveryJob, method,
                      checkpoint: CheckpointSpec):
    """A :class:`FitCheckpointer` for this job, or ``None``.

    Keyed by the job's cache key so a retried job (same spec, any process)
    finds the snapshot its killed predecessor left behind.  Only methods
    declaring ``supports_checkpoint`` are offered one — baselines take no
    ``checkpoint`` argument.
    """
    if checkpoint is None or not getattr(method, "supports_checkpoint",
                                         False):
        return None
    from repro.service.checkpoint import FitCheckpointer

    directory, every = checkpoint
    return FitCheckpointer(directory, key=job.cache_key(), every=every)


def execute_job(job: DiscoveryJob, dataset: TimeSeriesDataset,
                checkpoint: CheckpointSpec = None) -> JobResult:
    """Run one job to completion, capturing any exception into the result."""
    telemetry = get_telemetry()
    start = time.perf_counter()
    with telemetry.trace("job", job_id=job.job_id, method=job.method,
                         dataset=job.dataset, seed=job.seed) as span:
        try:
            spec = faults.fault_point("job", job_id=job.job_id)
            if spec is not None and spec.action == "delay":
                time.sleep(spec.seconds)
            method = build_method(job.method, job.config, seed=job.seed)
            checkpointer = _job_checkpointer(job, method, checkpoint)
            if checkpointer is not None:
                graph = method.discover(dataset, checkpoint=checkpointer)
            else:
                graph = method.discover(dataset)
            scores = None
            if dataset.graph is not None:
                from repro.graph.metrics import evaluate_discovery

                scores = evaluate_discovery(graph, dataset.graph,
                                            delay_tolerance=job.delay_tolerance)
            span.set(n_edges=graph.n_edges, ok=True)
            return JobResult(job=job, graph=graph, scores=scores,
                             duration=time.perf_counter() - start)
        except Exception:
            span.set(ok=False)
            telemetry.counter("executor.job_errors").inc()
            telemetry.event("job_error", job_id=job.job_id, method=job.method)
            return JobResult(job=job, error=traceback.format_exc(),
                             duration=time.perf_counter() - start)


def _coerce_cache(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(str(cache))


def lookup_cached(cache: Optional[ResultCache],
                  job: DiscoveryJob) -> Optional[JobResult]:
    """Answer a job from the cache, or ``None`` (shared by executor and
    the batched scheduler's lane admission)."""
    if cache is None:
        return None
    start = time.perf_counter()
    payload = cache.get(job.cache_key())
    if payload is None:
        return None
    try:
        result = JobResult.from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return None
    result.cached = True
    # ``duration`` keeps the original run's compute time (restored from
    # the cached payload); the price actually paid for this result is
    # the lookup, recorded separately.
    result.lookup_duration = time.perf_counter() - start
    return result


class _PoolUnit:
    """One pooled submission — a stacked group or a single job — plus its
    retry bookkeeping (attempts consumed, in-flight future, deadline)."""

    __slots__ = ("members", "index", "job", "dataset", "attempts", "future",
                 "deadline")

    def __init__(self, members=None, index=None, job=None, dataset=None,
                 attempts: int = 0) -> None:
        self.members = members
        self.index = index
        self.job = job
        self.dataset = dataset
        self.attempts = attempts
        self.future = None
        self.deadline = None

    @property
    def is_group(self) -> bool:
        return self.members is not None

    def jobs(self):
        """``(original index, job)`` pairs this unit answers for."""
        if self.is_group:
            return [(index, job) for index, (job, _ds) in self.members]
        return [(self.index, self.job)]

    @property
    def first_job(self) -> DiscoveryJob:
        return self.members[0][1][0] if self.is_group else self.job

    @property
    def key(self) -> str:
        """Deterministic jitter seed: the (first) job's cache key."""
        return self.first_job.cache_key()


class JobExecutor:
    """Fan discovery jobs out over worker processes, through a result cache.

    Parameters
    ----------
    max_workers:
        Process-pool size; ``1`` (the default) executes in-process, ``None``
        uses ``os.cpu_count()``.
    cache:
        ``None`` disables caching; a path creates a
        :class:`~repro.service.cache.ResultCache` there; an existing cache
        instance is used as-is.
    batch_jobs:
        Pack compatible CausalFormer jobs into stacked training passes (see
        :mod:`repro.service.batched`).  Each group runs as one unit — one
        in-process pass, or one pool task when workers are available — and
        returns the same results as per-job dispatch, faster.
    bucket_slack:
        Relative series-length slack for shape bucketing (``0.0`` groups
        only exact same-length jobs; ``0.25`` lets lengths within 25% of a
        bucket's shortest job stack together via pad-and-mask lanes).
    max_lanes:
        Cap on a stacked group's live lane count; the rest of the bucket
        queues and refills lanes freed by compaction.  ``None`` (default)
        trains each bucket at its full width.
    retries:
        Extra attempts for a job whose execution *errored* (its result
        carries a traceback).  Independently of this, pool-level failures —
        a dying worker, a timeout — always get at least one free retry:
        infrastructure loss is not the job's fault.
    retry_backoff:
        Base of the exponential backoff between attempts, in seconds; the
        actual delay is ``retry_backoff * 2**(attempt-1)`` scaled by a
        *deterministic* jitter derived from the job's cache key, so retry
        schedules reproduce run to run.  ``0`` disables waiting.
    job_timeout:
        Per-unit wall-clock budget in seconds for pooled dispatch.  A unit
        still running past it has its workers hard-killed and is retried
        (then dead-lettered).  Not enforceable on the inline path.
    checkpoint_dir:
        When set, jobs whose method declares ``supports_checkpoint``
        snapshot their fit state here (keyed by cache key) every
        ``checkpoint_every`` epochs, and a retried job resumes from the
        last snapshot bit-identically.  Applies to per-job dispatch; a
        stacked *group* is retried from scratch (its members' checkpoints
        are per-job, not per-group).
    """

    def __init__(self, max_workers: Optional[int] = 1,
                 cache: CacheLike = None,
                 batch_jobs: bool = False,
                 bucket_slack: float = 0.0,
                 max_lanes: Optional[int] = None,
                 retries: int = 0,
                 retry_backoff: float = 0.5,
                 job_timeout: Optional[float] = None,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: int = 1) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1 (or None for cpu_count)")
        if max_workers is None:
            import os

            max_workers = os.cpu_count() or 1
        if bucket_slack < 0:
            raise ValueError("bucket_slack must be non-negative")
        if max_lanes is not None and max_lanes < 1:
            raise ValueError("max_lanes must be at least 1 (or None)")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        self.max_workers = max_workers
        self.cache = _coerce_cache(cache)
        self.batch_jobs = batch_jobs
        self.bucket_slack = bucket_slack
        self.max_lanes = max_lanes
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self.job_timeout = job_timeout
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = int(checkpoint_every)

    @property
    def _checkpoint_spec(self) -> CheckpointSpec:
        if self.checkpoint_dir is None:
            return None
        return (self.checkpoint_dir, self.checkpoint_every)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, pairs: Sequence[JobPair]) -> List[JobResult]:
        """Execute every ``(job, dataset)`` pair; results come back in order."""
        telemetry = get_telemetry()
        pairs = list(pairs)
        results: List[Optional[JobResult]] = [None] * len(pairs)

        with telemetry.trace("executor.run", jobs=len(pairs),
                             workers=self.max_workers,
                             batch_jobs=self.batch_jobs) as span:
            pending: List[Tuple[int, JobPair]] = []
            for index, (job, dataset) in enumerate(pairs):
                cached = self._lookup(job)
                if cached is not None:
                    results[index] = cached
                    telemetry.event("job_cache_hit", job_id=job.job_id,
                                    lookup_duration=cached.lookup_duration)
                else:
                    pending.append((index, (job, dataset)))

            span.set(cache_hits=len(pairs) - len(pending))
            if pending:
                for index, result in self._dispatch(pending).items():
                    results[index] = result
                    self._store(result)

        unfilled = [pairs[index][0] for index, result in enumerate(results)
                    if result is None]
        if unfilled:
            # A hole here means _dispatch lost a job (a bug, not a job
            # failure — failures come back as error-carrying results).
            # Returning a silently shortened list would desynchronise every
            # caller that zips results against its submissions.
            raise RuntimeError(
                "executor dispatch returned no result for: "
                + ", ".join(job.job_id for job in unfilled))
        return [result for result in results if result is not None]

    def run_one(self, job: DiscoveryJob, dataset: TimeSeriesDataset) -> JobResult:
        return self.run([(job, dataset)])[0]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _dispatch(self, pending: List[Tuple[int, JobPair]]) -> dict:
        """Run the uncached jobs; returns ``{original index: result}``.

        Work is split into *units*: stacked groups of same-shape jobs (only
        when ``batch_jobs`` is on) plus per-job leftovers.  Every unit runs
        either on the process pool (one submit per unit, each wrapped so a
        dying worker degrades to per-job error results) or inline — the
        inline path also serves as the fallback when the pool cannot be
        created (e.g. sandboxes without working semaphores).
        """
        from repro.service.batched import execute_batched_jobs, group_batchable

        telemetry = get_telemetry()
        if self.batch_jobs:
            # The cache travels into grouping too: a job cached between the
            # run()-level lookup and here (another process finishing it)
            # must not anchor a bucket.
            groups, singles = group_batchable(pending,
                                              slack=self.bucket_slack,
                                              cache=self.cache)
        else:
            groups, singles = [], list(pending)
        results: dict = {}
        use_pool = self.max_workers > 1 and len(groups) + len(singles) > 1
        telemetry.event("executor.dispatch", pending=len(pending),
                        groups=len(groups), singles=len(singles),
                        pool=use_pool, workers=self.max_workers)
        if use_pool:
            try:
                return self._run_pool(groups, singles, telemetry)
            except (OSError, PermissionError):
                # No usable multiprocessing primitives — run inline instead.
                telemetry.counter("executor.pool_fallbacks").inc()
                telemetry.event("pool_fallback", workers=self.max_workers,
                                pending=len(pending))
                results.clear()
        for members in groups:
            fresh = execute_batched_jobs([pair for _idx, pair in members],
                                         max_lanes=self.max_lanes,
                                         cache=self.cache)
            for (index, _pair), result in zip(members, fresh):
                results[index] = result
        for index, (job, dataset) in singles:
            results[index] = self._run_inline_single(job, dataset, telemetry)
        return results

    # ------------------------------------------------------------------ #
    # Pooled dispatch with retry / timeout / dead-letter
    # ------------------------------------------------------------------ #
    def _run_pool(self, groups, singles, telemetry) -> dict:
        """Round-based pooled dispatch that survives dying workers.

        Each round submits every unfinished unit, then collects in order.
        Any pool-level casualty (``BrokenProcessPool``, a timeout) poisons
        the *whole* pool: the culprit's workers are hard-killed, the pool
        respawned, the culprit retried with a counted attempt and backoff,
        and every abandoned innocent unit resubmitted for free.  Error
        results retry per ``self.retries`` (group members demote to solo
        units first).  ``OSError``/``PermissionError`` propagate to the
        caller's inline fallback; any other escape — ``KeyboardInterrupt``
        included — kills the pool and flushes telemetry before re-raising,
        so an interrupted sweep never leaks orphan workers.
        """
        from repro.nn.parallel import get_engine_threads
        from repro.nn.tensor import get_default_dtype

        dtype = str(get_default_dtype())
        collect = telemetry.enabled
        engine_threads = get_engine_threads()
        cache_dir = self.cache.directory if self.cache is not None else None
        # Pool-level failures get at least one free retry even at
        # retries=0 — a dying worker is infrastructure loss, not evidence
        # against the job.
        pool_allowed = max(self.retries, 1) + 1
        units = [_PoolUnit(members=members) for members in groups]
        units += [_PoolUnit(index=index, job=job, dataset=dataset)
                  for index, (job, dataset) in singles]
        results: dict = {}
        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        try:
            queue = units
            while queue:
                round_units, queue = queue, []
                delay = 0.0
                for unit in round_units:
                    self._submit_unit(pool, unit, dtype, collect,
                                      engine_threads, cache_dir)
                broken = False
                for unit in round_units:
                    if broken:
                        # The pool died under an earlier unit; this one was
                        # abandoned through no fault of its own — resubmit
                        # without charging an attempt.
                        queue.append(unit)
                        continue
                    try:
                        if unit.deadline is not None:
                            remaining = unit.deadline - time.monotonic()
                            fresh = unit.future.result(
                                timeout=max(remaining, 0.01))
                        else:
                            fresh = unit.future.result()
                    except FuturesTimeout:
                        unit.attempts += 1
                        telemetry.counter("executor.timeouts").inc()
                        telemetry.event("job_timeout",
                                        job_id=unit.first_job.job_id,
                                        attempt=unit.attempts,
                                        timeout=self.job_timeout)
                        pool = self._respawn(pool)
                        broken = True
                        if unit.attempts < pool_allowed:
                            delay = max(delay, self._retry_delay(
                                unit.key, unit.attempts))
                            queue.append(unit)
                        else:
                            self._dead_letter(
                                unit, results, telemetry,
                                f"job exceeded its {self.job_timeout}s "
                                f"wall-clock budget "
                                f"(attempt {unit.attempts})")
                        continue
                    except BrokenProcessPool:
                        unit.attempts += 1
                        telemetry.counter("executor.retries").inc()
                        telemetry.event("job_retry",
                                        job_id=unit.first_job.job_id,
                                        attempt=unit.attempts,
                                        reason="worker_died")
                        pool = self._respawn(pool)
                        broken = True
                        if unit.attempts < pool_allowed:
                            delay = max(delay, self._retry_delay(
                                unit.key, unit.attempts))
                            queue.append(unit)
                        else:
                            self._dead_letter(
                                unit, results, telemetry,
                                f"worker process died "
                                f"(attempt {unit.attempts})")
                        continue
                    except (OSError, PermissionError):
                        raise
                    except Exception:
                        # The result failed to unpickle (or similar): the
                        # pool itself is fine — degrade to per-job errors.
                        unit.attempts += 1
                        error = traceback.format_exc()
                        for index, job in unit.jobs():
                            results[index] = JobResult(
                                job=job, error=error,
                                attempts=unit.attempts)
                        continue
                    unit.attempts += 1
                    delay = max(delay, self._accept(unit, fresh, results,
                                                    queue, telemetry))
                if delay > 0:
                    time.sleep(delay)
        except BaseException:
            # KeyboardInterrupt, a propagating OSError, anything: never
            # leak worker processes, never lose buffered telemetry.
            self._kill_pool(pool)
            telemetry.flush()
            raise
        pool.shutdown(wait=True)
        return results

    def _submit_unit(self, pool, unit, dtype, collect, engine_threads,
                     cache_dir) -> None:
        """Submit one unit; the ``dispatch`` fault site counts here."""
        from repro.service.batched import execute_batched_jobs_with_dtype

        directives = None
        spec = faults.fault_point("dispatch", job_id=unit.first_job.job_id,
                                  attempt=unit.attempts + 1)
        if spec is not None:
            if spec.action == "kill":
                directives = {"kill": True}
            elif spec.action == "delay":
                time.sleep(spec.seconds)
        if unit.is_group:
            unit.future = pool.submit(
                execute_batched_jobs_with_dtype,
                [pair for _idx, pair in unit.members], dtype, collect,
                engine_threads, self.max_lanes, cache_dir, directives)
        else:
            unit.future = pool.submit(
                execute_job_with_dtype, unit.job, unit.dataset, dtype,
                collect, engine_threads, self._checkpoint_spec, directives)
        unit.deadline = (time.monotonic() + self.job_timeout
                         if self.job_timeout is not None else None)

    def _accept(self, unit, fresh, results: dict, queue: list,
                telemetry) -> float:
        """Fold a completed unit's results in; returns the backoff owed.

        Error results retry when ``retries > 0``: a failing group member
        demotes to a solo unit (its group-mates' results stand), a failing
        single re-enqueues until its attempts run out, then keeps its last
        error marked ``dead_letter``.
        """
        error_allowed = self.retries + 1
        delay = 0.0
        if unit.is_group:
            items = [(index, pair[0], result) for (index, pair), result
                     in zip(unit.members, fresh)]
        else:
            items = [(unit.index, unit.job, fresh)]
        for index, job, result in items:
            result = self._absorb(result, telemetry)
            result.attempts = unit.attempts
            if result.error and self.retries > 0 \
                    and unit.attempts < error_allowed:
                telemetry.counter("executor.retries").inc()
                telemetry.event("job_retry", job_id=job.job_id,
                                attempt=unit.attempts, reason="job_error")
                dataset = (dict(unit.members)[index][1] if unit.is_group
                           else unit.dataset)
                queue.append(_PoolUnit(index=index, job=job, dataset=dataset,
                                       attempts=unit.attempts))
                delay = max(delay, self._retry_delay(job.cache_key(),
                                                     unit.attempts))
                continue
            if result.error and self.retries > 0:
                result.dead_letter = True
                telemetry.counter("executor.dead_letters").inc()
                telemetry.event("job_dead_letter", job_id=job.job_id,
                                attempts=unit.attempts)
            results[index] = result
        return delay

    def _dead_letter(self, unit, results: dict, telemetry,
                     message: str) -> None:
        """Give up on a unit: error results flagged ``dead_letter``."""
        for index, job in unit.jobs():
            telemetry.counter("executor.dead_letters").inc()
            telemetry.event("job_dead_letter", job_id=job.job_id,
                            attempts=unit.attempts)
            results[index] = JobResult(job=job, error=message,
                                       attempts=unit.attempts,
                                       dead_letter=True)

    def _run_inline_single(self, job: DiscoveryJob,
                           dataset: TimeSeriesDataset,
                           telemetry) -> JobResult:
        """In-process execution with the same error-retry policy.

        ``job_timeout`` is not enforceable here (there is no worker to
        kill), and a hard crash takes the process with it — the inline
        path trades isolation for working in pool-less sandboxes.
        """
        allowed = self.retries + 1
        attempt = 0
        while True:
            attempt += 1
            result = execute_job(job, dataset,
                                 checkpoint=self._checkpoint_spec)
            result.attempts = attempt
            if not result.error or attempt >= allowed:
                if result.error and self.retries > 0:
                    result.dead_letter = True
                    telemetry.counter("executor.dead_letters").inc()
                    telemetry.event("job_dead_letter", job_id=job.job_id,
                                    attempts=attempt)
                return result
            telemetry.counter("executor.retries").inc()
            telemetry.event("job_retry", job_id=job.job_id, attempt=attempt,
                            reason="job_error")
            delay = self._retry_delay(job.cache_key(), attempt)
            if delay > 0:
                time.sleep(delay)

    def _retry_delay(self, key: str, attempt: int) -> float:
        """Exponential backoff with *deterministic* jitter.

        The jitter derives from the job's cache key and the attempt number,
        so two runs of the same sweep back off identically — randomness
        would break the reproducibility contract chaos tests rely on.
        """
        if self.retry_backoff <= 0:
            return 0.0
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        jitter = digest[0] / 255.0
        return self.retry_backoff * (2.0 ** (attempt - 1)) * (0.5 + 0.5 * jitter)

    def _respawn(self, pool) -> ProcessPoolExecutor:
        """Hard-kill what is left of a poisoned pool and start a fresh one."""
        self._kill_pool(pool)
        return ProcessPoolExecutor(max_workers=self.max_workers)

    @staticmethod
    def _kill_pool(pool) -> None:
        """Kill every worker outright; cancel queued work; don't wait."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _absorb(result: JobResult, telemetry) -> JobResult:
        """Fold worker-collected telemetry into this process, then drop it."""
        if result.telemetry is not None:
            telemetry.absorb(result.telemetry)
            result.telemetry = None
        return result

    def _lookup(self, job: DiscoveryJob) -> Optional[JobResult]:
        return lookup_cached(self.cache, job)

    def _store(self, result: JobResult) -> None:
        # ``cached`` results came *from* the cache (possibly via a stacked
        # group's admission-time lookup) — don't rewrite them.
        if self.cache is None or not result.ok or result.cached:
            return
        self.cache.put(result.job.cache_key(), result.to_dict())

    def __repr__(self) -> str:
        return (f"JobExecutor(max_workers={self.max_workers}, "
                f"cache={self.cache!r}, batch_jobs={self.batch_jobs}, "
                f"bucket_slack={self.bucket_slack}, "
                f"max_lanes={self.max_lanes})")
