"""Deterministic fault-injection harness: grammar, one-shot firing, scoping."""

import pytest

from repro import faults
from repro.faults import (FaultInjector, FaultPlan, FaultSpecError,
                          InjectedFault, LaneFault)


class TestGrammar:
    def test_parse_single_clause(self):
        plan = FaultPlan.parse("kill@dispatch=2")
        assert len(plan) == 1
        spec = plan.specs[0]
        assert (spec.action, spec.site, spec.occurrence) == ("kill", "dispatch", 2)
        assert spec.params == {}

    def test_parse_params_and_round_trip(self):
        text = "delay@job=5:seconds=0.25,raise@lane_step=4:lane=1"
        plan = FaultPlan.parse(text)
        assert len(plan) == 2
        assert plan.specs[0].seconds == 0.25
        assert plan.specs[1].params == {"lane": "1"}
        assert FaultPlan.parse(plan.to_spec()).to_spec() == plan.to_spec()

    def test_empty_and_whitespace_plans(self):
        assert len(FaultPlan.parse(None)) == 0
        assert len(FaultPlan.parse("")) == 0
        assert len(FaultPlan.parse(" , ,")) == 0

    @pytest.mark.parametrize("text", [
        "explode@job=1",          # unknown action
        "kill@dispatch",          # missing occurrence
        "kill@dispatch=zero",     # non-integer occurrence
        "kill@dispatch=0",        # occurrences are 1-based
        "delay@job=1:seconds",    # parameter without value
        "killdispatch=1",         # no @
    ])
    def test_bad_clauses_raise(self, text):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(text)


class TestInjector:
    def test_clause_fires_exactly_once_at_its_occurrence(self):
        injector = FaultInjector(FaultPlan.parse("corrupt@cache_write=3"))
        assert injector.fire("cache_write") is None
        assert injector.fire("cache_write") is None
        spec = injector.fire("cache_write")
        assert spec is not None and spec.action == "corrupt"
        # one-shot: the same occurrence count never refires
        for _ in range(5):
            assert injector.fire("cache_write") is None
        assert [str(s) for s in injector.fired] == ["corrupt@cache_write=3"]

    def test_sites_count_independently(self):
        injector = FaultInjector(FaultPlan.parse("delay@job=2"))
        assert injector.fire("dispatch") is None
        assert injector.fire("job") is None
        assert injector.fire("dispatch") is None
        assert injector.fire("job") is not None
        assert injector.counters == {"dispatch": 2, "job": 2}

    def test_raise_clause_raises_injected_fault(self):
        injector = FaultInjector(FaultPlan.parse("raise@train_step=1"))
        with pytest.raises(InjectedFault):
            injector.fire("train_step")
        assert injector.fire("train_step") is None

    def test_custom_error_message(self):
        injector = FaultInjector(
            FaultPlan.parse("raise@job=1:error=boom"))
        with pytest.raises(InjectedFault, match="boom"):
            injector.fire("job")


class TestLaneResolution:
    def _fire(self, clause, **context):
        injector = FaultInjector(FaultPlan.parse(clause))
        with pytest.raises(LaneFault) as info:
            injector.fire("lane_step", **context)
        return info.value.model_index

    def test_model_param_names_admission_index_directly(self):
        assert self._fire("raise@lane_step=1:model=7", models=[0, 1]) == 7

    def test_lane_param_resolves_through_participants(self):
        assert self._fire("raise@lane_step=1:lane=1", models=[4, 9, 2]) == 9

    def test_defaults_to_last_participant(self):
        assert self._fire("raise@lane_step=1", models=[4, 9, 2]) == 2


class TestGlobalInjector:
    def test_override_installs_and_restores(self):
        before = faults.get_injector()
        with faults.override("raise@job=1"):
            assert faults.active()
            with pytest.raises(InjectedFault):
                faults.fault_point("job")
        assert faults.get_injector() is before

    def test_override_none_disables(self):
        with faults.override("delay@job=1"):
            with faults.override(None):
                assert not faults.active()
                assert faults.fault_point("job") is None
            # the outer plan's counters were untouched by the inner scope
            assert faults.fault_point("job") is not None

    def test_configure_and_reset(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.configure("delay@job=1:seconds=0")
        try:
            assert faults.active()
            assert faults.fault_point("job").action == "delay"
        finally:
            faults.reset()
        assert not faults.active()

    def test_env_plan_is_picked_up(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "delay@dispatch=1")
        faults.reset()
        try:
            assert faults.active()
            assert faults.fault_point("dispatch").site == "dispatch"
        finally:
            monkeypatch.delenv(faults.ENV_VAR)
            faults.reset()

    def test_inactive_fault_point_is_a_no_op(self):
        assert not faults.active() or True  # env chaos plans may be present
        with faults.override(None):
            assert faults.fault_point("anywhere") is None
