"""NetSim-style simulated fMRI BOLD dataset.

The paper evaluates on the NetSim fMRI benchmark (Smith et al., 2011): BOLD
recordings of 28 simulated brain networks of 5 / 10 / 15 / 50 regions of
interest with known ground-truth connectivity.  The original recordings are
not redistributable offline, so this module re-creates the NetSim recipe:

1. sample a sparse, stable directed connectivity matrix over ``n_nodes``
   regions (a random DAG plus self-decay, like NetSim's ring-plus-extras
   layouts);
2. simulate latent neural dynamics with that coupling and external input
   noise;
3. blur each region's neural signal with a haemodynamic response function
   (a double-gamma HRF, the standard BOLD model) — this is the part that
   makes fMRI causal discovery hard;
4. add observation noise and subsample to the scanner's repetition time.

The ground-truth graph of step 1 is attached to the dataset, so F1 / PoD are
computed exactly as the paper does against NetSim's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.base import TimeSeriesDataset
from repro.graph.causal_graph import TemporalCausalGraph


@dataclass
class FmriNetworkSpec:
    """Parameters of one simulated brain network.

    Attributes
    ----------
    n_nodes:
        Number of regions of interest (NetSim uses 5, 10, 15 or 50).
    length:
        Number of BOLD samples after subsampling (NetSim: 50–5,000).
    edge_probability:
        Probability of a directed edge between two distinct regions.
    coupling_strength:
        Magnitude scale of the neural coupling coefficients.
    hrf_length:
        Number of neural time steps the haemodynamic response spans.
    neural_noise_std / observation_noise_std:
        Innovation noise of the latent dynamics and measurement noise on
        the BOLD signal.
    subsample:
        Neural steps per BOLD sample (repetition time).
    """

    n_nodes: int = 5
    length: int = 200
    edge_probability: float = 0.25
    coupling_strength: float = 0.6
    hrf_length: int = 12
    neural_noise_std: float = 1.0
    observation_noise_std: float = 0.1
    subsample: int = 2
    include_self_loops: bool = True

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("an fMRI network needs at least two regions")
        if self.length < 10:
            raise ValueError("length must be at least 10 BOLD samples")
        if not (0.0 < self.edge_probability <= 1.0):
            raise ValueError("edge_probability must be in (0, 1]")


def double_gamma_hrf(length: int, dt: float = 1.0, peak: float = 6.0,
                     undershoot: float = 16.0, ratio: float = 1.0 / 6.0) -> np.ndarray:
    """Canonical double-gamma haemodynamic response function (unit area)."""
    from math import gamma as gamma_function

    times = np.arange(length) * dt

    def pdf(t: np.ndarray, shape: float) -> np.ndarray:
        out = np.zeros_like(t, dtype=float)
        positive = t > 0
        out[positive] = (t[positive] ** (shape - 1) * np.exp(-t[positive])
                         / gamma_function(shape))
        return out

    response = pdf(times, peak) - ratio * pdf(times, undershoot)
    area = response.sum()
    if abs(area) > 1e-12:
        response = response / area
    return response


def _sample_connectivity(spec: FmriNetworkSpec, rng: np.random.Generator
                         ) -> tuple:
    """Sample a sparse stable coupling matrix and its ground-truth graph."""
    n = spec.n_nodes
    graph = TemporalCausalGraph(n)
    coupling = np.zeros((n, n))
    # NetSim networks are built on a sparse backbone; sample a random DAG
    # orientation so the network stays stable and identifiable.
    order = rng.permutation(n)
    for a in range(n):
        for b in range(a + 1, n):
            if rng.random() < spec.edge_probability:
                source, target = int(order[a]), int(order[b])
                weight = spec.coupling_strength * rng.uniform(0.5, 1.0) * rng.choice([-1.0, 1.0])
                coupling[source, target] = weight
                graph.add_edge(source, target, 1)
    # Guarantee at least one edge so evaluation is meaningful.
    if graph.n_edges == 0:
        source, target = int(order[0]), int(order[1])
        coupling[source, target] = spec.coupling_strength
        graph.add_edge(source, target, 1)
    if spec.include_self_loops:
        for i in range(n):
            graph.add_edge(i, i, 1)
    return coupling, graph


def simulate_bold(spec: FmriNetworkSpec, rng: Optional[np.random.Generator] = None
                  ) -> tuple:
    """Simulate one network; returns ``(bold_values, ground_truth_graph)``."""
    rng = rng or np.random.default_rng()
    coupling, graph = _sample_connectivity(spec, rng)
    n = spec.n_nodes
    decay = 0.6  # self-persistence of the latent neural state
    neural_steps = spec.length * spec.subsample + spec.hrf_length + 50
    neural = np.zeros((n, neural_steps))
    for t in range(1, neural_steps):
        drive = neural[:, t - 1] @ coupling
        neural[:, t] = (decay * neural[:, t - 1] + drive
                        + rng.normal(0.0, spec.neural_noise_std, size=n))
        # Saturate to keep the dynamics bounded like real neural populations.
        neural[:, t] = np.tanh(neural[:, t] * 0.5) * 2.0
    hrf = double_gamma_hrf(spec.hrf_length)
    bold_full = np.stack([np.convolve(neural[i], hrf, mode="full")[:neural_steps]
                          for i in range(n)], axis=0)
    # Drop the HRF warm-up, subsample to the repetition time, add noise.
    bold = bold_full[:, spec.hrf_length + 50::spec.subsample][:, :spec.length]
    bold = bold + rng.normal(0.0, spec.observation_noise_std, size=bold.shape)
    return bold, graph


def fmri_dataset(n_nodes: int = 5, length: int = 200, seed: Optional[int] = None,
                 spec: Optional[FmriNetworkSpec] = None,
                 network_id: int = 0) -> TimeSeriesDataset:
    """One simulated brain network with ground truth.

    ``network_id`` mimics NetSim's numbering of its 28 networks: different ids
    give different random connectivities for the same size.
    """
    if spec is None:
        spec = FmriNetworkSpec(n_nodes=n_nodes, length=length)
    rng = np.random.default_rng(None if seed is None else seed + 1000 * network_id)
    values, graph = simulate_bold(spec, rng=rng)
    return TimeSeriesDataset(
        values=values,
        name=f"fmri-{spec.n_nodes}",
        graph=graph,
        metadata={
            "n_nodes": spec.n_nodes,
            "length": spec.length,
            "network_id": network_id,
            "seed": seed,
            "generator": "fmri-netsim-style",
        },
    )


def fmri_benchmark_suite(sizes: Optional[List[int]] = None, networks_per_size: int = 2,
                         length: int = 200, seed: int = 0) -> List[TimeSeriesDataset]:
    """A small NetSim-like benchmark suite: several networks of several sizes."""
    sizes = sizes or [5, 10, 15]
    datasets: List[TimeSeriesDataset] = []
    counter = 0
    for size in sizes:
        for network in range(networks_per_size):
            datasets.append(fmri_dataset(n_nodes=size, length=length,
                                         seed=seed + counter, network_id=network))
            counter += 1
    return datasets
