#!/usr/bin/env python3
"""Brain-network connectivity discovery on simulated fMRI BOLD data.

Mirrors the paper's fMRI experiment and Fig. 8 case study: simulate a small
"brain network" with known ground-truth connectivity (a NetSim-style
generator: sparse neural coupling + haemodynamic blur + observation noise),
run every method the paper compares, and print the per-method edge
classification the figure visualises.

Run with::

    python examples/fmri_discovery.py  [--nodes 5 --length 240]
"""

import argparse

from repro.baselines import CMlp, CutsLite, DvgnnLite, Tcdf
from repro.core import CausalFormer, fmri_preset
from repro.data import fmri_dataset
from repro.graph import evaluate_discovery
from repro.graph.metrics import edge_classification


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=5,
                        help="regions of interest (NetSim uses 5/10/15/50)")
    parser.add_argument("--length", type=int, default=240)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()

    dataset = fmri_dataset(n_nodes=arguments.nodes, length=arguments.length,
                           seed=arguments.seed)
    print(f"simulated fMRI network: {dataset.n_series} ROIs × {dataset.n_timesteps} samples, "
          f"{dataset.graph.n_edges} true edges")

    methods = {
        "cMLP": CMlp(epochs=100, sparsity=1e-3, seed=arguments.seed),
        "TCDF": Tcdf(epochs=100, seed=arguments.seed),
        "DVGNN": DvgnnLite(epochs=120, seed=arguments.seed),
        "CUTS": CutsLite(epochs=150, seed=arguments.seed),
        "CausalFormer": CausalFormer(fmri_preset(max_epochs=40, seed=arguments.seed)),
    }

    print("\nmethod          F1    precision  recall   TP  FP  FN")
    print("-" * 58)
    for name, method in methods.items():
        predicted = method.discover(dataset)
        scores = evaluate_discovery(predicted, dataset.graph)
        classified = edge_classification(predicted, dataset.graph)
        print(f"{name:14s}  {scores.f1:.2f}  {scores.precision:9.2f}  {scores.recall:6.2f}  "
              f"{len(classified['true_positive']):3d} {len(classified['false_positive']):3d} "
              f"{len(classified['false_negative']):3d}")


if __name__ == "__main__":
    main()
