"""CausalFormer core: causality-aware transformer + decomposition-based detector."""

from repro.core.config import (
    CausalFormerConfig,
    synthetic_preset,
    lorenz_preset,
    fmri_preset,
    sst_preset,
    fast_preset,
    PRESETS,
)
from repro.core.embedding import TimeSeriesEmbedding
from repro.core.convolution import MultiKernelCausalConvolution
from repro.core.attention import MultiVariateCausalAttention, CausalAttentionHead
from repro.core.feedforward import FeedForward, OutputLayer
from repro.core.transformer import CausalityAwareTransformer, TransformerCache
from repro.core.training import Trainer, TrainingHistory
from repro.core.relevance import RegressionRelevancePropagation, RelevanceResult
from repro.core.detector import DecompositionCausalityDetector, CausalScores
from repro.core.clustering import kmeans, select_top_scores
from repro.core.discovery import CausalFormer

__all__ = [
    "CausalFormerConfig",
    "synthetic_preset",
    "lorenz_preset",
    "fmri_preset",
    "sst_preset",
    "fast_preset",
    "PRESETS",
    "TimeSeriesEmbedding",
    "MultiKernelCausalConvolution",
    "MultiVariateCausalAttention",
    "CausalAttentionHead",
    "FeedForward",
    "OutputLayer",
    "CausalityAwareTransformer",
    "TransformerCache",
    "Trainer",
    "TrainingHistory",
    "RegressionRelevancePropagation",
    "RelevanceResult",
    "DecompositionCausalityDetector",
    "CausalScores",
    "kmeans",
    "select_top_scores",
    "CausalFormer",
]
