#!/usr/bin/env python3
"""Demonstrate the repro.service job subsystem on a multi-method sweep.

The same methods × datasets × seeds sweep is executed three ways:

1. **serial, uncached** — the pre-service behaviour: every cell trains
   in-process, from scratch;
2. **parallel, cached** — dispatched through a
   :class:`~repro.service.JobExecutor` process pool backed by the on-disk
   result cache;
3. **cache replay** — the same executor again: every cell is answered from
   the cache at file-read speed.

All three produce bit-identical score tables (asserted), and the cache
persists across invocations — run this script twice and phase 2 is answered
from disk as well.

Run with::

    PYTHONPATH=src python examples/parallel_sweep.py
    PYTHONPATH=src python examples/parallel_sweep.py --workers 8 --seeds 0 1 2
"""

import argparse
import os
import time

from repro.experiments.runner import ExperimentSpec, MethodSpec, causalformer_spec, evaluate_methods
from repro.service import JobExecutor, ResultCache
from repro.service.registry import build_dataset


def build_sweep(datasets, seeds, length):
    experiments = [
        ExperimentSpec(name,
                       lambda seed, _name=name: build_dataset(_name, seed=seed, length=length),
                       seeds=tuple(seeds))
        for name in datasets
    ]
    methods = [
        MethodSpec("cmlp", config={"epochs": 60, "sparsity": 1e-3}),
        MethodSpec("tcdf", config={"epochs": 60}),
        MethodSpec("cuts", config={"epochs": 100}),
        causalformer_spec(),
    ]
    return experiments, methods


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--datasets", nargs="+", default=["diamond", "fork"])
    parser.add_argument("--seeds", type=int, nargs="+", default=[0])
    parser.add_argument("--length", type=int, default=200)
    parser.add_argument("--workers", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="process-pool size for the parallel phase")
    parser.add_argument("--cache-dir", default=".repro-cache/parallel-sweep")
    parser.add_argument("--clear-cache", action="store_true",
                        help="empty the cache first (forces a cold phase 2)")
    arguments = parser.parse_args()

    cache = ResultCache(arguments.cache_dir)
    if arguments.clear_cache:
        print(f"cleared {cache.clear()} cache entries")
    experiments, methods = build_sweep(arguments.datasets, arguments.seeds,
                                       arguments.length)
    n_jobs = len(experiments) * len(arguments.seeds) * len(methods)
    print(f"sweep: {n_jobs} jobs "
          f"({len(methods)} methods × {len(experiments)} datasets × "
          f"{len(arguments.seeds)} seeds), cache at {cache.directory}\n")

    print("[1/3] serial, uncached ...")
    start = time.perf_counter()
    serial = evaluate_methods(experiments, methods)
    serial_time = time.perf_counter() - start
    print(f"      {serial_time:.2f}s")

    print(f"[2/3] parallel ({arguments.workers} workers), cache-backed ...")
    executor = JobExecutor(max_workers=arguments.workers, cache=cache)
    start = time.perf_counter()
    parallel = evaluate_methods(experiments, methods, executor=executor)
    parallel_time = time.perf_counter() - start
    print(f"      {parallel_time:.2f}s")

    print("[3/3] cache replay ...")
    start = time.perf_counter()
    cached = evaluate_methods(experiments, methods, executor=executor)
    cached_time = time.perf_counter() - start
    print(f"      {cached_time:.2f}s\n")

    print(serial.render())
    assert serial.to_dict() == parallel.to_dict() == cached.to_dict(), \
        "parallel/cached sweeps must reproduce the serial scores exactly"
    print("\nscores identical across all three execution paths ✓")

    print(f"\nserial, uncached : {serial_time:8.2f}s")
    hint = ""
    if (os.cpu_count() or 1) < 2:
        hint = "  (only 1 CPU visible — pool overhead without real parallelism)"
    print(f"parallel x{arguments.workers}      : {parallel_time:8.2f}s  "
          f"({serial_time / parallel_time:4.1f}x vs serial){hint}")
    print(f"cache replay     : {cached_time:8.2f}s  "
          f"({serial_time / cached_time:4.1f}x vs serial)")
    if cached_time > 0 and serial_time / cached_time < 10:
        print("warning: cache replay was expected to be >=10x faster")


if __name__ == "__main__":
    main()
