"""Benchmark E6 — regenerate Fig. 10 (SST case study).

The paper applies CausalFormer to North-Atlantic SST and reports that the
discovered causal relations "generally match the spatial distribution of the
North Atlantic Current": S→N edges along the warm drift, N→S edges along the
cold returns.  On the synthetic advection field the prescribed currents are
known, so the qualitative claim becomes a measurable alignment fraction —
the discovered edges should point along the local current more often than
not, and both S→N and N→S families should be present.
"""

import pytest

from repro.experiments import run_figure10

from benchmarks.conftest import save_result


def test_figure10_sst_case_study(run_once):
    report = run_once(run_figure10, seed=0, fast=False)
    print("\n" + report.render())
    save_result("figure10_sst", {
        "n_cells": report.n_cells,
        "n_edges": report.n_edges,
        "alignment": report.alignment,
        "direction_counts": report.direction_counts,
        "f1_vs_advection_truth": report.f1_vs_advection_truth,
    })

    assert report.n_edges > 0
    # Shape check: a majority of discovered edges follow the prescribed
    # current field (the paper's qualitative Fig. 10 observation).
    assert report.alignment >= 0.5
    # Both warm (S→N) and cold-return (N→S) relations are represented.
    assert report.direction_counts.get("S->N", 0) > 0
    assert report.direction_counts.get("N->S", 0) > 0
