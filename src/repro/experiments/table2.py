"""Table 2 — precision of delay (PoD) of cMLP, TCDF and CausalFormer.

Only the methods that output causal delays are compared (the paper omits
cLSTM, DVGNN and CUTS); the fMRI dataset is omitted because it has no delay
ground truth.  The paper's finding — that CausalFormer's PoD is *inferior* to
cMLP and TCDF because it weighs the whole window uniformly — is the shape
this experiment reproduces.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.reporting import ResultTable
from repro.experiments.runner import (
    ExperimentSpec,
    MethodSpec,
    causalformer_spec,
    evaluate_methods,
    make_executor,
)
from repro.experiments.table1 import _config_factory_for, table1_dataset_specs

#: datasets with delay ground truth (Table 2 rows)
TABLE2_DATASETS = ("diamond", "mediator", "v_structure", "fork", "lorenz96")


def table2_method_specs(fast: bool = True, dataset_name: str = "diamond") -> List[MethodSpec]:
    epoch_scale = 0.5 if fast else 1.0
    return [
        MethodSpec("cmlp", config={"epochs": int(120 * epoch_scale), "sparsity": 1e-3}),
        MethodSpec("tcdf", config={"epochs": int(120 * epoch_scale)}),
        causalformer_spec(_config_factory_for(dataset_name, fast)),
    ]


def run_table2(seeds: Sequence[int] = (0, 1), fast: bool = True,
               datasets: Optional[Sequence[str]] = None,
               delay_tolerance: int = 1,
               verbose: bool = False,
               max_workers: Optional[int] = None,
               cache=None) -> ResultTable:
    """Regenerate Table 2 (precision of delay).

    ``delay_tolerance`` counts a delay as correct when it is within that many
    slots of the truth; the paper scores exact delays on its datasets, but
    the simulated substrates here subsample time (Lorenz-96 integration,
    BOLD repetition time), so a one-slot tolerance keeps the comparison
    meaningful.  Pass ``0`` for strict scoring.
    """
    wanted = set(datasets) if datasets is not None else set(TABLE2_DATASETS)
    specs = [spec for spec in table1_dataset_specs(seeds=seeds, fast=fast)
             if spec.name in wanted]
    executor = make_executor(max_workers=max_workers, cache=cache)
    table = ResultTable("Table 2: PoD", metric="precision_of_delay")
    for spec in specs:
        methods = table2_method_specs(fast=fast, dataset_name=spec.name)
        partial = evaluate_methods([spec], methods, metric="precision_of_delay",
                                   title=table.title, delay_tolerance=delay_tolerance,
                                   verbose=verbose, executor=executor)
        for row in partial.rows:
            for column in partial.columns:
                table.add_many(row, column, partial.cell(row, column).values)
    return table
