"""Batched execution of same-shape CausalFormer discovery jobs.

A sweep frequently schedules the *same* CausalFormer configuration over
several datasets and seeds.  Dispatching each as its own job repeats the
whole per-model numpy call sequence — at sweep model sizes the dispatch
overhead dominates the arithmetic.  This module packs compatible jobs into
one process pass that stays stacked end to end: the models train together
through :class:`repro.core.batched.StackedCausalFormerTrainer` (stacked
GEMMs for every step *and* every validation pass, one fused training
engine + scratch arena serving both), then the whole group's detector
interpretation runs as one stacked pass reusing that same arena
(:func:`repro.core.detector.compute_scores_group`) instead of one
interpretation per job; only graph construction and scoring stay per job.

Batching is numerics-preserving: the stacked trainer's per-model steps and
the stacked interpretation's per-model scores are bit-identical to the
sequential paths, so a batched sweep returns the same graphs and scores as
per-job dispatch — the correctness tests assert this.

Jobs are batchable together when they name the ``causalformer`` method with
identical configuration (up to the seed) on identically shaped datasets —
including the single-kernel ablation, whose shared ``(1, 1, T)`` kernel
stacks like any other parameter; everything else — baselines, odd-shaped
cells — falls through to the ordinary per-job path.
"""

from __future__ import annotations

import time
import traceback
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from repro.data.base import TimeSeriesDataset
from repro.service.jobs import DiscoveryJob, JobResult, canonical_json

JobPair = Tuple[DiscoveryJob, TimeSeriesDataset]

#: minimum group size worth a stacked pass
MIN_GROUP = 2


def batch_signature(job: DiscoveryJob, dataset: TimeSeriesDataset):
    """Grouping key for stackable jobs (``None`` when not batchable).

    The configuration (minus the seed) is part of the key, so the
    single-kernel ablation groups with other single-kernel jobs and never
    with multi-kernel ones.
    """
    if job.method != "causalformer":
        return None
    config = {key: value for key, value in job.config.items() if key != "seed"}
    try:
        shape = tuple(dataset.values.shape)
    except AttributeError:
        return None
    return (job.method, canonical_json(config), shape)


def group_batchable(pairs: Sequence[Tuple[int, JobPair]]
                    ) -> Tuple[List[List[Tuple[int, JobPair]]],
                               List[Tuple[int, JobPair]]]:
    """Split indexed pairs into stackable groups and per-job leftovers."""
    grouped: "OrderedDict[tuple, List[Tuple[int, JobPair]]]" = OrderedDict()
    singles: List[Tuple[int, JobPair]] = []
    for index, (job, dataset) in pairs:
        signature = batch_signature(job, dataset)
        if signature is None:
            singles.append((index, (job, dataset)))
        else:
            grouped.setdefault(signature, []).append((index, (job, dataset)))
    groups: List[List[Tuple[int, JobPair]]] = []
    for members in grouped.values():
        if len(members) >= MIN_GROUP:
            groups.append(members)
        else:
            singles.extend(members)
    singles.sort(key=lambda item: item[0])
    return groups, singles


def execute_batched_jobs(pairs: Sequence[JobPair]) -> List[JobResult]:
    """Run one group of stackable jobs as one stacked train + interpret pass.

    Per-job failures during graph construction/scoring are captured into
    their own :class:`JobResult`; a failure of the *shared* stacked training
    falls back to sequential per-job execution, and a failure of the shared
    stacked interpretation falls back to per-job interpretation — batching
    never loses a sweep.
    """
    from repro.core.batched import StackedCausalFormerTrainer
    from repro.service.executor import execute_job
    from repro.service.registry import build_method
    from repro.telemetry import get_telemetry

    telemetry = get_telemetry()
    pairs = list(pairs)
    group_span = telemetry.trace(
        "job_group", jobs=len(pairs),
        job_id=pairs[0][0].job_id if pairs else None,
        method=pairs[0][0].method if pairs else None)
    with group_span as span:
        try:
            start = time.perf_counter()
            with telemetry.trace("group_train", jobs=len(pairs)):
                methods = [build_method(job.method, job.config, seed=job.seed)
                           for job, _dataset in pairs]
                values_list = [method.prepare_fit(dataset)
                               for method, (_job, dataset) in zip(methods, pairs)]
                trainer = StackedCausalFormerTrainer(
                    [method.model_ for method in methods])
                histories = trainer.fit(values_list)
                # finalize_fit is two attribute assignments; it lives in the
                # shared block because the group interpretation below needs
                # every method finalized before it can collect the detector
                # windows.
                for method, values, history in zip(methods, values_list,
                                                   histories):
                    method.finalize_fit(values, history)
            shared = (time.perf_counter() - start) / len(pairs)
        except Exception:
            # The stacked pass itself failed (incompatible shapes slipping
            # past the signature, resource limits, …): degrade to per-job
            # execution.
            span.set(fallback="stacked_training")
            telemetry.counter("batched.train_fallbacks").inc()
            telemetry.event("stacked_train_fallback", jobs=len(pairs))
            return [execute_job(job, dataset) for job, dataset in pairs]

        # Stacked detector interpretation: one cache forward, multi-target
        # backward and relevance propagation for the whole group
        # (bit-identical per-model scores).  Any failure degrades to per-job
        # interpretation.
        detectors = None
        scores_list = None
        try:
            from repro.core.detector import compute_scores_group

            interpret_start = time.perf_counter()
            with telemetry.trace("group_interpret", jobs=len(pairs)):
                detectors = [method.build_detector() for method in methods]
                windows_list = [method.detector_windows() for method in methods]
                # The trainer's engine arena is reused for the stacked cache
                # forward/backward — training, validation and interpretation
                # share one buffer pool for the whole group.
                scores_list = compute_scores_group(detectors, windows_list,
                                                   arena=trainer.engine.arena)
            shared += (time.perf_counter() - interpret_start) / len(pairs)
        except Exception:
            detectors = None
            scores_list = None
            telemetry.counter("batched.interpret_fallbacks").inc()
            telemetry.event("stacked_interpret_fallback", jobs=len(pairs))

        results: List[JobResult] = []
        for index, (method, (job, dataset)) in enumerate(zip(methods, pairs)):
            own = time.perf_counter()
            try:
                if scores_list is None:
                    graph = method.interpret()
                else:
                    graph = method.adopt_interpretation(detectors[index],
                                                        scores_list[index])
                scores = None
                if dataset.graph is not None:
                    from repro.graph.metrics import evaluate_discovery

                    scores = evaluate_discovery(graph, dataset.graph,
                                                delay_tolerance=job.delay_tolerance)
                results.append(JobResult(
                    job=job, graph=graph, scores=scores,
                    duration=shared + time.perf_counter() - own))
            except Exception:
                telemetry.counter("executor.job_errors").inc()
                telemetry.event("job_error", job_id=job.job_id,
                                method=job.method)
                results.append(JobResult(
                    job=job, error=traceback.format_exc(),
                    duration=shared + time.perf_counter() - own))
    return results


def execute_batched_jobs_with_dtype(pairs: Sequence[JobPair], dtype: str,
                                    collect_telemetry: bool = False,
                                    engine_threads: Optional[int] = None
                                    ) -> List[JobResult]:
    """Pool worker entry point: adopt the submitter's engine dtype, then run.

    ``engine_threads`` re-applies the submitter's engine thread count inside
    the worker (fresh processes start with an empty engine pool), so stacked
    groups thread their training pass exactly like an in-process run would.

    With ``collect_telemetry``, the whole group runs under an in-worker
    buffering runtime whose export ships back on the group's *first* result
    (the group shares one training pass, so its telemetry is one payload).
    """
    from repro.nn.parallel import set_engine_threads
    from repro.nn.tensor import set_default_dtype
    from repro.telemetry import capture

    set_default_dtype(dtype)
    if engine_threads is not None:
        set_engine_threads(engine_threads)
    if not collect_telemetry:
        return execute_batched_jobs(pairs)
    with capture() as telemetry:
        results = execute_batched_jobs(pairs)
    if results:
        results[0].telemetry = telemetry.export()
    return results
