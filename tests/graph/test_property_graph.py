"""Property-based tests of graphs and metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    TemporalCausalGraph,
    evaluate_discovery,
    precision_recall_f1,
    structural_hamming_distance,
)


@st.composite
def graph_pairs(draw):
    """Two random graphs over the same series set."""
    n = draw(st.integers(min_value=2, max_value=6))

    def build():
        graph = TemporalCausalGraph(n)
        n_edges = draw(st.integers(min_value=0, max_value=n * n))
        for _ in range(n_edges):
            source = draw(st.integers(min_value=0, max_value=n - 1))
            target = draw(st.integers(min_value=0, max_value=n - 1))
            delay = draw(st.integers(min_value=0, max_value=4))
            if source == target and delay == 0:
                delay = 1
            graph.add_edge(source, target, delay)
        return graph

    return build(), build()


@settings(max_examples=60, deadline=None)
@given(graph_pairs())
def test_f1_is_symmetric_in_direction_of_comparison_bounds(pair):
    predicted, truth = pair
    precision, recall, f1 = precision_recall_f1(predicted, truth)
    assert 0.0 <= precision <= 1.0
    assert 0.0 <= recall <= 1.0
    assert 0.0 <= f1 <= 1.0
    # F1 is the harmonic mean: it can never exceed either component.
    assert f1 <= max(precision, recall) + 1e-12


@settings(max_examples=60, deadline=None)
@given(graph_pairs())
def test_self_comparison_is_perfect(pair):
    graph, _ = pair
    precision, recall, f1 = precision_recall_f1(graph, graph)
    if graph.n_edges:
        assert precision == recall == f1 == 1.0
    assert structural_hamming_distance(graph, graph) == 0


@settings(max_examples=60, deadline=None)
@given(graph_pairs())
def test_shd_symmetry_and_bound(pair):
    a, b = pair
    assert structural_hamming_distance(a, b) == structural_hamming_distance(b, a)
    assert structural_hamming_distance(a, b) <= a.n_series ** 2


@settings(max_examples=60, deadline=None)
@given(graph_pairs())
def test_adjacency_roundtrip_preserves_edges(pair):
    graph, _ = pair
    restored = TemporalCausalGraph.from_adjacency(graph.adjacency_matrix(),
                                                  graph.delay_matrix())
    assert restored == graph


@settings(max_examples=60, deadline=None)
@given(graph_pairs())
def test_serialization_roundtrip(pair):
    graph, _ = pair
    assert TemporalCausalGraph.from_json(graph.to_json()) == graph


@settings(max_examples=60, deadline=None)
@given(graph_pairs())
def test_evaluate_discovery_consistent_with_counts(pair):
    predicted, truth = pair
    scores = evaluate_discovery(predicted, truth)
    counts = scores.counts
    if counts.true_positive + counts.false_positive > 0:
        expected_precision = counts.true_positive / (counts.true_positive + counts.false_positive)
        assert np.isclose(scores.precision, expected_precision)
    if counts.true_positive + counts.false_negative > 0:
        expected_recall = counts.true_positive / (counts.true_positive + counts.false_negative)
        assert np.isclose(scores.recall, expected_recall)
