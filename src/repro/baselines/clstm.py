"""cLSTM — component-wise LSTM neural Granger causality (Tank et al., 2021).

One LSTM is trained per target series on short input windows of every series.
The causal score of ``j → i`` is the L2 norm of the block of the LSTM's
input-to-hidden weights that reads series ``j`` in target ``i``'s network,
encouraged to be group-sparse by a lasso penalty.  cLSTM does not produce
delay estimates (the paper accordingly omits it from Table 2).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import ScoreBasedMethod
from repro.data.windows import sliding_windows
from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers import LSTM, Linear
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class _TargetLstm(Module):
    """One target's LSTM regressor over a (batch, steps, N) input window."""

    def __init__(self, n_series: int, hidden: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.lstm = LSTM(n_series, hidden, rng=rng)
        self.readout = Linear(hidden, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        outputs, _state = self.lstm(x)
        last = outputs[:, -1, :]
        return self.readout(last).squeeze(-1)

    def input_group_norms(self) -> np.ndarray:
        """L2 norm of the input-to-hidden weights per source series → (N,)."""
        weights = self.lstm.cell.weight_ih.data
        return np.sqrt((weights ** 2).sum(axis=1))

    def input_group_lasso(self) -> Tensor:
        weights = self.lstm.cell.weight_ih
        squared = (weights * weights).sum(axis=1)
        return ((squared + 1e-12) ** 0.5).sum()


class CLstm(ScoreBasedMethod):
    """Neural Granger causality with per-target LSTMs and sparse input weights."""

    name = "clstm"

    def __init__(self, sequence_length: int = 6, hidden: int = 8, epochs: int = 40,
                 learning_rate: float = 1e-2, sparsity: float = 5e-3,
                 max_windows: int = 256, **kwargs) -> None:
        super().__init__(**kwargs)
        self.sequence_length = sequence_length
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.sparsity = sparsity
        self.max_windows = max_windows
        self.models_: List[_TargetLstm] = []

    def _prepare(self, values: np.ndarray):
        """Input windows (batch, steps, N) and next-step targets (batch, N)."""
        windows = sliding_windows(values, self.sequence_length + 1, stride=1)
        if windows.shape[0] > self.max_windows:
            picks = np.linspace(0, windows.shape[0] - 1, self.max_windows).astype(int)
            windows = windows[picks]
        inputs = np.transpose(windows[:, :, :-1], (0, 2, 1))
        targets = windows[:, :, -1]
        return inputs, targets

    def _fit(self, values: np.ndarray) -> None:
        rng = init.default_rng(self.seed)
        n_series = values.shape[0]
        inputs, targets = self._prepare(values)
        input_tensor = Tensor(inputs)
        self.models_ = []
        for target in range(n_series):
            model = _TargetLstm(n_series, self.hidden, rng=rng)
            optimizer = Adam(model.parameters(), lr=self.learning_rate)
            target_tensor = Tensor(targets[target] if targets.ndim == 1 else targets[:, target])
            for _epoch in range(self.epochs):
                optimizer.zero_grad()
                prediction = model(input_tensor)
                loss = F.mse_loss(prediction, target_tensor)
                loss = loss + self.sparsity * model.input_group_lasso()
                loss.backward()
                optimizer.step()
            self.models_.append(model)

    def causal_scores(self, values: np.ndarray) -> np.ndarray:
        self._fit(values)
        n_series = values.shape[0]
        scores = np.zeros((n_series, n_series))
        for target, model in enumerate(self.models_):
            scores[target] = model.input_group_norms()
        return scores
