"""Fused no-autograd inference engine for the CausalFormer pipeline.

Every non-gradient pass of this reproduction — ``Trainer._evaluate``
validation scoring, experiment-table evaluation, ``predict`` and the
causality detector's interpretation forward — used to walk the full autograd
:class:`~repro.nn.tensor.Tensor` machinery under ``no_grad()``, allocating
fresh node objects and temporaries for every window chunk.  This module
evaluates the same pipeline — causal convolution (stride-trick windows +
batched GEMM with the Eq. 4 right-shift folded in), embedding + Q/K
projection + masked tempered softmax (Eq. 5), attention combination
(Eq. 6–7), the MLP tail (Eq. 8) and the Eq. 9 loss — in pure numpy, writing
every intermediate into a reusable :class:`ScratchArena` so steady-state
evaluation performs no per-call heap allocation of large temporaries.

Numerical contract: for a given model the fused forward replays the *exact*
operation sequence of the autograd fast path (same GEMM shapes, same
reduction orders), so its results are bit-for-bit identical in float64 and
within BLAS noise in float32.  With ``set_engine_threads(n)`` (see
:mod:`repro.nn.parallel`) the dominant ops chunk their independent leading
axes — the ``(b, i)`` convolution/attention batches — across a shared
worker pool; each chunk performs exactly the per-slice work of the serial
op on disjoint output slices, so threaded results stay bit-identical in
both dtypes.  The detector-facing
:meth:`InferenceEngine.interpretation_forward` instead replays the autograd
*cache* path (per-head outputs, 3-D linears, einsum head combination),
whose operation sequence differs slightly from the fast path, and
:meth:`InferenceEngine.interpretation_gradients` hand-evaluates the exact
backward of that graph for a batch of target series at once — the detector
no longer needs the autograd graph at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.contracts import hot_path
from .parallel import get_engine_threads, parallel_for, slice_axis


class ScratchSpace:
    """One namespace of scratch buffers and derived views.

    A space belongs to a fixed workload shape (one ``(B, N, T, dtype)``
    combination), so buffer names map to stable arrays and the strided
    views derived from them (window views, transposes, reshapes) can be
    constructed once and replayed — view construction is pure Python
    overhead on a hot path this small.
    """

    __slots__ = ("_buffers", "_views")

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        self._views: Dict[str, np.ndarray] = {}

    # repro: allow(dtype-purity): scratch default is the f64 reference dtype
    def take(self, name: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        buffer = self._buffers.get(name)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            buffer = self._buffers[name] = np.zeros(shape, dtype=dtype)
            self._views.clear()
        return buffer

    def view(self, name: str, factory) -> np.ndarray:
        """A cached derived view (``factory`` builds it on first use)."""
        cached = self._views.get(name)
        if cached is None:
            cached = self._views[name] = factory()
        return cached

    @property
    def nbytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def buffers(self):
        return self._buffers.values()


class ScratchArena:
    """A pool of reusable scratch buffers, grouped into namespaces.

    ``take`` serves one-off keys; ``space`` returns a :class:`ScratchSpace`
    for a workload shape, where buffers *and* their derived strided views
    are cached.  Buffers are allocated zero-filled and are dirty afterwards
    — each call site owns its keys and fully overwrites what it reads —
    with one deliberate exception: left-padding buffers rely on the
    allocation zero-fill and the call site never writing the pad region, so
    the zeros persist across reuses.
    """

    __slots__ = ("_buffers", "_spaces")

    def __init__(self) -> None:
        self._buffers: Dict[tuple, np.ndarray] = {}
        self._spaces: Dict[tuple, ScratchSpace] = {}

    # repro: allow(dtype-purity): scratch default is the f64 reference dtype
    def take(self, name: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        key = (name, shape)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.dtype != dtype:
            buffer = self._buffers[key] = np.zeros(shape, dtype=dtype)
        return buffer

    def space(self, key: tuple) -> ScratchSpace:
        space = self._spaces.get(key)
        if space is None:
            space = self._spaces[key] = ScratchSpace()
        return space

    def __len__(self) -> int:
        return len(self._buffers) + sum(
            len(space._buffers) for space in self._spaces.values())

    @property
    def nbytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._buffers.values()) + \
            sum(space.nbytes for space in self._spaces.values())

    def buffer_ids(self) -> Tuple[int, ...]:
        """Identities of the held buffers (tests assert steady-state reuse)."""
        identifiers = [id(buffer) for buffer in self._buffers.values()]
        for space in self._spaces.values():
            identifiers.extend(id(buffer) for buffer in space.buffers())
        return tuple(sorted(identifiers))

    def clear(self) -> None:
        self._buffers.clear()
        self._spaces.clear()


@dataclass
class InterpretationForward:
    """Everything the causality detector needs from one fused cache forward.

    ``cache`` is a :class:`~repro.core.transformer.TransformerCache`-shaped
    object consumed by regression relevance propagation; the remaining
    fields are the forward internals the hand-derived multi-target backward
    (:meth:`InferenceEngine.interpretation_gradients`) reads.  All arrays
    are views into the engine's arena — valid until the next engine call.
    """

    cache: object
    attention_probs: np.ndarray        # (h, B, N, N)
    slope: np.ndarray                  # (B, N, d_ffn) leaky-ReLU slopes
    a_bihj: np.ndarray                 # (B, i, h, j) attention, GEMM layout
    v_bijt: np.ndarray                 # (B, i, j, t) values, GEMM layout
    windows_flat: np.ndarray           # (N, B·T, K) causal windows, GEMM layout
    batch: int = 0
    extras: dict = field(default_factory=dict)


@hot_path
def max_last_keepdims(values: np.ndarray,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
    """Last-axis max (keepdims) — chained over columns for short rows.

    The maximum is exact whichever way it is reduced, so short rows use one
    vectorised ``np.maximum`` per column instead of numpy's per-row
    reduction machinery (~6× faster at this project's row lengths), with
    bit-identical output.  Shared by the inference softmax and the stacked
    trainer so the threshold lives in exactly one place.
    """
    n = values.shape[-1]
    if out is None:
        # repro: allow(hot-path-alloc): cold fallback; engines always pass out=
        out = np.empty(values.shape[:-1] + (1,), dtype=values.dtype)
    if 1 < n <= 16:
        flat = out[..., 0]
        np.maximum(values[..., 0], values[..., 1], out=flat)
        for column in range(2, n):
            np.maximum(flat, values[..., column], out=flat)
    else:
        np.max(values, axis=-1, keepdims=True, out=out)
    return out


@hot_path
def sum_last_keepdims(values: np.ndarray,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
    """Last-axis sum (keepdims) matching numpy's summation order bit for bit.

    numpy reduces rows of fewer than eight elements sequentially, which a
    left-to-right chained ``np.add`` over the columns replicates exactly;
    from eight elements on it switches to pairwise blocking, so longer rows
    keep ``np.sum``.  If a numpy release ever moves that threshold, this is
    the single place to track it.
    """
    n = values.shape[-1]
    if out is None:
        # repro: allow(hot-path-alloc): cold fallback; engines always pass out=
        out = np.empty(values.shape[:-1] + (1,), dtype=values.dtype)
    if 1 < n < 8:
        flat = out[..., 0]
        np.add(values[..., 0], values[..., 1], out=flat)
        for column in range(2, n):
            np.add(flat, values[..., column], out=flat)
    else:
        np.sum(values, axis=-1, keepdims=True, out=out)
    return out


@hot_path
def _leaky_slope(space: ScratchSpace, name: str, pre_activation: np.ndarray,
                 negative_slope: float) -> np.ndarray:
    """``np.where(x > 0, 1, negative_slope)`` without temporaries.

    The constants are written exactly (``copyto`` with a mask), matching the
    autograd path's ``np.where`` selection bit for bit.
    """
    dtype = pre_activation.dtype
    slope = space.take(name, pre_activation.shape, dtype)
    mask = space.take(name + ".mask", pre_activation.shape, np.bool_)
    np.greater(pre_activation, 0, out=mask)
    slope.fill(dtype.type(negative_slope))
    np.copyto(slope, dtype.type(1.0), where=mask)
    return slope


def _loss_penalty_terms(model, arena: ScratchArena,
                        prefix: str = "") -> List[float]:
    """One model's Eq. 9 L1 penalty contributions (see ``_penalty_terms``).

    ``prefix`` namespaces the arena keys so several models (the stacked
    engine evaluates ``K`` of them against one arena) never share penalty
    scratch buffers of coincidentally equal size.
    """
    config = model.config
    pairs = []
    if config.lambda_kernel > 0:
        pairs.append((config.lambda_kernel, model.convolution.kernel))
    if config.lambda_mask > 0:
        pairs.extend((config.lambda_mask, head.mask)
                     for head in model.attention.heads)
    groups: Dict[float, List[np.ndarray]] = {}
    for coefficient, tensor in pairs:
        groups.setdefault(coefficient, []).append(tensor.data.ravel())
    terms: List[float] = []
    for group_index, (coefficient, arrays) in enumerate(groups.items()):
        if len(arrays) == 1:
            flat = arrays[0]
        else:
            total = sum(array.size for array in arrays)
            flat = arena.take(f"{prefix}loss.penalty{group_index}", (total,),
                              arrays[0].dtype)
            offset = 0
            for array in arrays:
                flat[offset:offset + array.size] = array
                offset += array.size
        magnitude = arena.take(f"{prefix}loss.abs{group_index}", flat.shape,
                               flat.dtype)
        np.abs(flat, out=magnitude)
        terms.append(coefficient * float(magnitude.sum()))
    return terms


def _timed_op(op: str, bound: Callable, hook: Callable) -> Callable:
    """Wrap a bound op method so each call reports its wall time to ``hook``.

    The clock runs on the *dispatching* thread: ops that fan work out
    through :func:`repro.nn.parallel.parallel_for` block the caller until
    every chunk drains, so the recorded wall time spans the op's full
    (possibly parallel) execution and per-op timings stay meaningful at any
    engine thread count.
    """
    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        result = bound(*args, **kwargs)
        hook(op, time.perf_counter() - start)
        return result
    return wrapper


def profiling_hook(telemetry) -> Callable[[str, float], None]:
    """A per-op wall-time hook recording ``engine.<op>_seconds`` histograms.

    Resolves each op's :class:`~repro.telemetry.metrics.Histogram` once and
    caches it, so a steady-state observation is one dict probe plus the
    histogram's own lock-protected update — no per-call f-string
    formatting or registry round-trip.  Histogram state is guarded by the
    registry lock, so one hook instance can safely serve several engines
    and trainer threads concurrently.
    """
    cache: Dict[str, object] = {}

    def hook(op: str, seconds: float) -> None:
        histogram = cache.get(op)
        if histogram is None:
            # repro: allow(telemetry-guard): cold path; resolved once, cached
            histogram = cache[op] = telemetry.histogram(
                f"engine.{op}_seconds")
        histogram.observe(seconds)

    return hook


class ProfilingSeam:
    """Optional per-op wall-time hook over an engine's fused building blocks.

    ``enable_profiling(hook)`` shadows each method named in ``_PROFILED_OPS``
    with an instance-attribute wrapper that calls
    ``hook(op_name, seconds)`` after every invocation;
    ``disable_profiling()`` pops the shadows so the *class* methods run
    again.  Because the hook lives entirely in the instance ``__dict__``,
    an engine that never enables profiling pays nothing — not even an
    ``if``— on the hot path.

    Hooks must be safe to call from any thread that drives the engine:
    :func:`profiling_hook` (cached histograms over the lock-protected
    metrics registry) is the canonical implementation.  Threaded ops are
    timed on the dispatching thread (see :func:`_timed_op`), so a wrapper
    never fires concurrently with itself for a single engine instance.
    """

    _PROFILED_OPS: Tuple[str, ...] = ()

    def enable_profiling(self, hook: Callable[[str, float], None]) -> None:
        self.disable_profiling()
        for name in self._PROFILED_OPS:
            bound = getattr(type(self), name).__get__(self)
            setattr(self, name, _timed_op(name.lstrip("_"), bound, hook))

    def disable_profiling(self) -> None:
        for name in self._PROFILED_OPS:
            self.__dict__.pop(name, None)

    @property
    def profiling_enabled(self) -> bool:
        return any(name in self.__dict__ for name in self._PROFILED_OPS)


class InferenceEngine(ProfilingSeam):
    """Forward-only CausalFormer evaluator over a scratch-buffer arena.

    Parameters
    ----------
    model:
        A :class:`~repro.core.transformer.CausalityAwareTransformer` (or any
        object with the same ``embedding`` / ``convolution`` / ``attention``
        / ``feed_forward`` / ``output_layer`` / ``config`` attributes).
    arena:
        Optional shared :class:`ScratchArena`; a private one is created when
        omitted.

    The engine re-reads the model's parameters on every public call (they
    change between validation passes during training), staging the fused
    weight layouts (concatenated Q/K projections, scaled mask modulation,
    broadcast single-kernel) into arena buffers.
    """

    _PROFILED_OPS = ("_causal_windows", "_convolution", "_attention_probs",
                     "_combine_layout")

    def __init__(self, model, arena: Optional[ScratchArena] = None) -> None:
        self.model = model
        self.arena = arena if arena is not None else ScratchArena()

    # ------------------------------------------------------------------ #
    # Weight staging
    # ------------------------------------------------------------------ #
    @property
    def dtype(self):
        return self.model.embedding.weight.data.dtype

    def _stage(self) -> dict:
        """Stage the fused weight layouts for the current parameter values."""
        model = self.model
        arena = self.arena
        attention = model.attention
        dtype = self.dtype
        n_heads = attention.n_heads
        d_qk = attention.query_weights[0].data.shape[-1]
        d_model = model.embedding.weight.data.shape[-1]

        weights = attention.query_weights + attention.key_weights
        biases = attention.query_biases + attention.key_biases
        weight_flat = arena.take("stage.weight_flat",
                                 (d_model, 2 * n_heads * d_qk), dtype)
        bias_flat = arena.take("stage.bias_flat", (2 * n_heads * d_qk,), dtype)
        for index, (weight, bias) in enumerate(zip(weights, biases)):
            columns = slice(index * d_qk, (index + 1) * d_qk)
            weight_flat[:, columns] = weight.data
            bias_flat[columns] = bias.data

        # ``scale`` is a float64 numpy scalar, so the autograd path's
        # ``mask_stack * scale`` promotes the modulation — and everything
        # downstream of the attention scores — to float64 even under the
        # float32 engine.  Replicate that promotion exactly.
        scale = 1.0 / (attention.temperature * np.sqrt(attention.d_qk))
        n = model.convolution.n_series
        modulation = arena.take("stage.modulation", (n_heads, 1, n, n),
                                np.float64)
        for index, mask in enumerate(attention.mask_parameters):
            modulation[index, 0] = mask.data
        modulation *= scale

        convolution = model.convolution
        if convolution.single_kernel:
            kernel_eff = arena.take("stage.kernel",
                                    (n, n, convolution.window), dtype)
            np.multiply(convolution.kernel.data, convolution._ones_broadcast.data,
                        out=kernel_eff)
        else:
            kernel_eff = convolution.kernel.data

        return {
            "dtype": dtype,
            "n_heads": n_heads,
            "d_qk": d_qk,
            "weight_flat": weight_flat,
            "bias_flat": bias_flat,
            "modulation": modulation,
            "kernel_eff": kernel_eff,
            "scale_array": convolution._scale_array,
            "embed_weight": model.embedding.weight.data,
            "embed_bias": model.embedding.bias.data,
            "w1": model.feed_forward.w1.data, "b1": model.feed_forward.b1.data,
            "w2": model.feed_forward.w2.data, "b2": model.feed_forward.b2.data,
            "w3": model.output_layer.weight.data, "b3": model.output_layer.bias.data,
            "negative_slope": model.feed_forward.negative_slope,
            "w_output": attention.w_output.data,
        }

    # ------------------------------------------------------------------ #
    # Fused building blocks (fast-path operation order)
    # ------------------------------------------------------------------ #
    @hot_path
    def _causal_windows(self, space: ScratchSpace, x: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Left-zero-pad ``x`` and return ``(padded, windows_flat)``.

        ``windows_flat`` is the ``(N, B·T, K)`` contiguous GEMM layout of
        the causal window view (the exact array the fused autograd
        ``causal_conv`` builds).
        """
        batch, n, window = x.shape
        padded = space.take("conv.pad", (batch, n, 2 * window), x.dtype)
        padded[..., window:] = x
        flat = space.take("conv.windows_flat", (n, batch * window, window),
                          x.dtype)
        source = space.view("conv.window_view", lambda: np.lib.stride_tricks
                            .sliding_window_view(padded, window, axis=-1)
                            [..., 1:, :].transpose(1, 0, 2, 3))
        target = space.view("conv.windows_flat.4d",
                            lambda: flat.reshape(n, batch, window, window))

        def body(lo: int, hi: int) -> None:
            np.copyto(target[lo:hi], source[lo:hi])

        parallel_for(body, n, outputs=((target, 0),))
        return padded, flat

    @hot_path
    def _convolution(self, space: ScratchSpace, x: np.ndarray, stage: dict,
                     legacy_layout: bool = False
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused causal convolution with the Eq. 4 right-shift (fast path).

        Returns ``(values, windows_flat)`` — the convolution output and the
        ``(N, B·T, K)`` window layout (reused by the detector backward).

        ``legacy_layout`` allocates the output in the autograd conv's memory
        order (source-major — its ``transposed_view * scale`` inherits the
        view's layout), which einsum summation order — hence detector
        bit-identity — depends on.  The evaluation path only ever reads the
        values through contiguous re-layouts, so it uses a C-ordered buffer.
        """
        batch, n, window = x.shape
        kernel = stage["kernel_eff"]
        cdtype = np.result_type(x.dtype, kernel.dtype)
        _padded, flat = self._causal_windows(space, x)
        k_out = kernel.shape[1]
        raw = space.take("conv.raw", (n, batch * window, k_out), cdtype)
        kernel_t = kernel.transpose(0, 2, 1)

        def matmul_body(lo: int, hi: int) -> None:
            np.matmul(flat[lo:hi], kernel_t[lo:hi], out=raw[lo:hi])

        parallel_for(matmul_body, n, outputs=((raw, 0),))
        if legacy_layout:
            buffer = space.take("conv.values", (n, batch, window, k_out),
                                cdtype)
            values = space.view("conv.values.t",
                                lambda: buffer.transpose(1, 0, 3, 2))
        else:
            values = space.take("conv.values", (batch, n, k_out, window),
                                cdtype)
        raw_t = space.view("conv.raw.t",
                           lambda: raw.reshape(n, batch, window, k_out)
                           .transpose(1, 0, 3, 2))
        scale_array = stage["scale_array"]

        def scale_body(lo: int, hi: int) -> None:
            np.multiply(raw_t[lo:hi], scale_array, out=values[lo:hi])

        parallel_for(scale_body, batch, outputs=((values, 0),))
        # Diagonal right-shift (Eq. 4), matching diagonal-copy-then-assign.
        shift = space.take("conv.shift", (batch, window), cdtype)
        for index in range(n):
            np.copyto(shift, values[:, index, index, :])
            values[:, index, index, 1:] = shift[:, :-1]
            values[:, index, index, 0] = 0.0
        return values, flat

    @hot_path
    def _attention_probs(self, space: ScratchSpace, x: np.ndarray, stage: dict,
                         keep_scores: bool = False
                         ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Embedding → all-head Q/K projection → masked tempered softmax.

        Returns ``(probabilities, embedding_2d, scores)`` where ``scores``
        (the pre-softmax masked scores) is only materialised when
        ``keep_scores`` — the detector cache wants them, the fast path does
        not.
        """
        batch, n, window = x.shape
        n_heads, d_qk = stage["n_heads"], stage["d_qk"]
        d_model = stage["embed_weight"].shape[-1]
        cdtype = np.result_type(x.dtype, stage["embed_weight"].dtype)
        x2d = x.reshape(batch * n, window)
        emb = space.take("att.emb", (batch * n, d_model), cdtype)
        np.matmul(x2d, stage["embed_weight"], out=emb)
        emb += stage["embed_bias"]
        proj = space.take("att.proj", (batch * n, 2 * n_heads * d_qk), cdtype)
        np.matmul(emb, stage["weight_flat"], out=proj)
        proj += stage["bias_flat"]
        qk = space.take("att.qk", (2 * n_heads, batch, n, d_qk), cdtype)
        proj_t = space.view("att.proj.t",
                            lambda: proj.reshape(batch, n, 2 * n_heads, d_qk)
                            .transpose(2, 0, 1, 3))
        raw = space.take("att.raw", (n_heads, batch, n, n), cdtype)
        k_t = space.view("att.k.t",
                         lambda: qk[n_heads:].transpose(0, 1, 3, 2))
        # float64 from here on (see the modulation note in ``_stage``).
        probs = space.take("att.probs", (n_heads, batch, n, n), np.float64)
        query = qk[:n_heads]
        modulation = stage["modulation"]

        # One round over the batch axis: the layout copy, per-(h, b) score
        # GEMMs, and the modulation multiply all chunk along axis 1
        # (``modulation`` broadcasts over it and stays unsliced).
        def body(lo: int, hi: int) -> None:
            np.copyto(qk[:, lo:hi], proj_t[:, lo:hi])
            np.matmul(query[:, lo:hi], k_t[:, lo:hi], out=raw[:, lo:hi])
            np.multiply(raw[:, lo:hi], modulation, out=probs[:, lo:hi])

        parallel_for(body, batch, outputs=((qk, 1), (raw, 1), (probs, 1)))
        scores = None
        if keep_scores:
            scores = space.take("att.scores", (n_heads, batch, n, n),
                                np.float64)
            np.copyto(scores, probs)
        self._softmax_inplace(space, probs)
        return probs, emb, scores

    @hot_path
    def _softmax_inplace(self, space: ScratchSpace, probs: np.ndarray) -> None:
        """Tempered-softmax normalisation along the last axis, in place.

        Bit-identical to ``x -= x.max(…); exp; x /= x.sum(…)`` — see
        :func:`max_last_keepdims` / :func:`sum_last_keepdims` for why the
        chained reductions are exact replicas.  Normalisation is row-wise,
        so the leading axes chunk freely: ``probs`` is always a contiguous
        arena buffer, letting the rows flatten to one parallel axis.
        """
        extreme = space.take("att.max", probs.shape[:-1] + (1,), probs.dtype)
        total = space.take("att.sum", probs.shape[:-1] + (1,), probs.dtype)
        flat = probs.reshape((-1,) + probs.shape[-2:])
        ext = extreme.reshape((-1,) + extreme.shape[-2:])
        tot = total.reshape((-1,) + total.shape[-2:])

        def body(lo: int, hi: int) -> None:
            rows = flat[lo:hi]
            rows -= max_last_keepdims(rows, out=ext[lo:hi])
            np.exp(rows, out=rows)
            rows /= sum_last_keepdims(rows, out=tot[lo:hi])

        parallel_for(body, flat.shape[0],
                     outputs=((flat, 0), (ext, 0), (tot, 0)))

    @hot_path
    def _combine_layout(self, space: ScratchSpace, probs: np.ndarray,
                        values: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Contiguous GEMM layouts + per-head application (Eq. 6)."""
        n_heads, batch, n, _ = probs.shape
        window = values.shape[-1]
        out_dtype = np.result_type(probs.dtype, values.dtype)
        a_bihj = space.take("comb.a", (batch, n, n_heads, n), probs.dtype)
        probs_t = space.view("comb.probs.t",
                             lambda: probs.transpose(1, 2, 0, 3))
        # The autograd path multiplies float64 attention with model-dtype
        # values, which numpy resolves by casting the values up internally
        # on every call; staging the cast copy once is bit-identical and
        # skips the hidden per-call buffer.
        v_bijt = space.take("comb.v", (batch, n, n, window), out_dtype)
        values_t = space.view("comb.values.t",
                              lambda: values.transpose(0, 2, 1, 3))
        head_outputs = space.take("comb.ho", (batch, n, n_heads, window),
                                  out_dtype)

        def body(lo: int, hi: int) -> None:
            np.copyto(a_bihj[lo:hi], probs_t[lo:hi])
            np.copyto(v_bijt[lo:hi], values_t[lo:hi])
            np.matmul(a_bihj[lo:hi], v_bijt[lo:hi], out=head_outputs[lo:hi])

        parallel_for(body, batch,
                     outputs=((a_bihj, 0), (v_bijt, 0), (head_outputs, 0)))
        return a_bihj, v_bijt, head_outputs

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Fused forward pass; returns the ``(B, N, T)`` prediction buffer.

        ``x`` must already be C-contiguous in the model dtype.  The returned
        array is an arena view, valid until the next engine call.
        """
        stage = self._stage()
        return self._forward(x, stage)

    @hot_path
    def _forward(self, x: np.ndarray, stage: dict) -> np.ndarray:
        batch, n, window = x.shape
        space = self.arena.space(("eval", x.shape, x.dtype.str))
        values, _flat = self._convolution(space, x, stage)
        probs, _emb, _scores = self._attention_probs(space, x, stage)
        _a, _v, head_outputs = self._combine_layout(space, probs, values)
        # Head combination replays np.tensordot(head_outputs, w_output,
        # axes=([2], [0])): transpose-copy to (B·N·T, h), then one GEMV-dot.
        n_heads = stage["n_heads"]
        dtype = head_outputs.dtype
        at = space.take("comb.at", (batch, n, window, n_heads), dtype)
        ho_t = space.view("comb.ho.t",
                          lambda: head_outputs.transpose(0, 1, 3, 2))
        parallel_for(lambda lo, hi: np.copyto(at[lo:hi], ho_t[lo:hi]), batch,
                     outputs=((at, 0),))
        combined = space.take("comb.out", (batch * n * window, 1), dtype)
        np.dot(space.view("comb.at.2d", lambda: at.reshape(-1, n_heads)),
               stage["w_output"].reshape(n_heads, 1).astype(dtype, copy=False),
               out=combined)
        # Fused MLP tail (Eq. 8 + output layer), fast-path 2-D layout.
        x2d = space.view("comb.out.2d",
                         lambda: combined.reshape(batch * n, window))
        d_ffn = stage["w1"].shape[-1]
        hidden = space.take("mlp.hidden", (batch * n, d_ffn), dtype)
        np.matmul(x2d, stage["w1"], out=hidden)
        hidden += stage["b1"]
        slope = _leaky_slope(space, "mlp.slope", hidden, stage["negative_slope"])
        hidden *= slope
        ffn = space.take("mlp.ffn", (batch * n, window), dtype)
        np.matmul(hidden, stage["w2"], out=ffn)
        ffn += stage["b2"]
        out2d = space.take("mlp.out", (batch * n, window), dtype)
        np.matmul(ffn, stage["w3"], out=out2d)
        out2d += stage["b3"]
        return space.view("mlp.out.3d",
                          lambda: out2d.reshape(batch, n, window))

    # ------------------------------------------------------------------ #
    # Loss (paper Eq. 9) and evaluation
    # ------------------------------------------------------------------ #
    def _penalty_terms(self) -> List[float]:
        """The loss's L1 penalty contributions, one float per coefficient group.

        Groups equal-coefficient penalties exactly like the autograd loss
        node (insertion order: kernel first, then the per-head masks), so
        adding the returned floats in order reproduces its accumulation
        sequence bit for bit.
        """
        return _loss_penalty_terms(self.model, self.arena)

    @hot_path
    def _windowed_diff(self, prediction: np.ndarray, target: np.ndarray,
                       start_slot: int = 1) -> np.ndarray:
        diff_shape = prediction.shape[:-1] + (prediction.shape[-1] - start_slot,)
        diff = self.arena.take("loss.diff", diff_shape, prediction.dtype)
        np.subtract(prediction[..., start_slot:], target[..., start_slot:],
                    out=diff)
        return diff

    @staticmethod
    def _mse_plus_penalties(diff: np.ndarray, penalties: List[float]) -> float:
        flat = diff.reshape(-1)
        value = np.dot(flat, flat) / diff.size
        for term in penalties:
            value = value + term
        return float(np.asarray(value, dtype=diff.dtype))

    def _loss_value(self, prediction: np.ndarray, target: np.ndarray,
                    start_slot: int = 1) -> float:
        """Windowed MSE + grouped L1 penalties, replaying the fused loss node."""
        diff = self._windowed_diff(prediction, target, start_slot)
        return self._mse_plus_penalties(diff, self._penalty_terms())

    def _as_model_batch(self, windows: np.ndarray) -> np.ndarray:
        """Replay the Tensor-construction casts of the autograd path.

        The autograd forward first builds ``Tensor(x)`` (casting to the
        *engine default* dtype), then — when that differs from the model
        dtype — rebuilds ``Tensor(x.astype(model_dtype))``, whose
        constructor casts **back** to the default dtype.  Net effect: the
        batch always carries the default dtype, with values rounded through
        the model dtype when that is the narrower type.  The fused ops then
        run in ``result_type(batch, parameter)`` like numpy's promotion
        does; replicating the exact chain keeps mixed-dtype configurations
        (e.g. a float32 model probed under a float64 session) bit-identical.
        """
        from repro.nn import tensor as T

        default = T.get_default_dtype()
        arr = np.asarray(windows, dtype=default)
        dtype = self.dtype
        if arr.dtype != dtype:
            arr = np.asarray(arr.astype(dtype), dtype=default)
        if arr.ndim == 2:
            arr = arr[None, :, :]
        return np.ascontiguousarray(arr)

    def loss(self, windows: np.ndarray) -> float:
        """Eq. 9 training loss of the model on a batch of windows."""
        stage = self._stage()
        batch = self._as_model_batch(windows)
        return self._loss_value(self._forward(batch, stage), batch)

    #: largest ``B·N²·T`` intermediate (elements) evaluated as one batch;
    #: larger window sets fall back to the chunk-by-chunk loop to keep peak
    #: memory proportional to the batch size.
    FULL_BATCH_ELEMENT_LIMIT = 4_000_000

    def evaluate(self, windows: np.ndarray, batch_size: int) -> float:
        """Window-weighted mean loss over ``batch_size`` chunks.

        Bit-for-bit equivalent to the chunked autograd ``Trainer._evaluate``
        it replaces, at zero steady-state allocation.  When the ``(B, N, N,
        T)`` convolution intermediate fits the memory budget, the whole
        window set runs as one forward pass — identical rows, one GEMM
        dispatch instead of one per chunk — and the chunk losses are then
        read off slices of the shared windowed-difference buffer, preserving
        the chunk-weighted mean exactly.
        """
        stage = self._stage()
        windows = np.asarray(windows)
        if windows.ndim == 3 and windows.shape[0] and (
                windows.shape[0] * windows.shape[1] ** 2 * windows.shape[2]
                <= self.FULL_BATCH_ELEMENT_LIMIT):
            batch = self._as_model_batch(windows)
            diff = self._windowed_diff(self._forward(batch, stage), batch)
            penalties = self._penalty_terms()
            total = 0.0
            count = 0
            for start in range(0, len(batch), batch_size):
                chunk = diff[start:start + batch_size]
                total += self._mse_plus_penalties(chunk, penalties) * len(chunk)
                count += len(chunk)
            return total / count
        total = 0.0
        count = 0
        for start in range(0, windows.shape[0], batch_size):
            chunk = self._as_model_batch(windows[start:start + batch_size])
            loss = self._loss_value(self._forward(chunk, stage), chunk)
            total += loss * len(chunk)
            count += len(chunk)
        return total / count if count else float("nan")

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Numpy-in / numpy-out prediction (returns an owned copy)."""
        stage = self._stage()
        squeeze = np.ndim(windows) == 2
        # repro: allow(dtype-purity): ingestion cast to the f64 reference
        batch = self._as_model_batch(np.asarray(windows, dtype=float))
        prediction = self._forward(batch, stage)
        return prediction[0].copy() if squeeze else prediction.copy()

    # ------------------------------------------------------------------ #
    # Detector support: cache-path forward + hand-derived backward
    # ------------------------------------------------------------------ #
    def interpretation_forward(self, windows: np.ndarray) -> InterpretationForward:
        """One fused forward replaying the autograd *cache* path exactly.

        Fills a :class:`~repro.core.transformer.TransformerCache` for
        relevance propagation plus the internals the multi-target backward
        needs.  Shared by every target series — the detector used to rerun
        this once per target.
        """
        from repro.core.attention import AttentionHeadCache
        from repro.core.transformer import TransformerCache

        arena = self.arena
        stage = self._stage()
        x = self._as_model_batch(windows)
        batch, n, window = x.shape
        n_heads = stage["n_heads"]
        space = arena.space(("cache", x.shape, x.dtype.str))

        values, windows_flat = self._convolution(space, x, stage,
                                                 legacy_layout=True)
        cdtype = np.result_type(x.dtype, stage["embed_weight"].dtype)
        # Cache path embedding: 3-D linear (B, N, T) @ (T, d) + bias.
        emb3d = arena.take("cache.emb", (batch, n, stage["embed_weight"].shape[-1]),
                           cdtype)
        np.matmul(x, stage["embed_weight"], out=emb3d)
        emb3d += stage["embed_bias"]
        # Q/K projection + masked scores + softmax, keeping the pre-softmax
        # scores for the cache.  The projection input is the embedding here
        # (cache path), not the raw windows.
        proj = arena.take("att.proj", (batch * n, 2 * n_heads * stage["d_qk"]),
                          cdtype)
        np.matmul(emb3d.reshape(batch * n, -1), stage["weight_flat"], out=proj)
        proj += stage["bias_flat"]
        qk = arena.take("att.qk", (2 * n_heads, batch, n, stage["d_qk"]), cdtype)
        np.copyto(qk, proj.reshape(batch, n, 2 * n_heads, stage["d_qk"])
                  .transpose(2, 0, 1, 3))
        q_data, k_data = qk[:n_heads], qk[n_heads:]
        raw = arena.take("att.raw", (n_heads, batch, n, n), cdtype)
        np.matmul(q_data, k_data.transpose(0, 1, 3, 2), out=raw)
        # float64 from the modulation on (see ``_stage``), as in autograd.
        probs = arena.take("att.probs", (n_heads, batch, n, n), np.float64)
        np.multiply(raw, stage["modulation"], out=probs)
        scores = arena.take("att.scores", (n_heads, batch, n, n), np.float64)
        np.copyto(scores, probs)
        self._softmax_inplace(space, probs)

        a_bihj, v_bijt, head_outputs = self._combine_layout(space, probs,
                                                            values)
        dtype = head_outputs.dtype
        ho_hbit = arena.take("cache.ho", (n_heads, batch, n, window), dtype)
        np.copyto(ho_hbit, head_outputs.transpose(2, 0, 1, 3))
        combined = arena.take("cache.combined", (batch, n, window), dtype)
        np.einsum("hbit,h->bit", ho_hbit,
                  stage["w_output"].astype(dtype, copy=False), out=combined)

        # Cache-path MLP: 3-D linears with explicit intermediates.
        d_ffn = stage["w1"].shape[-1]
        hidden = arena.take("cache.hidden", (batch, n, d_ffn), dtype)
        np.matmul(combined, stage["w1"], out=hidden)
        hidden += stage["b1"]
        slope = _leaky_slope(space, "cache.slope", hidden,
                             stage["negative_slope"])
        activated = arena.take("cache.activated", (batch, n, d_ffn), dtype)
        np.multiply(hidden, slope, out=activated)
        ffn_output = arena.take("cache.ffn", (batch, n, window), dtype)
        np.matmul(activated, stage["w2"], out=ffn_output)
        ffn_output += stage["b2"]
        prediction = arena.take("cache.out", (batch, n, window), dtype)
        np.matmul(ffn_output, stage["w3"], out=prediction)
        prediction += stage["b3"]

        # Pre-shift convolution values for relevance propagation (the cache
        # path recomputes them in float64 via einsum, independent of dtype).
        # repro: allow(dtype-purity): relevance propagation is f64 by spec
        x64 = np.asarray(x, dtype=float)
        padded64 = arena.take("cache.pad64", (batch, n, 2 * window), np.float64)
        padded64[..., window:] = x64
        view64 = np.lib.stride_tricks.sliding_window_view(
            padded64, window, axis=-1)[..., 1:, :]                  # (B,N,T,K)
        values_pre = arena.take("cache.values_pre", (batch, n, n, window),
                                np.result_type(np.float64, x.dtype))
        np.einsum("bitk,ijk->bijt", view64, stage["kernel_eff"], out=values_pre)
        values_pre *= stage["scale_array"]

        head_caches = [
            AttentionHeadCache(
                attention=None, head_output=None,
                attention_data=probs[index],
                head_output_data=ho_hbit[index],
                scores_data=scores[index],
            )
            for index in range(n_heads)
        ]
        cache = TransformerCache(
            inputs=x,
            embedding=emb3d,
            values_pre_shift=values_pre,
            values=values,
            conv_windows=view64,
            head_caches=head_caches,
            attention_combined=combined,
            ffn_hidden=hidden,
            ffn_activated=activated,
            ffn_output=ffn_output,
            output=prediction,
            values_tensor=None,
        )
        return InterpretationForward(
            cache=cache, attention_probs=probs, slope=slope,
            a_bihj=a_bihj, v_bijt=v_bijt, windows_flat=windows_flat,
            batch=batch, extras={"stage": stage},
        )

    def interpretation_gradients(self, forward: InterpretationForward,
                                 targets: Sequence[int]
                                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Gradients of ``Σ_t prediction[:, target, :]`` for several targets.

        Hand-evaluates the exact backward pass of the cache-path graph — the
        one the detector used to obtain via one autograd ``backward()`` per
        target — batched over ``targets`` with the same per-slice GEMMs, so
        the returned gradients are bit-identical to the autograd ones.

        Returns ``(attention_grads, kernel_grads)`` of shapes
        ``(G, h, B, N, N)`` and ``(G, N, N, K)`` (``(G, 1, 1, K)`` for the
        single-kernel ablation).
        """
        stage = forward.extras["stage"]
        cache = forward.cache
        batch, n, window = cache.output.shape
        n_targets = len(targets)
        dtype = cache.output.dtype
        diag = np.arange(n)

        # Output one-hot seed → back through the three cache-path linears.
        grad_pred = np.zeros((n_targets, batch, n, window), dtype=dtype)
        for index, target in enumerate(targets):
            grad_pred[index, :, target, :] = 1.0
        grad_ffn = grad_pred @ stage["w3"].T
        grad_hidden = grad_ffn @ stage["w2"].T
        grad_hidden *= forward.slope
        grad_combined = grad_hidden @ stage["w1"].T                # (G,B,N,T)

        # Head-combination einsum backward: grad per head = grad ⊗ w_output.
        grad_heads = np.einsum("gbit,h->ghbit", grad_combined, stage["w_output"])
        grad_biht = np.ascontiguousarray(grad_heads.transpose(0, 2, 3, 1, 4))
        # Attention application backward (Eq. 6).
        grad_a = grad_biht @ forward.v_bijt.transpose(0, 1, 3, 2)  # (G,B,i,h,j)
        attention_grads = grad_a.transpose(0, 3, 1, 2, 4)          # (G,h,B,i,j)
        grad_v = forward.a_bihj.transpose(0, 1, 3, 2) @ grad_biht  # (G,B,i,j,t)
        grad_values = grad_v.transpose(0, 1, 3, 2, 4)              # (G,B,j,i,t)

        # Causal convolution backward: undo the Eq. 4 right-shift, rescale,
        # contract against the causal windows.  The autograd engine casts the
        # routed gradient to the values tensor's dtype at the node boundary,
        # and the final accumulation casts to the kernel parameter's dtype —
        # replicate both.
        grad_values = np.ascontiguousarray(grad_values,
                                           dtype=cache.values.dtype)
        diagonal = grad_values[:, :, diag, diag, :]
        grad_values[:, :, diag, diag, :-1] = diagonal[..., 1:]
        grad_values[:, :, diag, diag, -1] = 0.0
        grad_values = grad_values * stage["scale_array"]
        flat = np.ascontiguousarray(grad_values.transpose(0, 2, 3, 1, 4)) \
            .reshape(n_targets, n, n, batch * window)
        kernel_grads = flat @ forward.windows_flat                 # (G,N,N,K)
        kernel_dtype = self.model.convolution.kernel.data.dtype
        if kernel_grads.dtype != kernel_dtype:
            # The node-boundary cast happens before the single-kernel
            # unbroadcast sum in the autograd graph; keep that order.
            kernel_grads = np.asarray(kernel_grads, dtype=kernel_dtype)
        if self.model.convolution.single_kernel:
            kernel_grads = kernel_grads.sum(axis=(1, 2), keepdims=True)
        return attention_grads, kernel_grads


@dataclass
class StackedInterpretationForward:
    """One fused cache forward for ``M`` same-architecture models at once.

    ``forwards[m]`` is an ordinary :class:`InterpretationForward` whose cache
    arrays are row-``m`` views of the stacked buffers below, so every
    per-model consumer (gradient modulation, raw-weight ablation, graph
    construction) runs unchanged on bit-identical data.  The stacked arrays
    feed the model-axis gradient backward and relevance propagation.  All
    arrays are arena views — valid until the next engine call.
    """

    forwards: List[InterpretationForward]
    inputs: np.ndarray                 # (M, B, N, T)
    output: np.ndarray                 # (M, B, N, T)
    values: np.ndarray                 # (M, B, N, N, T) legacy (source-major) layout
    values_pre: np.ndarray             # (M, B, N, N, T) pre-shift, float64
    conv_windows: np.ndarray           # (M, B, N, T, K) strided float64 view
    attention_probs: np.ndarray        # (M, h, B, N, N)
    head_outputs: np.ndarray           # (M, h, B, N, T)
    combined: np.ndarray               # (M, B, N, T)
    hidden: np.ndarray                 # (M, B, N, d_ffn) pre-activation
    activated: np.ndarray              # (M, B, N, d_ffn)
    ffn_output: np.ndarray             # (M, B, N, T)
    slope: np.ndarray                  # (M, B, N, d_ffn)
    a_bihj: np.ndarray                 # (M, B, i, h, j)
    v_bijt: np.ndarray                 # (M, B, i, j, t)
    windows_flat: np.ndarray           # (M, N, B·T, K)
    extras: dict = field(default_factory=dict)

    @property
    def n_models(self) -> int:
        return len(self.forwards)


class StackedInferenceEngine(ProfilingSeam):
    """Forward-only evaluator for ``M`` same-architecture models at once.

    A batched sweep trains ``K`` same-shape models in lockstep
    (:class:`repro.core.batched.StackedCausalFormerTrainer`), but validation
    passes and detector interpretation used to drop back to one
    :class:`InferenceEngine` call per model.  This engine adds a leading
    model axis to every stacked buffer so the whole fleet's evaluation (and
    its interpretation forward/backward) runs through one set of numpy
    calls.

    Numerical contract: batched matmuls dispatch one GEMM per 2-D slice and
    every reduction keeps its per-model order (per-row ``np.dot`` for the
    head combination, per-model loss accumulation), so each model's results
    are **bit-identical** to running it alone through
    :class:`InferenceEngine` — in float64 and float32 alike.  The stacked
    buffers replicate the single-model engine's memory layouts exactly
    (including the legacy source-major convolution layout), because einsum
    summation order — hence detector bit-identity — depends on operand
    strides.
    """

    _PROFILED_OPS = ("_causal_windows", "_convolution", "_attention_probs",
                     "_combine_layout")

    #: Which axis stacked ops chunk across under ``set_engine_threads``:
    #: ``True`` → the model axis ``K``, ``False`` → the widest per-model
    #: inner axis, ``None`` (default) → whichever offers more lanes for the
    #: configured thread count.  The batching layer
    #: (:class:`repro.core.batched.StackedCausalFormerTrainer`) sets this
    #: per group.  Either choice is bit-identical — chunking any leading
    #: axis of a batched matmul / element-wise op preserves the per-slice
    #: work exactly — so this is purely a load-balance knob.
    parallel_model_axis: Optional[bool] = None

    def _model_axis_first(self, m: int, inner: int) -> bool:
        """Chunk over the model axis (True) or the inner axis (False)?"""
        if inner <= 1:
            return True
        if m <= 1:
            return False
        prefer = self.parallel_model_axis
        if prefer is None:
            prefer = m >= get_engine_threads() or m >= inner
        return bool(prefer)

    def __init__(self, models: Sequence, arena: Optional[ScratchArena] = None) -> None:
        if not models:
            raise ValueError("need at least one model")
        self.models = list(models)
        reference = [(name, parameter.data.shape, parameter.data.dtype)
                     for name, parameter in self.models[0].named_parameters()]
        for model in self.models[1:]:
            shapes = [(name, parameter.data.shape, parameter.data.dtype)
                      for name, parameter in model.named_parameters()]
            if shapes != reference:
                raise ValueError(
                    "stacked inference requires same-architecture models "
                    "(matching parameter names, shapes and dtypes)")
            if model.convolution.single_kernel != \
                    self.models[0].convolution.single_kernel:
                raise ValueError("models disagree on single_kernel")
            # The staging below reads these scalars from the first model
            # only — a silent mismatch would misprice every other model.
            if model.attention.temperature != \
                    self.models[0].attention.temperature:
                raise ValueError("models disagree on attention temperature")
            if model.feed_forward.negative_slope != \
                    self.models[0].feed_forward.negative_slope:
                raise ValueError("models disagree on the leaky-ReLU slope")
        self.arena = arena if arena is not None else ScratchArena()

    @property
    def dtype(self):
        return self.models[0].embedding.weight.data.dtype

    # ------------------------------------------------------------------ #
    # Weight staging (stacked replica of InferenceEngine._stage)
    # ------------------------------------------------------------------ #
    def _stage(self) -> dict:
        arena = self.arena
        models = self.models
        m = len(models)
        first = models[0]
        attention = first.attention
        dtype = self.dtype
        n_heads = attention.n_heads
        d_qk = attention.query_weights[0].data.shape[-1]
        d_model = first.embedding.weight.data.shape[-1]
        n = first.convolution.n_series
        window = first.convolution.window

        weight_flat = arena.take("stack.weight_flat",
                                 (m, d_model, 2 * n_heads * d_qk), dtype)
        bias_flat = arena.take("stack.bias_flat", (m, 2 * n_heads * d_qk), dtype)
        for row, model in enumerate(models):
            weights = model.attention.query_weights + model.attention.key_weights
            biases = model.attention.query_biases + model.attention.key_biases
            for index, (weight, bias) in enumerate(zip(weights, biases)):
                columns = slice(index * d_qk, (index + 1) * d_qk)
                weight_flat[row, :, columns] = weight.data
                bias_flat[row, columns] = bias.data

        # float64 modulation — see the promotion note in
        # ``InferenceEngine._stage`` (replicated per model, exactly).
        scale = 1.0 / (attention.temperature * np.sqrt(attention.d_qk))
        modulation = arena.take("stack.modulation", (m, n_heads, 1, n, n),
                                np.float64)
        for row, model in enumerate(models):
            for index, mask in enumerate(model.attention.mask_parameters):
                modulation[row, index, 0] = mask.data
        modulation *= scale

        kernel_eff = arena.take("stack.kernel", (m, n, n, window), dtype)
        for row, model in enumerate(models):
            convolution = model.convolution
            if convolution.single_kernel:
                np.multiply(convolution.kernel.data,
                            convolution._ones_broadcast.data,
                            out=kernel_eff[row])
            else:
                kernel_eff[row] = convolution.kernel.data

        def stacked_copy(name: str, arrays: List[np.ndarray]) -> np.ndarray:
            buffer = arena.take(name, (m,) + arrays[0].shape, arrays[0].dtype)
            for row, array in enumerate(arrays):
                buffer[row] = array
            return buffer

        return {
            "dtype": dtype,
            "n_heads": n_heads,
            "d_qk": d_qk,
            "weight_flat": weight_flat,
            "bias_flat": bias_flat,
            "modulation": modulation,
            "kernel_eff": kernel_eff,
            "scale_array": first.convolution._scale_array,
            "embed_weight": stacked_copy(
                "stack.embed_w", [model.embedding.weight.data for model in models]),
            "embed_bias": stacked_copy(
                "stack.embed_b", [model.embedding.bias.data for model in models]),
            "w1": stacked_copy("stack.w1", [model.feed_forward.w1.data for model in models]),
            "b1": stacked_copy("stack.b1", [model.feed_forward.b1.data for model in models]),
            "w2": stacked_copy("stack.w2", [model.feed_forward.w2.data for model in models]),
            "b2": stacked_copy("stack.b2", [model.feed_forward.b2.data for model in models]),
            "w3": stacked_copy("stack.w3", [model.output_layer.weight.data for model in models]),
            "b3": stacked_copy("stack.b3", [model.output_layer.bias.data for model in models]),
            "negative_slope": first.feed_forward.negative_slope,
            "w_output": stacked_copy(
                "stack.w_out", [model.attention.w_output.data for model in models]),
        }

    # ------------------------------------------------------------------ #
    # Fused building blocks (leading model axis, same per-slice ops)
    # ------------------------------------------------------------------ #
    @hot_path
    def _causal_windows(self, space: ScratchSpace, x: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
        m, batch, n, window = x.shape
        padded = space.take("conv.pad", (m, batch, n, 2 * window), x.dtype)
        padded[..., window:] = x
        flat = space.take("conv.windows_flat",
                          (m, n, batch * window, window), x.dtype)
        source = space.view("conv.window_view", lambda: np.lib.stride_tricks
                            .sliding_window_view(padded, window, axis=-1)
                            [..., 1:, :].transpose(0, 2, 1, 3, 4))
        target = space.view("conv.windows_flat.5d",
                            lambda: flat.reshape(m, n, batch, window, window))
        axis = 0 if self._model_axis_first(m, n) else 1

        def body(lo: int, hi: int) -> None:
            np.copyto(slice_axis(target, axis, lo, hi),
                      slice_axis(source, axis, lo, hi))

        parallel_for(body, target.shape[axis], outputs=((target, axis),))
        return padded, flat

    @hot_path
    def _convolution(self, space: ScratchSpace, x: np.ndarray, stage: dict,
                     legacy_layout: bool = False
                     ) -> Tuple[np.ndarray, np.ndarray]:
        m, batch, n, window = x.shape
        kernel = stage["kernel_eff"]
        cdtype = np.result_type(x.dtype, kernel.dtype)
        _padded, flat = self._causal_windows(space, x)
        k_out = kernel.shape[2]
        raw = space.take("conv.raw", (m, n, batch * window, k_out), cdtype)
        kernel_t = kernel.transpose(0, 1, 3, 2)
        axis = 0 if self._model_axis_first(m, n) else 1

        def matmul_body(lo: int, hi: int) -> None:
            np.matmul(slice_axis(flat, axis, lo, hi),
                      slice_axis(kernel_t, axis, lo, hi),
                      out=slice_axis(raw, axis, lo, hi))

        parallel_for(matmul_body, raw.shape[axis], outputs=((raw, axis),))
        if legacy_layout:
            buffer = space.take("conv.values", (m, n, batch, window, k_out),
                                cdtype)
            values = space.view("conv.values.t",
                                lambda: buffer.transpose(0, 2, 1, 4, 3))
        else:
            values = space.take("conv.values", (m, batch, n, k_out, window),
                                cdtype)
        raw_t = space.view("conv.raw.t",
                           lambda: raw.reshape(m, n, batch, window, k_out)
                           .transpose(0, 2, 1, 4, 3))
        scale_array = stage["scale_array"]
        scale_axis = 0 if self._model_axis_first(m, batch) else 1

        def scale_body(lo: int, hi: int) -> None:
            np.multiply(slice_axis(raw_t, scale_axis, lo, hi), scale_array,
                        out=slice_axis(values, scale_axis, lo, hi))

        parallel_for(scale_body, values.shape[scale_axis],
                     outputs=((values, scale_axis),))
        shift = space.take("conv.shift", (m, batch, window), cdtype)
        for index in range(n):
            np.copyto(shift, values[:, :, index, index, :])
            values[:, :, index, index, 1:] = shift[..., :-1]
            values[:, :, index, index, 0] = 0.0
        return values, flat

    @hot_path
    def _softmax_inplace(self, space: ScratchSpace, probs: np.ndarray) -> None:
        # Row-wise normalisation over a contiguous arena buffer: flatten the
        # (model, head, batch) leading axes into one parallel axis — see the
        # single-engine ``_softmax_inplace`` for the bit-identity argument.
        extreme = space.take("att.max", probs.shape[:-1] + (1,), probs.dtype)
        total = space.take("att.sum", probs.shape[:-1] + (1,), probs.dtype)
        flat = probs.reshape((-1,) + probs.shape[-2:])
        ext = extreme.reshape((-1,) + extreme.shape[-2:])
        tot = total.reshape((-1,) + total.shape[-2:])

        def body(lo: int, hi: int) -> None:
            rows = flat[lo:hi]
            rows -= max_last_keepdims(rows, out=ext[lo:hi])
            np.exp(rows, out=rows)
            rows /= sum_last_keepdims(rows, out=tot[lo:hi])

        parallel_for(body, flat.shape[0],
                     outputs=((flat, 0), (ext, 0), (tot, 0)))

    @hot_path
    def _attention_probs(self, space: ScratchSpace, x: np.ndarray, stage: dict
                         ) -> np.ndarray:
        m, batch, n, window = x.shape
        n_heads, d_qk = stage["n_heads"], stage["d_qk"]
        d_model = stage["embed_weight"].shape[-1]
        cdtype = np.result_type(x.dtype, stage["embed_weight"].dtype)
        x2d = x.reshape(m, batch * n, window)
        emb = space.take("att.emb", (m, batch * n, d_model), cdtype)
        proj = space.take("att.proj", (m, batch * n, 2 * n_heads * d_qk), cdtype)
        embed_weight, embed_bias = stage["embed_weight"], stage["embed_bias"]
        weight_flat, bias_flat = stage["weight_flat"], stage["bias_flat"]

        # The embedding/projection GEMMs are batched over the model axis
        # only (per-model weights), so they always chunk across models.
        def project_body(lo: int, hi: int) -> None:
            np.matmul(x2d[lo:hi], embed_weight[lo:hi], out=emb[lo:hi])
            emb[lo:hi] += embed_bias[lo:hi, None, :]
            np.matmul(emb[lo:hi], weight_flat[lo:hi], out=proj[lo:hi])
            proj[lo:hi] += bias_flat[lo:hi, None, :]

        parallel_for(project_body, m, outputs=((emb, 0), (proj, 0)))
        qk = space.take("att.qk", (m, 2 * n_heads, batch, n, d_qk), cdtype)
        proj_t = space.view("att.proj.t",
                            lambda: proj.reshape(m, batch, n, 2 * n_heads, d_qk)
                            .transpose(0, 3, 1, 2, 4))
        raw = space.take("att.raw", (m, n_heads, batch, n, n), cdtype)
        k_t = space.view("att.k.t",
                         lambda: qk[:, n_heads:].transpose(0, 1, 2, 4, 3))
        probs = space.take("att.probs", (m, n_heads, batch, n, n), np.float64)
        query = qk[:, :n_heads]
        modulation = stage["modulation"]
        # Layout copy + per-(m, h, b) score GEMMs + modulation multiply in
        # one round: the batch axis sits at index 2 of every operand, the
        # model axis at 0.  ``modulation`` is (m, h, 1, n, n): sliced along
        # the model axis, broadcast (unsliced) along the batch axis.
        axis = 0 if self._model_axis_first(m, batch) else 2

        def body(lo: int, hi: int) -> None:
            np.copyto(slice_axis(qk, axis, lo, hi),
                      slice_axis(proj_t, axis, lo, hi))
            np.matmul(slice_axis(query, axis, lo, hi),
                      slice_axis(k_t, axis, lo, hi),
                      out=slice_axis(raw, axis, lo, hi))
            np.multiply(slice_axis(raw, axis, lo, hi),
                        modulation[lo:hi] if axis == 0 else modulation,
                        out=slice_axis(probs, axis, lo, hi))

        parallel_for(body, raw.shape[axis],
                     outputs=((qk, axis), (raw, axis), (probs, axis)))
        self._softmax_inplace(space, probs)
        return probs

    @hot_path
    def _combine_layout(self, space: ScratchSpace, probs: np.ndarray,
                        values: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        m, n_heads, batch, n, _ = probs.shape
        window = values.shape[-1]
        out_dtype = np.result_type(probs.dtype, values.dtype)
        a_bihj = space.take("comb.a", (m, batch, n, n_heads, n), probs.dtype)
        probs_t = space.view("comb.probs.t",
                             lambda: probs.transpose(0, 2, 3, 1, 4))
        v_bijt = space.take("comb.v", (m, batch, n, n, window), out_dtype)
        values_t = space.view("comb.values.t",
                              lambda: values.transpose(0, 1, 3, 2, 4))
        head_outputs = space.take("comb.ho", (m, batch, n, n_heads, window),
                                  out_dtype)
        axis = 0 if self._model_axis_first(m, batch) else 1

        def body(lo: int, hi: int) -> None:
            np.copyto(slice_axis(a_bihj, axis, lo, hi),
                      slice_axis(probs_t, axis, lo, hi))
            np.copyto(slice_axis(v_bijt, axis, lo, hi),
                      slice_axis(values_t, axis, lo, hi))
            np.matmul(slice_axis(a_bihj, axis, lo, hi),
                      slice_axis(v_bijt, axis, lo, hi),
                      out=slice_axis(head_outputs, axis, lo, hi))

        parallel_for(body, head_outputs.shape[axis],
                     outputs=((a_bihj, axis), (v_bijt, axis),
                              (head_outputs, axis)))
        return a_bihj, v_bijt, head_outputs

    @hot_path
    def _forward(self, x: np.ndarray, stage: dict) -> np.ndarray:
        m, batch, n, window = x.shape
        space = self.arena.space(("stack.eval", x.shape, x.dtype.str))
        values, _flat = self._convolution(space, x, stage)
        probs = self._attention_probs(space, x, stage)
        _a, _v, head_outputs = self._combine_layout(space, probs, values)
        n_heads = stage["n_heads"]
        dtype = head_outputs.dtype
        at = space.take("comb.at", (m, batch, n, window, n_heads), dtype)
        ho_t = space.view("comb.ho.t",
                          lambda: head_outputs.transpose(0, 1, 2, 4, 3))
        at_axis = 0 if self._model_axis_first(m, batch) else 1

        def at_body(lo: int, hi: int) -> None:
            np.copyto(slice_axis(at, at_axis, lo, hi),
                      slice_axis(ho_t, at_axis, lo, hi))

        parallel_for(at_body, at.shape[at_axis], outputs=((at, at_axis),))
        combined = space.take("comb.out", (m, batch * n * window, 1), dtype)
        at2d = space.view("comb.at.2d",
                          lambda: at.reshape(m, batch * n * window, n_heads))
        w_output = stage["w_output"]

        # Per-row np.dot, replicating the single engine's GEMV-dot exactly;
        # each row writes only its own ``combined[row]``, so the row loop
        # chunks across models.
        def dot_body(lo: int, hi: int) -> None:
            for row in range(lo, hi):
                np.dot(at2d[row],
                       w_output[row].reshape(n_heads, 1)
                       .astype(dtype, copy=False),
                       out=combined[row])

        parallel_for(dot_body, m, outputs=((combined, 0),))
        x2d = space.view("comb.out.2d",
                         lambda: combined.reshape(m, batch * n, window))
        d_ffn = stage["w1"].shape[-1]
        hidden = space.take("mlp.hidden", (m, batch * n, d_ffn), dtype)
        ffn = space.take("mlp.ffn", (m, batch * n, window), dtype)
        out2d = space.take("mlp.out", (m, batch * n, window), dtype)
        slope = space.take("mlp.slope", hidden.shape, dtype)
        mask = space.take("mlp.slope.mask", hidden.shape, np.bool_)
        w1, b1 = stage["w1"], stage["b1"]
        w2, b2 = stage["w2"], stage["b2"]
        w3, b3 = stage["w3"], stage["b3"]
        low = dtype.type(stage["negative_slope"])
        one = dtype.type(1.0)

        # The MLP tail's GEMMs are batched over the model axis (per-model
        # weights), so the whole tail — including the inlined
        # ``_leaky_slope`` selection, same buffers, same ops — chunks
        # across models.
        def mlp_body(lo: int, hi: int) -> None:
            np.matmul(x2d[lo:hi], w1[lo:hi], out=hidden[lo:hi])
            hidden[lo:hi] += b1[lo:hi, None, :]
            np.greater(hidden[lo:hi], 0, out=mask[lo:hi])
            slope[lo:hi].fill(low)
            np.copyto(slope[lo:hi], one, where=mask[lo:hi])
            hidden[lo:hi] *= slope[lo:hi]
            np.matmul(hidden[lo:hi], w2[lo:hi], out=ffn[lo:hi])
            ffn[lo:hi] += b2[lo:hi, None, :]
            np.matmul(ffn[lo:hi], w3[lo:hi], out=out2d[lo:hi])
            out2d[lo:hi] += b3[lo:hi, None, :]

        parallel_for(mlp_body, m,
                     outputs=((hidden, 0), (ffn, 0), (out2d, 0), (slope, 0),
                              (mask, 0)))
        return space.view("mlp.out.4d",
                          lambda: out2d.reshape(m, batch, n, window))

    # ------------------------------------------------------------------ #
    # Batch staging and evaluation
    # ------------------------------------------------------------------ #
    def _as_model_batch(self, windows_list: Sequence[np.ndarray]) -> np.ndarray:
        """Stack ``M`` window sets, replaying ``InferenceEngine._as_model_batch``
        per model (identical Tensor-construction cast chain, then one
        contiguous ``(M, B, N, T)`` arena buffer)."""
        from repro.nn import tensor as T

        default = np.dtype(T.get_default_dtype())
        dtype = self.dtype
        cast: List[np.ndarray] = []
        for windows in windows_list:
            arr = np.asarray(windows, dtype=default)
            if arr.dtype != dtype:
                arr = np.asarray(arr.astype(dtype), dtype=default)
            if arr.ndim == 2:
                arr = arr[None, :, :]
            cast.append(arr)
        shapes = {arr.shape for arr in cast}
        if len(shapes) != 1:
            raise ValueError("stacked evaluation requires same-shape window sets")
        batch = self.arena.take("stack.batch", (len(cast),) + cast[0].shape,
                                default)
        for row, arr in enumerate(cast):
            batch[row] = arr
        return batch

    @hot_path
    def _windowed_diff(self, prediction: np.ndarray, target: np.ndarray,
                       start_slot: int = 1) -> np.ndarray:
        diff_shape = prediction.shape[:-1] + (prediction.shape[-1] - start_slot,)
        diff = self.arena.take("stack.loss.diff", diff_shape, prediction.dtype)
        np.subtract(prediction[..., start_slot:], target[..., start_slot:],
                    out=diff)
        return diff

    def forward(self, windows_list: Sequence[np.ndarray]) -> np.ndarray:
        """Stacked fused forward; returns the ``(M, B, N, T)`` prediction view."""
        stage = self._stage()
        return self._forward(self._as_model_batch(windows_list), stage)

    def evaluate(self, windows_list: Sequence[np.ndarray],
                 batch_size: int) -> List[float]:
        """Per-model window-weighted mean losses, one stacked pass per chunk.

        Returns one float per model, each bit-identical to
        ``InferenceEngine.evaluate`` on that model's window set alone (same
        full-batch-vs-chunked branch, same chunk-weighted accumulation).
        """
        stage = self._stage()
        arrays = [np.asarray(windows) for windows in windows_list]
        if len(arrays) != len(self.models):
            raise ValueError("one window set per model required")
        shapes = {arr.shape for arr in arrays}
        if len(shapes) != 1:
            raise ValueError("stacked evaluation requires same-shape window sets")
        shape = arrays[0].shape
        m = len(self.models)
        penalties = [_loss_penalty_terms(model, self.arena, prefix=f"m{row}.")
                     for row, model in enumerate(self.models)]
        # The element budget bounds the *total* scratch footprint, and the
        # stacked buffers carry a leading model axis — so each model's share
        # is the per-model limit divided by the fleet size.  The full-batch
        # and chunked paths are bit-identical per model, so this only moves
        # the memory/speed trade-off, never the results.
        if len(shape) == 3 and shape[0] and (
                shape[0] * shape[1] ** 2 * shape[2]
                <= InferenceEngine.FULL_BATCH_ELEMENT_LIMIT // m):
            batch = self._as_model_batch(arrays)
            diff = self._windowed_diff(self._forward(batch, stage), batch)
            results: List[float] = []
            for row in range(m):
                total = 0.0
                count = 0
                for start in range(0, shape[0], batch_size):
                    chunk = diff[row, start:start + batch_size]
                    total += InferenceEngine._mse_plus_penalties(
                        chunk, penalties[row]) * len(chunk)
                    count += len(chunk)
                results.append(total / count)
            return results
        totals = [0.0] * m
        count = 0
        for start in range(0, shape[0], batch_size):
            chunk = self._as_model_batch(
                [arr[start:start + batch_size] for arr in arrays])
            diff = self._windowed_diff(self._forward(chunk, stage), chunk)
            for row in range(m):
                totals[row] += InferenceEngine._mse_plus_penalties(
                    diff[row], penalties[row]) * chunk.shape[1]
            count += chunk.shape[1]
        return [total / count if count else float("nan") for total in totals]

    def evaluate_grouped(self, window_sets: Sequence[Optional[np.ndarray]],
                         batch_size: int,
                         cache: Optional[dict] = None
                         ) -> List[Optional[float]]:
        """Per-model losses when the fleet's window sets differ in count.

        The heterogeneous stacked trainer validates lanes whose datasets
        carry different window counts (pad-and-mask bucketing).  Padding a
        model's own batch axis is off the table — the solo engine never sees
        the padded rows, and a different GEMM ``M`` dimension may pick a
        different BLAS kernel — so instead the rows are grouped by shape and
        each group runs the *existing* stacked (or solo) evaluation at its
        exact shape:

        * all rows share one shape → ``self.evaluate`` (the lockstep path,
          staged straight off this engine's views);
        * a multi-row group → a sub-fleet :class:`StackedInferenceEngine`
          over the same arena (staging copies the group's weights, the
          per-row arithmetic is the proven stacked contract);
        * a single row → a solo :class:`InferenceEngine` over the same
          arena, which *is* the reference path.

        ``None`` entries (lanes without a validation split) are skipped and
        returned as ``None``.  Every returned loss is bit-identical to
        ``InferenceEngine.evaluate`` on that model's windows alone.

        ``cache`` (optional) is a caller-owned dict that keeps the sub-fleet
        and solo engines alive across calls — validation groups are stable
        between epochs, so a trainer passes one dict per lane era and the
        engines (with their staged buffers) rebuild only when membership
        changes.  The caller must discard it whenever ``self.models``
        changes, because the cached engines hold references to the models
        by row.
        """
        m = len(self.models)
        if len(window_sets) != m:
            raise ValueError("one window set per model required")
        results: List[Optional[float]] = [None] * m
        groups: Dict[tuple, List[tuple]] = {}
        for row, windows in enumerate(window_sets):
            if windows is None:
                continue
            arr = np.asarray(windows)
            groups.setdefault(arr.shape, []).append((row, arr))
        for members in groups.values():
            rows = [row for row, _arr in members]
            arrays = [arr for _row, arr in members]
            if len(rows) == m:
                losses = self.evaluate(arrays, batch_size)
            elif len(rows) == 1:
                key = (rows[0],)
                solo = cache.get(key) if cache is not None else None
                if solo is None:
                    solo = InferenceEngine(self.models[rows[0]],
                                           arena=self.arena)
                    if cache is not None:
                        cache[key] = solo
                losses = [solo.evaluate(arrays[0], batch_size)]
            else:
                key = tuple(rows)
                sub = cache.get(key) if cache is not None else None
                if sub is None:
                    sub = StackedInferenceEngine(
                        [self.models[row] for row in rows], arena=self.arena)
                    sub.parallel_model_axis = self.parallel_model_axis
                    if cache is not None:
                        cache[key] = sub
                losses = sub.evaluate(arrays, batch_size)
            for row, loss in zip(rows, losses):
                results[row] = loss
        return results

    # ------------------------------------------------------------------ #
    # Detector support: stacked cache forward + multi-target backward
    # ------------------------------------------------------------------ #
    def interpretation_forward(self, windows_list: Sequence[np.ndarray]
                               ) -> StackedInterpretationForward:
        """One stacked cache-path forward shared by every model and target."""
        from repro.core.attention import AttentionHeadCache
        from repro.core.transformer import TransformerCache

        arena = self.arena
        stage = self._stage()
        # repro: allow(dtype-purity): ingestion cast to the f64 reference
        x = self._as_model_batch([np.asarray(w, dtype=float)
                                  for w in windows_list])
        m, batch, n, window = x.shape
        n_heads, d_qk = stage["n_heads"], stage["d_qk"]
        space = arena.space(("stack.cache", x.shape, x.dtype.str))

        values, windows_flat = self._convolution(space, x, stage,
                                                 legacy_layout=True)
        cdtype = np.result_type(x.dtype, stage["embed_weight"].dtype)
        d_model = stage["embed_weight"].shape[-1]
        emb3d = arena.take("stack.cache.emb", (m, batch, n, d_model), cdtype)
        np.matmul(x, stage["embed_weight"][:, None], out=emb3d)
        emb3d += stage["embed_bias"][:, None, None, :]
        proj = arena.take("stack.att.proj", (m, batch * n, 2 * n_heads * d_qk),
                          cdtype)
        np.matmul(emb3d.reshape(m, batch * n, d_model), stage["weight_flat"],
                  out=proj)
        proj += stage["bias_flat"][:, None, :]
        qk = arena.take("stack.att.qk", (m, 2 * n_heads, batch, n, d_qk), cdtype)
        np.copyto(qk, proj.reshape(m, batch, n, 2 * n_heads, d_qk)
                  .transpose(0, 3, 1, 2, 4))
        q_data, k_data = qk[:, :n_heads], qk[:, n_heads:]
        raw = arena.take("stack.att.raw", (m, n_heads, batch, n, n), cdtype)
        np.matmul(q_data, k_data.transpose(0, 1, 2, 4, 3), out=raw)
        probs = arena.take("stack.att.probs", (m, n_heads, batch, n, n),
                           np.float64)
        np.multiply(raw, stage["modulation"], out=probs)
        scores = arena.take("stack.att.scores", (m, n_heads, batch, n, n),
                            np.float64)
        np.copyto(scores, probs)
        self._softmax_inplace(space, probs)

        a_bihj, v_bijt, head_outputs = self._combine_layout(space, probs,
                                                            values)
        dtype = head_outputs.dtype
        ho_hbit = arena.take("stack.cache.ho", (m, n_heads, batch, n, window),
                             dtype)
        np.copyto(ho_hbit, head_outputs.transpose(0, 3, 1, 2, 4))
        combined = arena.take("stack.cache.combined", (m, batch, n, window),
                              dtype)
        np.einsum("mhbit,mh->mbit", ho_hbit,
                  stage["w_output"].astype(dtype, copy=False), out=combined)

        d_ffn = stage["w1"].shape[-1]
        hidden = arena.take("stack.cache.hidden", (m, batch, n, d_ffn), dtype)
        np.matmul(combined, stage["w1"][:, None], out=hidden)
        hidden += stage["b1"][:, None, None, :]
        slope = _leaky_slope(space, "cache.slope", hidden,
                             stage["negative_slope"])
        activated = arena.take("stack.cache.activated", (m, batch, n, d_ffn),
                               dtype)
        np.multiply(hidden, slope, out=activated)
        ffn_output = arena.take("stack.cache.ffn", (m, batch, n, window), dtype)
        np.matmul(activated, stage["w2"][:, None], out=ffn_output)
        ffn_output += stage["b2"][:, None, None, :]
        prediction = arena.take("stack.cache.out", (m, batch, n, window), dtype)
        np.matmul(ffn_output, stage["w3"][:, None], out=prediction)
        prediction += stage["b3"][:, None, None, :]

        # repro: allow(dtype-purity): relevance propagation is f64 by spec
        x64 = np.asarray(x, dtype=float)
        padded64 = arena.take("stack.cache.pad64", (m, batch, n, 2 * window),
                              np.float64)
        padded64[..., window:] = x64
        view64 = np.lib.stride_tricks.sliding_window_view(
            padded64, window, axis=-1)[..., 1:, :]         # (M, B, N, T, K)
        values_pre = arena.take("stack.cache.values_pre",
                                (m, batch, n, n, window),
                                np.result_type(np.float64, x.dtype))
        np.einsum("mbitk,mijk->mbijt", view64, stage["kernel_eff"],
                  out=values_pre)
        values_pre *= stage["scale_array"]

        forwards: List[InterpretationForward] = []
        for row in range(m):
            head_caches = [
                AttentionHeadCache(
                    attention=None, head_output=None,
                    attention_data=probs[row, index],
                    head_output_data=ho_hbit[row, index],
                    scores_data=scores[row, index],
                )
                for index in range(n_heads)
            ]
            cache = TransformerCache(
                inputs=x[row],
                embedding=emb3d[row],
                values_pre_shift=values_pre[row],
                values=values[row],
                conv_windows=view64[row],
                head_caches=head_caches,
                attention_combined=combined[row],
                ffn_hidden=hidden[row],
                ffn_activated=activated[row],
                ffn_output=ffn_output[row],
                output=prediction[row],
                values_tensor=None,
            )
            forwards.append(InterpretationForward(
                cache=cache, attention_probs=probs[row], slope=slope[row],
                a_bihj=a_bihj[row], v_bijt=v_bijt[row],
                windows_flat=windows_flat[row], batch=batch,
                extras={"stage": stage, "row": row},
            ))
        return StackedInterpretationForward(
            forwards=forwards, inputs=x, output=prediction, values=values,
            values_pre=values_pre, conv_windows=view64,
            attention_probs=probs, head_outputs=ho_hbit, combined=combined,
            hidden=hidden, activated=activated, ffn_output=ffn_output,
            slope=slope, a_bihj=a_bihj, v_bijt=v_bijt,
            windows_flat=windows_flat, extras={"stage": stage},
        )

    def interpretation_gradients(self, forward: StackedInterpretationForward,
                                 targets: Sequence[int]
                                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Gradients of ``Σ_t prediction[:, target, :]``, stacked over models.

        Returns ``(attention_grads, kernel_grads)`` of shapes
        ``(M, G, h, B, N, N)`` and ``(M, G, N, N, K)`` (``(M, G, 1, 1, K)``
        for the single-kernel ablation) — row ``m`` bit-identical to
        ``InferenceEngine.interpretation_gradients`` on model ``m`` alone.
        """
        stage = forward.extras["stage"]
        m, batch, n, window = forward.output.shape
        n_targets = len(targets)
        dtype = forward.output.dtype
        diag = np.arange(n)

        grad_pred = np.zeros((m, n_targets, batch, n, window), dtype=dtype)
        for index, target in enumerate(targets):
            grad_pred[:, index, :, target, :] = 1.0
        grad_ffn = grad_pred @ stage["w3"].transpose(0, 2, 1)[:, None, None]
        grad_hidden = grad_ffn @ stage["w2"].transpose(0, 2, 1)[:, None, None]
        grad_hidden *= forward.slope[:, None]
        grad_combined = grad_hidden \
            @ stage["w1"].transpose(0, 2, 1)[:, None, None]    # (M,G,B,N,T)

        grad_heads = np.einsum("mgbit,mh->mghbit", grad_combined,
                               stage["w_output"])
        grad_biht = np.ascontiguousarray(grad_heads.transpose(0, 1, 3, 4, 2, 5))
        grad_a = grad_biht \
            @ forward.v_bijt.transpose(0, 1, 2, 4, 3)[:, None]  # (M,G,B,i,h,j)
        attention_grads = grad_a.transpose(0, 1, 4, 2, 3, 5)    # (M,G,h,B,i,j)
        grad_v = forward.a_bihj.transpose(0, 1, 2, 4, 3)[:, None] \
            @ grad_biht                                         # (M,G,B,i,j,t)
        grad_values = grad_v.transpose(0, 1, 2, 4, 3, 5)        # (M,G,B,j,i,t)

        grad_values = np.ascontiguousarray(grad_values,
                                           dtype=forward.values.dtype)
        diagonal = grad_values[:, :, :, diag, diag, :]
        grad_values[:, :, :, diag, diag, :-1] = diagonal[..., 1:]
        grad_values[:, :, :, diag, diag, -1] = 0.0
        grad_values = grad_values * stage["scale_array"]
        flat = np.ascontiguousarray(grad_values.transpose(0, 1, 3, 4, 2, 5)) \
            .reshape(m, n_targets, n, n, batch * window)
        kernel_grads = flat @ forward.windows_flat[:, None]     # (M,G,N,N,K)
        kernel_dtype = self.models[0].convolution.kernel.data.dtype
        if kernel_grads.dtype != kernel_dtype:
            kernel_grads = np.asarray(kernel_grads, dtype=kernel_dtype)
        if self.models[0].convolution.single_kernel:
            kernel_grads = kernel_grads.sum(axis=(2, 3), keepdims=True)
        return attention_grads, kernel_grads
