"""A from-scratch reverse-mode automatic differentiation engine on numpy.

This subpackage is the deep-learning substrate of the CausalFormer
reproduction.  The paper trains and *interprets* a transformer with PyTorch;
PyTorch is not available in this environment, so ``repro.nn`` provides the
pieces the paper's pipeline actually needs:

* :class:`~repro.nn.tensor.Tensor` — an ndarray wrapper with reverse-mode
  autodiff, broadcasting-aware gradients, and the ability to *retain*
  gradients on intermediate tensors (required by the paper's gradient
  modulation step, which reads gradients of the attention matrix and the
  causal convolution kernel).
* :mod:`~repro.nn.functional` — softmax, leaky ReLU, MSE, L1 penalties and the
  other point-wise functions the model uses.
* :class:`~repro.nn.module.Module` / :class:`~repro.nn.module.Parameter` —
  PyTorch-style containers with ``state_dict`` save/load.
* :mod:`~repro.nn.layers` — ``Linear``, ``Sequential``, ``Dropout``,
  ``LSTMCell``/``LSTM`` (for the cLSTM baseline), 1-D convolutions (for the
  TCDF baseline).
* :mod:`~repro.nn.optim` — ``SGD`` and ``Adam`` with gradient clipping.
* :mod:`~repro.nn.init` — He / Xavier initialisation (the paper uses He
  initialisation).
"""

from repro.nn.tensor import (
    Tensor,
    no_grad,
    is_grad_enabled,
    get_default_dtype,
    set_default_dtype,
    default_dtype,
)
from repro.nn import functional
from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.layers import (
    Linear,
    Sequential,
    Dropout,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
    Identity,
    LSTMCell,
    LSTM,
    Conv1d,
)
from repro.nn.optim import Optimizer, SGD, Adam, clip_grad_norm_
from repro.nn import init
from repro.nn.serialization import save_state_dict, load_state_dict

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "functional",
    "Module",
    "Parameter",
    "ModuleList",
    "Linear",
    "Sequential",
    "Dropout",
    "LeakyReLU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "LSTMCell",
    "LSTM",
    "Conv1d",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm_",
    "init",
    "save_state_dict",
    "load_state_dict",
]
