"""Setup shim for offline editable installs.

This environment has no network access and no ``wheel`` package, so the
PEP 660 editable-install path (``pip install -e .``) cannot build its
metadata wheel.  Installing with::

    pip install -e . --no-build-isolation --no-use-pep517

falls back to ``setup.py develop`` and works fully offline.  All project
metadata lives in ``pyproject.toml``; this file only exists to enable that
fallback.
"""

from setuptools import setup

setup()
