#!/usr/bin/env python
"""Static analysis over the library tree — ``python tools/lint.py``.

Standalone entry point for :mod:`repro.analysis`, equivalent to
``python -m repro lint`` but importable without installing the package
(it puts ``src/`` on ``sys.path`` itself).  Exit codes: 0 clean, 1
unsuppressed findings, 2 usage/internal error.
"""

from __future__ import annotations

import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
