"""Render a human-readable run summary from a JSONL telemetry trace.

``python -m repro report trace.jsonl`` loads the records a
:class:`~repro.telemetry.events.JsonlSink` wrote and renders:

* the span tree with wall times (repeated same-name siblings collapsed into
  one ``×N`` line with total/mean, so a 100-epoch fit stays readable),
* a training section — per-epoch losses grouped by the job each training
  run belongs to, with best/final/early-stop status,
* cache hit/miss counts,
* the top counters, gauges and histogram summaries from the final metrics
  snapshot.

The same helpers serve the in-process path: ``summarize_spans`` is what
``python -m repro bench`` attaches to its reports so BENCH speedups can be
decomposed by phase.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.tracing import build_span_tree

#: collapse same-name sibling spans into one line above this count
COLLAPSE_THRESHOLD = 3


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace; malformed lines are skipped, not fatal."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def _format_ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000.0:.1f} ms"


def _span_label(node: Dict[str, Any]) -> str:
    attrs = node.get("attrs") or {}
    label = str(node.get("name"))
    for key in ("job_id", "method", "dataset", "payload", "subcommand"):
        if key in attrs:
            label += f" {key}={attrs[key]}"
    if node.get("status") == "error":
        label += " [error]"
    return label


def render_span_tree(roots: List[Dict[str, Any]], indent: str = "  ",
                     max_depth: int = 12) -> List[str]:
    """Indented tree lines; bursts of same-name siblings collapse to ×N."""
    lines: List[str] = []

    def walk(nodes: List[Dict[str, Any]], depth: int) -> None:
        if depth >= max_depth:
            return
        groups: List[Tuple[str, List[Dict[str, Any]]]] = []
        for node in nodes:
            name = str(node.get("name"))
            if groups and groups[-1][0] == name:
                groups[-1][1].append(node)
            else:
                groups.append((name, [node]))
        for name, members in groups:
            if len(members) > COLLAPSE_THRESHOLD:
                durations = [m.get("duration") or 0.0 for m in members]
                total = sum(durations)
                lines.append(
                    f"{indent * depth}{name} ×{len(members)} "
                    f"(total {_format_ms(total)}, "
                    f"mean {_format_ms(total / len(members))})")
                merged: List[Dict[str, Any]] = []
                for member in members:
                    merged.extend(member.get("children") or ())
                walk(merged, depth + 1)
            else:
                for member in members:
                    lines.append(
                        f"{indent * depth}{_span_label(member)} "
                        f"({_format_ms(member.get('duration'))})")
                    walk(member.get("children") or [], depth + 1)

    walk(roots, 0)
    return lines


def summarize_spans(records: List[Dict[str, Any]]
                    ) -> Dict[str, Dict[str, Any]]:
    """Flat per-name aggregation: ``{name: {count, total_seconds}}``.

    Used by the bench report to decompose a payload's wall time by phase.
    """
    summary: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        entry = summary.setdefault(str(record.get("name")),
                                   {"count": 0, "total_seconds": 0.0})
        entry["count"] += 1
        entry["total_seconds"] += record.get("duration") or 0.0
    for entry in summary.values():
        entry["total_seconds"] = round(entry["total_seconds"], 6)
    return summary


def _job_of_span(span_id: Optional[str],
                 spans_by_id: Dict[str, Dict[str, Any]]) -> Optional[str]:
    """Walk ancestors to the enclosing ``job``/``job_group`` span's label."""
    seen = set()
    while span_id and span_id not in seen:
        seen.add(span_id)
        span = spans_by_id.get(span_id)
        if span is None:
            return None
        if span.get("name") in ("job", "job_group"):
            attrs = span.get("attrs") or {}
            return str(attrs.get("job_id") or attrs.get("jobs")
                       or span["span_id"])
        span_id = span.get("parent_id")
    return None


def training_summary(records: List[Dict[str, Any]]) -> List[str]:
    """Per-run loss trajectories from ``train_epoch`` events."""
    spans_by_id = {record["span_id"]: record for record in records
                   if record.get("kind") == "span" and "span_id" in record}
    runs: Dict[Tuple[Optional[str], Any], List[Dict[str, Any]]] = {}
    extras: Dict[Tuple[Optional[str], Any], List[str]] = {}
    for record in records:
        if record.get("kind") != "event":
            continue
        attrs = record.get("attrs") or {}
        job = _job_of_span(record.get("span_id"), spans_by_id)
        key = (job, attrs.get("model"))
        if record.get("name") == "train_epoch":
            runs.setdefault(key, []).append(attrs)
        elif record.get("name") in ("early_stop", "train_diverged"):
            extras.setdefault(key, []).append(str(record["name"]))
    lines: List[str] = []
    for key in runs:
        epochs = runs[key]
        job, model = key
        label = job or "training run"
        if model is not None:
            label += f" model={model}"
        last = epochs[-1]
        best = min((e.get("validation_loss") for e in epochs
                    if e.get("validation_loss") is not None),
                   default=None)
        line = (f"{label}: {len(epochs)} epochs, "
                f"final loss {last.get('loss', float('nan')):.5g}")
        if last.get("validation_loss") is not None:
            line += f", val {last['validation_loss']:.5g}"
        if best is not None:
            line += f", best val {best:.5g}"
        flags = extras.get(key)
        if flags:
            line += f" [{', '.join(sorted(set(flags)))}]"
        lines.append(line)
    return lines


def _last_metrics(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    metrics: Dict[str, Any] = {}
    for record in records:
        if record.get("kind") == "metrics":
            metrics = record.get("metrics") or {}
    return metrics


def cache_summary(metrics: Dict[str, Any]) -> Optional[str]:
    counters = metrics.get("counters") or {}
    hits = counters.get("cache.hits")
    misses = counters.get("cache.misses")
    if hits is None and misses is None:
        return None
    hits = hits or 0
    misses = misses or 0
    total = hits + misses
    rate = f" ({hits / total:.0%} hit rate)" if total else ""
    return f"hits {hits:g}, misses {misses:g}{rate}"


def metrics_summary(metrics: Dict[str, Any], top: int = 12) -> List[str]:
    lines: List[str] = []
    counters = sorted((metrics.get("counters") or {}).items(),
                      key=lambda item: -item[1])
    for name, value in counters[:top]:
        lines.append(f"counter   {name} = {value:g}")
    for name, value in sorted((metrics.get("gauges") or {}).items()):
        lines.append(f"gauge     {name} = {value:g}")
    for name, payload in sorted((metrics.get("histograms") or {}).items()):
        count = payload.get("count", 0)
        if not count:
            continue
        mean = payload.get("total", 0.0) / count
        lines.append(
            f"histogram {name}: count {count}, mean {_format_ms(mean)}, "
            f"min {_format_ms(payload.get('min'))}, "
            f"max {_format_ms(payload.get('max'))}")
    return lines


def event_summary(records: List[Dict[str, Any]],
                  skip: Tuple[str, ...] = ("train_epoch",)) -> List[str]:
    counts: Dict[str, int] = {}
    for record in records:
        if record.get("kind") == "event" and record.get("name") not in skip:
            name = str(record.get("name"))
            counts[name] = counts.get(name, 0) + 1
    return [f"{name} ×{count}"
            for name, count in sorted(counts.items(), key=lambda i: -i[1])]


def render_report(records: List[Dict[str, Any]],
                  title: str = "telemetry report") -> str:
    """The full ``python -m repro report`` rendering."""
    sections: List[str] = [title]
    n_spans = sum(1 for r in records if r.get("kind") == "span")
    n_events = sum(1 for r in records if r.get("kind") == "event")
    sections.append(f"{len(records)} records "
                    f"({n_spans} spans, {n_events} events)")

    roots = build_span_tree(records)
    if roots:
        sections.append("\n== span tree ==")
        sections.extend(render_span_tree(roots))

    training = training_summary(records)
    if training:
        sections.append("\n== training ==")
        sections.extend(training)

    metrics = _last_metrics(records)
    cache = cache_summary(metrics)
    if cache:
        sections.append("\n== cache ==")
        sections.append(cache)

    lines = metrics_summary(metrics)
    if lines:
        sections.append("\n== metrics ==")
        sections.extend(lines)

    events = event_summary(records)
    if events:
        sections.append("\n== events ==")
        sections.extend(events)

    return "\n".join(sections)


def render_trace(path: str) -> str:
    return render_report(load_trace(path), title=f"telemetry report: {path}")
