"""Batched sweep execution must beat per-job dispatch on same-shape jobs.

Four same-shape CausalFormer discovery jobs (the ``sweep_batched`` bench
fixture) run through the executor both ways; the stacked pass must be
faster — it replaces four per-model numpy call sequences with one — while
returning identical graphs and scores (the unit tests in
``tests/service/test_batched_jobs.py`` pin identity on every field; this
module pins the speed claim with a committed margin).
"""

import time

from repro.service import bench
from repro.service.executor import JobExecutor


def best_of(runs, call):
    call()   # warm-up (imports, caches) outside the measurement
    samples = []
    for _ in range(runs):
        start = time.perf_counter()
        call()
        samples.append(time.perf_counter() - start)
    return min(samples)


def test_batched_sweep_faster_than_per_job_dispatch():
    pairs = bench._sweep_pairs()
    sequential = JobExecutor(max_workers=1, cache=None)
    batched = JobExecutor(max_workers=1, cache=None, batch_jobs=True)
    sequential_best = best_of(3, lambda: sequential.run(pairs))
    batched_best = best_of(3, lambda: batched.run(pairs))
    assert batched_best < sequential_best, (
        f"batched sweep took {batched_best:.3f}s, per-job dispatch "
        f"{sequential_best:.3f}s — stacking should win on 4 same-shape jobs")


def test_batched_sweep_matches_per_job_results():
    pairs = bench._sweep_pairs()
    sequential = JobExecutor(max_workers=1, cache=None).run(pairs)
    batched = JobExecutor(max_workers=1, cache=None, batch_jobs=True).run(pairs)
    for result_a, result_b in zip(sequential, batched):
        assert result_a.ok and result_b.ok
        assert sorted(edge.as_tuple() for edge in result_a.graph.edges) \
            == sorted(edge.as_tuple() for edge in result_b.graph.edges)
        assert result_a.scores.f1 == result_b.scores.f1

def test_hetero_sweep_faster_than_per_job_dispatch():
    """Mixed-length jobs (the ``sweep_hetero`` fixture) must also win
    stacked: shape bucketing + pad-and-mask lanes + compaction/refill
    amortise the dispatch overhead even when no two jobs share a shape."""
    pairs = bench._hetero_sweep_pairs()
    sequential = JobExecutor(max_workers=1, cache=None)
    batched = JobExecutor(max_workers=1, cache=None, batch_jobs=True,
                          bucket_slack=0.5, max_lanes=4)
    sequential_best = best_of(3, lambda: sequential.run(pairs))
    batched_best = best_of(3, lambda: batched.run(pairs))
    assert batched_best < sequential_best, (
        f"hetero batched sweep took {batched_best:.3f}s, per-job dispatch "
        f"{sequential_best:.3f}s — continuous batching should win on 6 "
        "mixed-shape jobs")


def test_hetero_sweep_matches_per_job_results():
    pairs = bench._hetero_sweep_pairs()
    sequential = JobExecutor(max_workers=1, cache=None).run(pairs)
    batched = JobExecutor(max_workers=1, cache=None, batch_jobs=True,
                          bucket_slack=0.5, max_lanes=4).run(pairs)
    for result_a, result_b in zip(sequential, batched):
        assert result_a.ok and result_b.ok
        assert sorted(edge.as_tuple() for edge in result_a.graph.edges) \
            == sorted(edge.as_tuple() for edge in result_b.graph.edges)
        assert result_a.scores.f1 == result_b.scores.f1
