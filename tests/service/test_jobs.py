"""Job specs: deterministic serialization, hashing and fingerprints."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.data import fork_dataset
from repro.service import (
    DiscoveryJob,
    JobResult,
    canonical_json,
    fingerprint_array,
    fingerprint_dataset,
)
from repro.service.executor import execute_job


def _job(**overrides):
    payload = dict(method="causalformer", config={"max_epochs": 5, "window": 10},
                   dataset="fork", dataset_fingerprint="ab" * 32, seed=3,
                   delay_tolerance=1)
    payload.update(overrides)
    return DiscoveryJob(**payload)


class TestCanonicalSerialization:
    def test_round_trip(self):
        job = _job()
        assert DiscoveryJob.from_dict(job.to_dict()) == job

    def test_canonical_is_valid_json(self):
        assert json.loads(_job().canonical())["method"] == "causalformer"

    def test_key_independent_of_config_insertion_order(self):
        forward = _job(config={"max_epochs": 5, "window": 10})
        backward = _job(config={"window": 10, "max_epochs": 5})
        assert forward.cache_key() == backward.cache_key()

    @pytest.mark.parametrize("field, value", [
        ("method", "cmlp"),
        ("config", {"max_epochs": 6, "window": 10}),
        ("dataset_fingerprint", "cd" * 32),
        ("seed", 4),
        ("delay_tolerance", 0),
    ])
    def test_key_changes_with_every_field(self, field, value):
        assert _job().cache_key() != _job(**{field: value}).cache_key()

    def test_job_id_is_filesystem_safe(self):
        job_id = _job().job_id
        assert "/" not in job_id and " " not in job_id
        assert job_id.startswith("fork-causalformer-seed3-")


class TestHashStability:
    def test_key_stable_across_processes(self):
        """The cache key must be reproducible in a fresh interpreter."""
        job = _job()
        script = (
            "from repro.service import DiscoveryJob;"
            f"import json; job = DiscoveryJob.from_dict(json.loads({job.canonical()!r}));"
            "print(job.cache_key())"
        )
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        output = subprocess.run(
            [sys.executable, "-c", script],
            env={**os.environ, "PYTHONPATH": src},
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert output == job.cache_key()


class TestFingerprints:
    def test_fingerprint_deterministic(self):
        dataset = fork_dataset(seed=0, length=80)
        assert fingerprint_dataset(dataset) == fingerprint_dataset(dataset)

    def test_fingerprint_tracks_values(self):
        dataset = fork_dataset(seed=0, length=80)
        other = fork_dataset(seed=1, length=80)
        assert fingerprint_dataset(dataset) != fingerprint_dataset(other)

    def test_fingerprint_tracks_ground_truth(self):
        dataset = fork_dataset(seed=0, length=80)
        modified = fork_dataset(seed=0, length=80)
        assert np.array_equal(dataset.values, modified.values)
        modified.graph.add_edge(0, 2, 3)
        assert fingerprint_dataset(dataset) != fingerprint_dataset(modified)

    def test_plain_array_fingerprint(self):
        values = np.arange(12, dtype=float).reshape(3, 4)
        assert fingerprint_dataset(values) == fingerprint_array(values)
        assert fingerprint_array(values) != fingerprint_array(values.T)

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestJobResultRoundTrip:
    def test_success_round_trip(self):
        dataset = fork_dataset(seed=0, length=140)
        job = DiscoveryJob(method="var_granger", dataset="fork",
                           dataset_fingerprint=fingerprint_dataset(dataset))
        result = execute_job(job, dataset)
        assert result.ok and result.duration > 0

        restored = JobResult.from_dict(result.to_dict())
        assert restored.job == result.job
        assert restored.graph == result.graph
        assert restored.scores.f1 == result.scores.f1
        assert restored.scores.counts.true_positive == result.scores.counts.true_positive

    def test_error_round_trip(self):
        result = JobResult(job=_job(), error="Traceback: boom")
        restored = JobResult.from_dict(result.to_dict())
        assert not restored.ok
        assert restored.error == result.error
        assert restored.metric("f1") is None

    def test_retry_bookkeeping_round_trip(self):
        result = JobResult(job=_job(), error="boom", attempts=3,
                           dead_letter=True)
        restored = JobResult.from_dict(result.to_dict())
        assert restored.attempts == 3 and restored.dead_letter

    def test_first_attempt_defaults_stay_out_of_the_payload(self):
        result = JobResult(job=_job(), error="boom")
        payload = result.to_dict()
        assert "attempts" not in payload and "dead_letter" not in payload
        restored = JobResult.from_dict(payload)
        assert restored.attempts == 1 and not restored.dead_letter
