"""Pluggable AST lint framework enforcing the engine invariants.

The fused engines' performance and correctness contracts — arena-only
allocation in steady state, no silent float64 promotion, declared
``parallel_for`` outputs, the telemetry null-object guarantee, no stray
``print`` — are statically checkable from the AST.  This package checks
them on every commit:

.. code-block:: console

    $ python -m repro lint                 # text report, exit 1 on findings
    $ python -m repro lint --format json   # CI artifact
    $ python -m repro lint --list-rules    # rule catalogue

Violations that are *deliberate* (blessed float64 promotion sites, the
cold-start fallback in an otherwise hot helper) carry a justified
suppression comment in the source::

    out = np.empty(shape)  # repro: allow(hot-path-alloc): cold-start fallback, engine call sites pass out=

Suppressions without a justification — or naming an unknown rule — are
themselves lint errors (:mod:`repro.analysis.suppressions`).

Extending
---------
Register new rules with :func:`register`; a checker is one class with a
``name``, a ``description`` and a ``check(module, config)`` generator (see
:class:`Checker`).  The built-ins live in :mod:`repro.analysis.checkers`
and double as reference implementations.
"""

from repro.analysis.base import (Checker, CheckerConfig, Finding, LintConfig,
                                 ModuleSource)
from repro.analysis.registry import (build_checkers, get_checker, register,
                                     rule_names)
from repro.analysis.runner import (EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS,
                                   LintResult, default_root, lint_paths)
from repro.analysis.suppressions import (SUPPRESSION_RULE, SuppressionSheet,
                                         parse_suppressions)

__all__ = [
    "Checker", "CheckerConfig", "EXIT_CLEAN", "EXIT_ERROR", "EXIT_FINDINGS",
    "Finding", "LintConfig", "LintResult", "ModuleSource",
    "SUPPRESSION_RULE", "SuppressionSheet", "build_checkers",
    "default_root", "get_checker", "lint_paths", "parse_suppressions",
    "register", "rule_names",
]
