"""DVGNN-lite — dynamic diffusion-variational graph neural network, reduced.

The original DVGNN (Liang et al., 2023) learns a latent diffusion adjacency
between series with a variational graph encoder and uses graph convolutions
for spatio-temporal forecasting; its causal scores are the learned adjacency
entries.  This reduced re-implementation keeps the causal-scoring core the
paper compares against: a learnable (softmax-normalised) diffusion adjacency
trained end-to-end through a one-step graph-propagation predictor, scored by
the adjacency weights.  See DESIGN.md (Substitutions) for the rationale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import ScoreBasedMethod
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class _DiffusionPredictor(Module):
    """One-step predictor: X_t ≈ (softmax(A) @ φ(X_{t-1})) · w + self term."""

    def __init__(self, n_series: int, hidden: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.n_series = n_series
        rng = rng or init.default_rng()
        self.adjacency_logits = Parameter(init.normal((n_series, n_series), 0.0, 0.1, rng))
        self.w_feature = Parameter(init.he_normal((1, hidden), rng))
        self.b_feature = Parameter(init.zeros((hidden,)))
        self.w_readout = Parameter(init.he_normal((hidden, 1), rng))
        self.b_readout = Parameter(init.zeros((1,)))
        self.self_weight = Parameter(init.ones((n_series,)) * 0.5)

    def adjacency(self) -> Tensor:
        """Row-normalised diffusion matrix (row = target, column = source)."""
        return F.softmax(self.adjacency_logits, axis=-1)

    def forward(self, previous: Tensor) -> Tensor:
        """Predict ``(batch, N)`` at time t from ``(batch, N)`` at time t-1."""
        features = F.tanh(previous.unsqueeze(-1) @ self.w_feature + self.b_feature)
        adjacency = self.adjacency()
        diffused = T_einsum_bnh(adjacency, features)
        readout = (diffused @ self.w_readout + self.b_readout).squeeze(-1)
        return readout + self.self_weight * previous


def T_einsum_bnh(adjacency: Tensor, features: Tensor) -> Tensor:
    """``diffused[b, n, h] = Σ_m adjacency[n, m] · features[b, m, h]``."""
    from repro.nn.tensor import einsum

    return einsum("nm,bmh->bnh", adjacency, features)


class DvgnnLite(ScoreBasedMethod):
    """Graph-learning diffusion predictor scored by its learned adjacency."""

    name = "dvgnn"

    def __init__(self, hidden: int = 8, epochs: int = 150, learning_rate: float = 1e-2,
                 sparsity: float = 1e-3, max_samples: int = 512, **kwargs) -> None:
        super().__init__(**kwargs)
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.sparsity = sparsity
        self.max_samples = max_samples
        self.model_: Optional[_DiffusionPredictor] = None

    def _fit(self, values: np.ndarray) -> None:
        rng = init.default_rng(self.seed)
        n_series, n_timesteps = values.shape
        if n_timesteps > self.max_samples:
            values = values[:, :self.max_samples]
        previous = Tensor(values[:, :-1].T)   # (T-1, N)
        current = Tensor(values[:, 1:].T)     # (T-1, N)
        model = _DiffusionPredictor(n_series, self.hidden, rng=rng)
        optimizer = Adam(model.parameters(), lr=self.learning_rate)
        for _epoch in range(self.epochs):
            optimizer.zero_grad()
            prediction = model(previous)
            loss = F.mse_loss(prediction, current)
            loss = loss + self.sparsity * model.adjacency_logits.abs().sum()
            loss.backward()
            optimizer.step()
        self.model_ = model

    def causal_scores(self, values: np.ndarray) -> np.ndarray:
        self._fit(values)
        # adjacency[target, source] already matches the score convention.
        return self.model_.adjacency().data.copy()
