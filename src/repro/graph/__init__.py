"""Temporal causal graphs and evaluation metrics."""

from repro.graph.causal_graph import TemporalCausalEdge, TemporalCausalGraph
from repro.graph.metrics import (
    ConfusionCounts,
    DiscoveryScores,
    confusion_counts,
    precision_recall_f1,
    precision_of_delay,
    structural_hamming_distance,
    evaluate_discovery,
    aggregate_scores,
)
from repro.graph.random_graphs import random_temporal_graph, random_dag

__all__ = [
    "TemporalCausalEdge",
    "TemporalCausalGraph",
    "ConfusionCounts",
    "DiscoveryScores",
    "confusion_counts",
    "precision_recall_f1",
    "precision_of_delay",
    "structural_hamming_distance",
    "evaluate_discovery",
    "aggregate_scores",
    "random_temporal_graph",
    "random_dag",
]
