"""Framework plumbing: registry, runner, reporters, CLI and the tree gate."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import (Checker, EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS,
                            build_checkers, default_root, lint_paths,
                            register, rule_names)
from repro.analysis import registry as registry_module
from repro.analysis.cli import main as lint_main
from repro.analysis.reporters import (JSON_SCHEMA_VERSION, render_json,
                                      render_text)

ROOT = default_root()
BUILTIN_RULES = ["dtype-purity", "hot-path-alloc", "no-print",
                 "parallel-outputs", "telemetry-guard"]


class TestRegistry:
    def test_builtin_catalogue(self):
        assert rule_names() == BUILTIN_RULES

    def test_build_checkers_selects_by_name(self):
        checkers = build_checkers(["no-print", "dtype-purity"])
        assert [checker.name for checker in checkers] \
            == ["no-print", "dtype-purity"]

    def test_unknown_rule_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            build_checkers(["no-such-rule"])

    def test_register_rejects_anonymous_checkers(self):
        class Nameless(Checker):
            pass

        with pytest.raises(ValueError, match="declares no rule name"):
            register(Nameless)

    def test_register_rejects_duplicate_names(self):
        class Impostor(Checker):
            name = "no-print"

        with pytest.raises(ValueError, match="already registered"):
            register(Impostor)

    def test_third_party_registration_round_trips(self):
        @register
        class NoEval(Checker):
            name = "fixture-no-eval"
            description = "fixture rule"

            def check(self, module, config):
                return iter(())

        try:
            assert "fixture-no-eval" in rule_names()
            assert build_checkers(["fixture-no-eval"])[0].description \
                == "fixture rule"
        finally:
            del registry_module._REGISTRY["fixture-no-eval"]


class TestRunnerAndReporters:
    def test_exit_codes(self, lint_source):
        clean = lint_source("x = 1\n")
        assert clean.exit_code == EXIT_CLEAN
        dirty = lint_source("print('hi')\n",
                            relative="src/repro/data/synthetic.py",
                            rules=["no-print"])
        assert dirty.exit_code == EXIT_FINDINGS

    def test_parse_error_is_a_finding(self, lint_source):
        result = lint_source("def broken(:\n")
        assert [finding.rule for finding in result.findings] \
            == ["parse-error"]
        assert result.exit_code == EXIT_FINDINGS

    def test_text_report_format(self, lint_source):
        result = lint_source("print('hi')\n",
                             relative="src/repro/data/synthetic.py",
                             rules=["no-print"])
        lines = render_text(result).splitlines()
        assert lines[0].startswith("src/repro/data/synthetic.py:1:0: "
                                   "no-print: ")
        assert "1 finding(s)" in lines[-1]

    def test_json_report_schema(self, lint_source):
        result = lint_source("print('hi')\n",
                             relative="src/repro/data/synthetic.py",
                             rules=["no-print"])
        payload = json.loads(render_json(result))
        assert sorted(payload) == ["clean", "files_checked", "findings",
                                   "root", "rules", "suppressed", "version"]
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        finding, = payload["findings"]
        assert sorted(finding) == ["column", "line", "message", "path",
                                   "rule"]
        assert finding["rule"] == "no-print"
        assert finding["path"] == "src/repro/data/synthetic.py"
        assert finding["line"] == 1

    def test_findings_sorted_by_location(self, lint_source):
        result = lint_source("""\
            print('b')
            print('a')
            """, relative="src/repro/data/synthetic.py", rules=["no-print"])
        assert [finding.line for finding in result.findings] == [1, 2]


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        assert lint_main(["--rules", "no-print", "--root", ROOT]) \
            == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--rules", "no-such-rule"]) == EXIT_ERROR
        assert "no-such-rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert lint_main(["definitely/not/a/path.py"]) == EXIT_ERROR

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in BUILTIN_RULES:
            assert f"{rule}: " in out

    def test_json_output_file(self, tmp_path, capsys):
        report = tmp_path / "lint.json"
        code = lint_main(["--rules", "no-print", "--root", ROOT,
                          "--format", "json", "--output", str(report)])
        assert code == EXIT_CLEAN
        payload = json.loads(report.read_text())
        assert payload["clean"] is True
        assert payload["rules"] == ["no-print"]


class TestContracts:
    def test_hot_path_marks_without_wrapping(self):
        from repro.contracts import hot_path, is_hot_path

        def function():
            return 42

        marked = hot_path(function)
        assert marked is function  # no wrapper, zero per-call cost
        assert is_hot_path(marked)
        assert not is_hot_path(lambda: None)

    def test_engine_hot_paths_are_marked(self):
        from repro.contracts import is_hot_path
        from repro.nn.inference import (InferenceEngine, max_last_keepdims,
                                        sum_last_keepdims)

        assert is_hot_path(max_last_keepdims)
        assert is_hot_path(sum_last_keepdims)
        assert is_hot_path(InferenceEngine._forward)
        assert is_hot_path(InferenceEngine._softmax_inplace)


class TestTreeGate:
    def test_head_is_lint_clean(self):
        """The committed tree passes the full rule set — the CI contract."""
        result = lint_paths()
        assert result.findings == [], render_text(result)
        assert result.files_checked > 50
        # The deliberate promotions/fallbacks documented in the README stay
        # suppressed (each carries its justification in the source).
        assert result.suppressed > 0

    def test_tools_entry_points(self):
        env = dict(os.environ)
        for script in ("tools/lint.py", "tools/check_print.py"):
            process = subprocess.run(
                [sys.executable, os.path.join(ROOT, script)],
                capture_output=True, text=True, env=env, cwd=ROOT)
            assert process.returncode == 0, (script, process.stdout,
                                             process.stderr)
            assert "clean" in process.stdout
