"""Property-based tests (hypothesis) of the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import functional as F
from repro.nn.tensor import Tensor

FINITE = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


def small_arrays(max_dims=2, max_side=5):
    return arrays(dtype=np.float64,
                  shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
                  elements=FINITE)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_gradient_of_sum_is_ones(values):
    x = Tensor(values, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(values))


@settings(max_examples=40, deadline=None)
@given(small_arrays(), st.floats(min_value=-5, max_value=5, allow_nan=False))
def test_gradient_is_linear_in_scale(values, scale):
    x = Tensor(values, requires_grad=True)
    (x * scale).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(values, scale))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_addition_commutes_in_forward_and_backward(values):
    other = np.ones_like(values) * 0.5
    a = Tensor(values, requires_grad=True)
    b = Tensor(values, requires_grad=True)
    (a + Tensor(other)).sum().backward()
    (Tensor(other) + b).sum().backward()
    np.testing.assert_allclose(a.grad, b.grad)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_mse_of_self_is_zero_with_zero_gradient(values):
    x = Tensor(values, requires_grad=True)
    loss = F.mse_loss(x, Tensor(values.copy()))
    loss.backward()
    assert float(loss.data) == 0.0
    np.testing.assert_allclose(x.grad, 0.0)


@settings(max_examples=40, deadline=None)
@given(arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 4), st.integers(2, 6)),
              elements=FINITE))
def test_softmax_rows_always_sum_to_one(values):
    out = F.softmax(Tensor(values), axis=-1)
    np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-9)
    assert np.all(out.data >= 0)


@settings(max_examples=40, deadline=None)
@given(arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 4), st.integers(2, 6)),
              elements=FINITE))
def test_softmax_gradient_rows_sum_to_zero(values):
    x = Tensor(values, requires_grad=True)
    weights = np.linspace(0.0, 1.0, values.shape[1])
    (F.softmax(x, axis=-1) * Tensor(weights)).sum().backward()
    np.testing.assert_allclose(x.grad.sum(axis=-1), 0.0, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_abs_gradient_has_unit_magnitude_away_from_zero(values):
    values = values + np.where(values >= 0, 0.1, -0.1)  # keep away from the kink
    x = Tensor(values, requires_grad=True)
    x.abs().sum().backward()
    np.testing.assert_allclose(np.abs(x.grad), 1.0)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2), small_arrays(max_dims=2))
def test_sum_rule_of_gradients(a_values, b_values):
    """grad of (f + g) equals grad f + grad g for elementwise squares."""
    if a_values.shape != b_values.shape:
        return
    x = Tensor(a_values, requires_grad=True)
    ((x * x).sum() + (x * Tensor(b_values)).sum()).backward()
    expected = 2 * a_values + b_values
    np.testing.assert_allclose(x.grad, expected, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.integers(min_value=2, max_value=6))
def test_matmul_gradient_shapes(n, m):
    a = Tensor(np.ones((n, m)), requires_grad=True)
    b = Tensor(np.ones((m, n)), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == (n, m)
    assert b.grad.shape == (m, n)
    np.testing.assert_allclose(a.grad, n)
    np.testing.assert_allclose(b.grad, n)
