"""Parity and arena-reuse tests for the fused no-autograd inference engine.

The engine's contract is strict: in float64 it must reproduce the autograd
paths bit for bit (same operation sequence), and in float32 it must agree
within tolerance; the detector-facing cache forward and hand-derived
multi-target gradients must be bit-identical in both dtypes (the detector
always interprets through the float64 twin, and the gradient transcription
replays the exact autograd ops).  Steady-state evaluation must reuse its
scratch buffers instead of allocating.
"""

import numpy as np
import pytest

from repro.core.config import CausalFormerConfig
from repro.core.training import Trainer
from repro.core.transformer import CausalityAwareTransformer
from repro.nn.inference import InferenceEngine, ScratchArena
from repro.nn.tensor import Tensor, default_dtype, no_grad


def build(dtype, n_series=5, window=12, n_heads=3, seed=0, **overrides):
    with default_dtype(dtype):
        config = CausalFormerConfig(
            n_series=n_series, window=window, d_model=18, d_qk=18, d_ffn=18,
            n_heads=n_heads, batch_size=4, seed=seed, **overrides)
        model = CausalityAwareTransformer(config)
    return model, config


def window_batch(model, batch=7, seed=1):
    config = model.config
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(batch, config.n_series, config.window))
    return np.ascontiguousarray(data, dtype=model.embedding.weight.data.dtype)


class TestScratchArena:
    def test_take_reuses_buffer(self):
        arena = ScratchArena()
        first = arena.take("x", (4, 4), np.float64)
        second = arena.take("x", (4, 4), np.float64)
        assert first is second

    def test_take_reallocates_on_shape_change(self):
        arena = ScratchArena()
        first = arena.take("x", (4, 4), np.float64)
        second = arena.take("x", (2, 4), np.float64)
        assert first is not second
        assert second.shape == (2, 4)

    def test_buffers_zero_filled_on_allocation(self):
        arena = ScratchArena()
        assert not arena.take("x", (8,), np.float64).any()

    def test_space_caches_views(self):
        arena = ScratchArena()
        space = arena.space(("test", (3,)))
        buffer = space.take("b", (6,), np.float64)
        view = space.view("b2", lambda: buffer.reshape(2, 3))
        assert space.view("b2", lambda: None) is view
        assert arena.space(("test", (3,))) is space

    def test_nbytes_counts_spaces(self):
        arena = ScratchArena()
        arena.take("a", (8,), np.float64)
        arena.space(("s",)).take("b", (8,), np.float64)
        assert arena.nbytes == 2 * 8 * 8
        assert len(arena) == 2


class TestForwardParity:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_forward_matches_autograd_fast_path(self, dtype):
        model, _config = build(dtype)
        x = window_batch(model)
        with no_grad():
            reference, _ = model(Tensor(x.copy()))
        prediction = InferenceEngine(model).forward(x)
        if dtype is np.float64:
            assert np.array_equal(reference.data, prediction)
        else:
            np.testing.assert_allclose(reference.data, prediction,
                                       rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_loss_matches_autograd(self, dtype):
        model, _config = build(dtype)
        x = window_batch(model)
        with no_grad():
            prediction, _ = model(Tensor(x.copy()))
            reference = float(model.loss(prediction, Tensor(x.copy())).data)
        value = InferenceEngine(model).loss(x)
        if dtype is np.float64:
            assert value == reference
        else:
            assert value == pytest.approx(reference, rel=1e-5)

    def test_convolution_matches_fused_op(self):
        from repro.nn import functional as F

        model, _config = build(np.float64)
        x = window_batch(model)
        engine = InferenceEngine(model)
        stage = engine._stage()
        space = engine.arena.space(("test", x.shape))
        values, _flat = engine._convolution(space, x, stage)
        with no_grad():
            reference = F.causal_conv(Tensor(x.copy()),
                                      model.convolution.effective_kernel(),
                                      model.convolution._scale_array,
                                      right_shift=True)
        assert np.array_equal(reference.data, values)

    def test_attention_probs_match_fused_op(self):
        from repro.nn import functional as F

        model, _config = build(np.float64)
        attention = model.attention
        x = window_batch(model)
        engine = InferenceEngine(model)
        stage = engine._stage()
        space = engine.arena.space(("test", x.shape))
        probs, _emb, _scores = engine._attention_probs(space, x, stage)
        scale = 1.0 / (attention.temperature * np.sqrt(attention.d_qk))
        with no_grad():
            reference = F.causal_attention_probs(
                Tensor(x.copy()), attention.query_weights,
                attention.query_biases, attention.key_weights,
                attention.key_biases, attention.mask_parameters, scale,
                embed_weight=model.embedding.weight,
                embed_bias=model.embedding.bias)
        assert np.array_equal(reference.data, probs)

    def test_mlp_tail_matches_fused_op(self):
        """Conv+attention already verified; the end-to-end equality of
        ``forward`` on top of them pins the combine + MLP + output tail."""
        model, _config = build(np.float64, n_heads=1)
        x = window_batch(model, batch=3)
        with no_grad():
            reference, _ = model(Tensor(x.copy()))
        assert np.array_equal(reference.data, InferenceEngine(model).forward(x))

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_evaluate_matches_chunked_autograd(self, dtype):
        """Bit-for-bit against the historical chunked no_grad validation."""
        model, config = build(dtype, window=10)
        trainer = Trainer(model, config)
        windows = np.ascontiguousarray(
            np.random.default_rng(2).normal(size=(23, config.n_series, 10)),
            dtype=dtype)

        total = 0.0
        count = 0
        with no_grad():
            for start in range(0, windows.shape[0], config.batch_size):
                chunk = Tensor(windows[start:start + config.batch_size])
                prediction, _ = model(chunk)
                total += float(model.loss(prediction, chunk).data) * len(chunk)
                count += len(chunk)
        reference = total / count
        assert trainer._evaluate(windows) == reference

    def test_evaluate_chunked_fallback_matches_full_batch(self):
        model, config = build(np.float64, window=10)
        engine = InferenceEngine(model)
        windows = np.random.default_rng(3).normal(size=(17, config.n_series, 10))
        full = engine.evaluate(windows, config.batch_size)
        engine.FULL_BATCH_ELEMENT_LIMIT = 1   # force the chunk loop
        try:
            assert engine.evaluate(windows, config.batch_size) == full
        finally:
            del engine.FULL_BATCH_ELEMENT_LIMIT

    def test_predict_matches_forward_and_owns_result(self):
        model, _config = build(np.float64)
        x = window_batch(model, batch=2)
        first = model.predict(x)
        second = model.predict(np.zeros_like(x))
        assert not np.array_equal(first, second)   # no buffer aliasing
        with no_grad():
            reference, _ = model(Tensor(x.copy()))
        assert np.array_equal(model.predict(x), reference.data)

    def test_predict_accepts_2d_window(self):
        model, config = build(np.float64)
        x = window_batch(model, batch=1)
        assert model.predict(x[0]).shape == (config.n_series, config.window)


class TestCachePathParity:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_interpretation_forward_matches_cache_path(self, dtype):
        model, _config = build(dtype)
        x = window_batch(model)
        with no_grad():
            _prediction, reference = model(Tensor(x.copy()), return_cache=True)
        forward = InferenceEngine(model).interpretation_forward(x)
        cache = forward.cache
        for field in ("inputs", "embedding", "values", "values_pre_shift",
                      "conv_windows", "attention_combined", "ffn_hidden",
                      "ffn_activated", "ffn_output", "output"):
            assert np.array_equal(np.asarray(getattr(reference, field)),
                                  np.asarray(getattr(cache, field))), field
        for head_ref, head in zip(reference.head_caches, cache.head_caches):
            assert np.array_equal(head_ref.attention_data, head.attention_data)
            assert np.array_equal(head_ref.head_output_data,
                                  head.head_output_data)
            assert np.array_equal(head_ref.scores_data, head.scores_data)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("single_kernel", [False, True])
    def test_interpretation_gradients_match_autograd(self, dtype, single_kernel):
        model, config = build(dtype, single_kernel=single_kernel)
        x = window_batch(model, batch=4)
        engine = InferenceEngine(model)
        forward = engine.interpretation_forward(x)
        targets = list(range(config.n_series))
        attention_grads, kernel_grads = engine.interpretation_gradients(
            forward, targets)
        for index, target in enumerate(targets):
            model.zero_grad()
            prediction, cache = model(Tensor(x.copy()), return_cache=True)
            one_hot = np.zeros_like(prediction.data)
            one_hot[:, target, :] = 1.0
            (prediction * Tensor(one_hot)).sum().backward()
            for head, head_cache in enumerate(cache.head_caches):
                assert np.array_equal(head_cache.attention.grad,
                                      attention_grads[index, head])
            assert np.array_equal(model.convolution.kernel.grad,
                                  kernel_grads[index])


class TestSteadyStateReuse:
    def test_evaluate_allocates_no_new_buffers_after_warmup(self):
        model, config = build(np.float64)
        engine = InferenceEngine(model)
        windows = np.random.default_rng(4).normal(
            size=(13, config.n_series, config.window))
        engine.evaluate(windows, config.batch_size)
        identifiers = engine.arena.buffer_ids()
        for _ in range(3):
            engine.evaluate(windows, config.batch_size)
        assert engine.arena.buffer_ids() == identifiers

    def test_interpretation_forward_reuses_buffers(self):
        model, config = build(np.float64)
        engine = InferenceEngine(model)
        windows = np.random.default_rng(5).normal(
            size=(4, config.n_series, config.window))
        engine.interpretation_forward(windows)
        identifiers = engine.arena.buffer_ids()
        engine.interpretation_forward(windows)
        assert engine.arena.buffer_ids() == identifiers

    def test_training_backward_arena_reused_across_steps(self):
        from repro.nn.functional import _backward_arena

        model, config = build(np.float32, window=10)
        trainer = Trainer(model, config)
        values = np.random.default_rng(6).normal(size=(config.n_series, 120))
        windows = np.ascontiguousarray(trainer.make_windows(values),
                                       dtype=np.float32)
        trainer._run_epoch(windows, np.random.default_rng(0))
        identifiers = _backward_arena().buffer_ids()
        trainer._run_epoch(windows, np.random.default_rng(1))
        assert _backward_arena().buffer_ids() == identifiers


class TestStackedEngine:
    """StackedInferenceEngine: per-model results bit-identical to the
    single-model engine, in float64 and float32 alike (the stacked buffers
    dispatch the same per-slice GEMMs and reductions)."""

    def _fleet(self, dtype, n_models=3, **overrides):
        models = [build(dtype, seed=seed, **overrides)[0]
                  for seed in range(n_models)]
        rng = np.random.default_rng(7)
        window_sets = [np.ascontiguousarray(
            rng.normal(size=(9,
                             models[0].config.n_series,
                             models[0].config.window)),
            dtype=models[0].embedding.weight.data.dtype)
            for _ in models]
        return models, window_sets

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_evaluate_matches_per_model(self, dtype):
        from repro.nn.inference import StackedInferenceEngine

        models, window_sets = self._fleet(dtype)
        stacked = StackedInferenceEngine(models).evaluate(window_sets, 4)
        single = [InferenceEngine(model).evaluate(windows, 4)
                  for model, windows in zip(models, window_sets)]
        assert stacked == single

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_chunked_evaluate_matches_per_model(self, dtype, monkeypatch):
        from repro.nn.inference import StackedInferenceEngine

        monkeypatch.setattr(InferenceEngine, "FULL_BATCH_ELEMENT_LIMIT", 1)
        models, window_sets = self._fleet(dtype)
        stacked = StackedInferenceEngine(models).evaluate(window_sets, 4)
        single = [InferenceEngine(model).evaluate(windows, 4)
                  for model, windows in zip(models, window_sets)]
        assert stacked == single

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_forward_matches_per_model(self, dtype):
        from repro.nn.inference import StackedInferenceEngine

        models, window_sets = self._fleet(dtype)
        stacked = StackedInferenceEngine(models).forward(window_sets)
        for row, (model, windows) in enumerate(zip(models, window_sets)):
            # predict() replays the same Tensor-construction cast chain the
            # stacked batch staging uses, so the comparison holds whatever
            # the ambient session dtype is.
            single = InferenceEngine(model).predict(windows)
            assert np.array_equal(stacked[row], single)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("single_kernel", [False, True])
    def test_interpretation_forward_matches_per_model(self, dtype,
                                                      single_kernel):
        from repro.nn.inference import StackedInferenceEngine

        models, window_sets = self._fleet(dtype, single_kernel=single_kernel)
        stacked = StackedInferenceEngine(models)
        forward = stacked.interpretation_forward(window_sets)
        for row, (model, windows) in enumerate(zip(models, window_sets)):
            reference = InferenceEngine(model).interpretation_forward(windows)
            cache_a, cache_b = reference.cache, forward.forwards[row].cache
            for name in ("inputs", "embedding", "values_pre_shift", "values",
                         "conv_windows", "attention_combined", "ffn_hidden",
                         "ffn_activated", "ffn_output", "output"):
                assert np.array_equal(getattr(cache_a, name),
                                      getattr(cache_b, name)), name
            for head_a, head_b in zip(cache_a.head_caches,
                                      cache_b.head_caches):
                assert np.array_equal(head_a.attention_data,
                                      head_b.attention_data)
                assert np.array_equal(head_a.head_output_data,
                                      head_b.head_output_data)
                assert np.array_equal(head_a.scores_data, head_b.scores_data)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("single_kernel", [False, True])
    def test_interpretation_gradients_match_per_model(self, dtype,
                                                      single_kernel):
        from repro.nn.inference import StackedInferenceEngine

        models, window_sets = self._fleet(dtype, single_kernel=single_kernel)
        targets = list(range(models[0].config.n_series))
        stacked = StackedInferenceEngine(models)
        forward = stacked.interpretation_forward(window_sets)
        attention_grads, kernel_grads = stacked.interpretation_gradients(
            forward, targets)
        for row, (model, windows) in enumerate(zip(models, window_sets)):
            engine = InferenceEngine(model)
            reference = engine.interpretation_gradients(
                engine.interpretation_forward(windows), targets)
            assert np.array_equal(attention_grads[row], reference[0])
            assert np.array_equal(kernel_grads[row], reference[1])

    def test_rejects_mismatched_architectures(self):
        from repro.nn.inference import StackedInferenceEngine

        model_a, _ = build(np.float64)
        model_b, _ = build(np.float64, window=16)
        with pytest.raises(ValueError, match="same-architecture"):
            StackedInferenceEngine([model_a, model_b])

    def test_rejects_mismatched_window_shapes(self):
        from repro.nn.inference import StackedInferenceEngine

        models, window_sets = self._fleet(np.float64, n_models=2)
        with pytest.raises(ValueError, match="same-shape"):
            StackedInferenceEngine(models).evaluate(
                [window_sets[0], window_sets[1][:4]], 4)

    def test_steady_state_reuses_buffers(self):
        from repro.nn.inference import StackedInferenceEngine

        models, window_sets = self._fleet(np.float64)
        engine = StackedInferenceEngine(models)
        first = engine.evaluate(window_sets, 4)
        identifiers = engine.arena.buffer_ids()
        second = engine.evaluate(window_sets, 4)
        assert engine.arena.buffer_ids() == identifiers
        assert first == second


class TestStackedEngineValidation:
    def test_rejects_mismatched_temperature(self):
        from repro.nn.inference import StackedInferenceEngine

        model_a, _ = build(np.float64)
        model_b, _ = build(np.float64, seed=1)
        model_b.attention.temperature = 2.0
        with pytest.raises(ValueError, match="temperature"):
            StackedInferenceEngine([model_a, model_b])

    def test_full_batch_budget_scales_with_fleet_size(self):
        """The stacked full-batch branch divides the element budget by the
        fleet size; whichever branch each side takes, the per-model results
        stay bit-identical."""
        from repro.nn.inference import InferenceEngine, StackedInferenceEngine

        models = [build(np.float64, seed=seed)[0] for seed in range(3)]
        rng = np.random.default_rng(3)
        window_sets = [np.ascontiguousarray(
            rng.normal(size=(9, models[0].config.n_series,
                             models[0].config.window)))
            for _ in models]
        per_model_elements = 9 * models[0].config.n_series ** 2 \
            * models[0].config.window
        # A limit between the per-model and the stacked footprint: the
        # single engines run full-batch, the stacked engine chunks.
        import repro.nn.inference as inference_module
        original = InferenceEngine.FULL_BATCH_ELEMENT_LIMIT
        InferenceEngine.FULL_BATCH_ELEMENT_LIMIT = 2 * per_model_elements
        try:
            stacked = StackedInferenceEngine(models).evaluate(window_sets, 4)
            single = [InferenceEngine(model).evaluate(windows, 4)
                      for model, windows in zip(models, window_sets)]
        finally:
            InferenceEngine.FULL_BATCH_ELEMENT_LIMIT = original
        assert stacked == single
