"""Lorenz-96 simulator and its ground-truth coupling graph."""

import numpy as np
import pytest

from repro.data.lorenz import (
    lorenz96_dataset,
    lorenz96_derivative,
    lorenz96_graph,
    simulate_lorenz96,
)


class TestDerivative:
    def test_fixed_point_without_forcing_gradient(self):
        """At x_i = F for all i the derivative is zero (the trivial equilibrium)."""
        forcing = 8.0
        state = np.full(6, forcing)
        derivative = lorenz96_derivative(state, forcing)
        np.testing.assert_allclose(derivative, 0.0, atol=1e-12)

    def test_matches_manual_formula(self):
        state = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        forcing = 2.0
        derivative = lorenz96_derivative(state, forcing)
        i = 2
        expected = (state[3] - state[0]) * state[1] - state[2] + forcing
        assert derivative[i] == pytest.approx(expected)


class TestSimulation:
    def test_output_shape(self):
        values = simulate_lorenz96(n_series=6, length=100, rng=np.random.default_rng(0))
        assert values.shape == (6, 100)

    def test_requires_at_least_four_variables(self):
        with pytest.raises(ValueError):
            simulate_lorenz96(n_series=3, length=10)

    def test_positive_length_required(self):
        with pytest.raises(ValueError):
            simulate_lorenz96(length=0)

    def test_bounded_trajectory(self):
        values = simulate_lorenz96(n_series=8, length=400, forcing=35.0,
                                   rng=np.random.default_rng(1))
        assert np.isfinite(values).all()
        assert np.abs(values).max() < 200.0

    def test_chaotic_not_constant(self):
        values = simulate_lorenz96(n_series=8, length=400, forcing=35.0,
                                   rng=np.random.default_rng(2))
        assert values.std() > 1.0

    def test_observation_noise_added(self):
        clean = simulate_lorenz96(n_series=6, length=50, noise_std=0.0,
                                  rng=np.random.default_rng(3))
        noisy = simulate_lorenz96(n_series=6, length=50, noise_std=1.0,
                                  rng=np.random.default_rng(3))
        assert not np.allclose(clean, noisy)


class TestGroundTruthGraph:
    def test_each_variable_has_four_causes(self):
        graph = lorenz96_graph(10)
        for i in range(10):
            assert len(graph.parents(i)) == 4  # i-2, i-1, i+1 and itself

    def test_without_self_loops(self):
        graph = lorenz96_graph(10, include_self_loops=False)
        for i in range(10):
            assert len(graph.parents(i)) == 3

    def test_ring_wraparound(self):
        graph = lorenz96_graph(5)
        assert graph.has_edge(4, 0)   # i-1 of variable 0
        assert graph.has_edge(3, 0)   # i-2 of variable 0
        assert graph.has_edge(1, 0)   # i+1 of variable 0


class TestDataset:
    def test_paper_defaults(self):
        dataset = lorenz96_dataset(length=100, seed=0)
        assert dataset.n_series == 10
        assert 30.0 <= dataset.metadata["forcing"] <= 40.0
        assert dataset.graph.n_edges == 40

    def test_explicit_forcing(self):
        dataset = lorenz96_dataset(length=50, forcing=32.0, seed=1)
        assert dataset.metadata["forcing"] == 32.0

    def test_reproducible(self):
        a = lorenz96_dataset(length=80, seed=9)
        b = lorenz96_dataset(length=80, seed=9)
        np.testing.assert_array_equal(a.values, b.values)
