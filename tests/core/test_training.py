"""Training loop: loss decrease, early stopping, best-state restoration."""

import numpy as np
import pytest

from repro.core import CausalFormerConfig, CausalityAwareTransformer, Trainer
from repro.data import fork_dataset


def make_config(**overrides):
    base = dict(n_series=3, window=8, d_model=12, d_qk=12, d_ffn=12, n_heads=2,
                max_epochs=12, window_stride=4, batch_size=32, seed=0,
                learning_rate=5e-3)
    base.update(overrides)
    return CausalFormerConfig(**base)


@pytest.fixture(scope="module")
def training_values():
    return fork_dataset(seed=0, length=260).normalized().values


class TestTrainer:
    def test_loss_decreases(self, training_values):
        config = make_config()
        model = CausalityAwareTransformer(config)
        trainer = Trainer(model, config)
        history = trainer.fit(training_values)
        assert history.n_epochs >= 2
        assert history.train_loss[-1] < history.train_loss[0]

    def test_history_lengths_match(self, training_values):
        config = make_config(max_epochs=5, patience=100)
        trainer = Trainer(CausalityAwareTransformer(config), config)
        history = trainer.fit(training_values)
        assert len(history.train_loss) == len(history.validation_loss) == 5

    def test_early_stopping_triggers(self, training_values):
        """With zero patience the trainer stops as soon as validation stalls."""
        config = make_config(max_epochs=50, patience=1, min_delta=10.0)
        trainer = Trainer(CausalityAwareTransformer(config), config)
        history = trainer.fit(training_values)
        assert history.stopped_early
        assert history.n_epochs < 50

    def test_best_state_restored(self, training_values):
        config = make_config(max_epochs=10)
        model = CausalityAwareTransformer(config)
        trainer = Trainer(model, config)
        history = trainer.fit(training_values)
        # After fit, the model must reproduce (approximately) the best
        # validation loss, not the last one.
        windows = trainer.make_windows(training_values)
        assert history.best_validation_loss <= min(history.validation_loss) + 1e-9

    def test_window_generation_respects_stride(self, training_values):
        config = make_config(window_stride=8)
        trainer = Trainer(CausalityAwareTransformer(config), config)
        windows = trainer.make_windows(training_values)
        expected = (training_values.shape[1] - config.window) // 8 + 1
        assert windows.shape == (expected, 3, config.window)

    def test_deterministic_given_seed(self, training_values):
        def run():
            config = make_config(max_epochs=4)
            model = CausalityAwareTransformer(config)
            Trainer(model, config).fit(training_values)
            return model.state_dict()

        a, b = run(), run()
        for key in a:
            np.testing.assert_allclose(a[key], b[key])
