"""Regression relevance propagation (RRP), paper Sec. 4.2.1.

RRP extends layer-wise relevance propagation (LRP) to regression models.  The
between-layer rule (Eq. 17) is

.. math::

    R^{(l)}_i = \\sum_j x_i \\; \\frac{\\partial f^{(l)}(x)_j}{\\partial x_i}
                \\; \\frac{R^{(l+1)}_j}{f^{(l)}(x)_j}

and non-parametric operations (matrix products) propagate relevance through
both operands with the two-operand variant (Eq. 18).  The bias term is kept
in the denominator (Eq. 15–16) so that the relevance the bias would claim is
subtracted from the inputs' relevance — removing it is the "w/o bias"
ablation of Table 3.

The propagation implemented here starts at the model output (initialised with
a one-hot relevance selecting the target series, Fig. 6a) and walks back
through the output layer, the feed-forward layer, the head-concatenation
weight, the attention application, and the causal convolution, stopping at
the attention matrix ``A`` and the convolution kernel ``K`` — exactly the
two tensors the causal-graph construction reads (Sec. 4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.transformer import CausalityAwareTransformer, TransformerCache


def stabilize(values: np.ndarray, epsilon: float) -> np.ndarray:
    """Add a sign-preserving epsilon so divisions by activations are safe."""
    signs = np.where(values >= 0, 1.0, -1.0)
    return values + signs * epsilon


@dataclass
class HeadRelevance:
    """Relevance scores reaching one attention head."""

    attention: np.ndarray   # (B, N, N) — relevance of the attention matrix
    values: np.ndarray      # (B, N, N, T) — relevance of the convolution output
    kernel: np.ndarray      # (N, N, T) — relevance of the convolution kernel


@dataclass
class RelevanceResult:
    """Relevance of the interpretable tensors for one target series."""

    target: int
    heads: List[HeadRelevance]
    output_relevance: np.ndarray  # the one-hot initialisation (B, N, T)


@dataclass
class PreparedPropagation:
    """Target-independent precomputation shared by every propagated target.

    Every denominator of the RRP rules (Eq. 15–18) depends only on the
    forward activations, not on the target series — stabilising them once
    per cache (instead of once per target per head) removes most of the
    per-target overhead when the detector sweeps all ``N`` targets.
    """

    cache: TransformerCache
    d_output: np.ndarray            # stabilised output-layer denominator
    d_ffn_output: np.ndarray        # stabilised second-linear denominator
    d_hidden: np.ndarray            # stabilised first-linear denominator
    d_combined: np.ndarray          # stabilised head-combination denominator
    d_heads: List[np.ndarray]       # stabilised per-head application denominators
    d_values_pre: np.ndarray        # stabilised pre-shift convolution values
    weighted_heads: List[np.ndarray]  # head_output · W_O[h] numerators
    kernel: np.ndarray
    scaled_windows: np.ndarray


class RegressionRelevancePropagation:
    """Backward relevance decomposition of a trained causality-aware transformer.

    Parameters
    ----------
    model:
        The trained transformer.
    use_bias:
        Keep the bias term in the denominators (Eq. 15).  ``False``
        reproduces the "w/o bias" ablation (z-rule denominators, Eq. 14).
    epsilon:
        Stabiliser for divisions by activations.
    """

    def __init__(self, model: CausalityAwareTransformer, use_bias: bool = True,
                 epsilon: float = 1e-9) -> None:
        self.model = model
        self.use_bias = use_bias
        self.epsilon = epsilon

    # ------------------------------------------------------------------ #
    # Elementary propagation rules
    # ------------------------------------------------------------------ #
    def _linear_relevance(self, inputs: np.ndarray, weight: np.ndarray,
                          bias: Optional[np.ndarray], outputs: np.ndarray,
                          relevance_out: np.ndarray) -> np.ndarray:
        """Relevance through ``outputs = inputs @ weight + bias`` (Eq. 15/17)."""
        denominator = outputs if (self.use_bias or bias is None) else outputs - bias
        ratio = relevance_out / stabilize(denominator, self.epsilon)
        return inputs * (ratio @ weight.T)

    def _scale_relevance(self, operand: np.ndarray, scale: float,
                         outputs: np.ndarray, relevance_out: np.ndarray) -> np.ndarray:
        """Relevance through an element-wise scaling ``outputs = scale * operand``."""
        return operand * scale * relevance_out / stabilize(outputs, self.epsilon)

    # ------------------------------------------------------------------ #
    # Full propagation
    # ------------------------------------------------------------------ #
    def one_hot_relevance(self, cache: TransformerCache, target: int) -> np.ndarray:
        """Initial relevance: ones on the target series' output row (Fig. 6a)."""
        batch, n_series, window = cache.output.shape
        if not (0 <= target < n_series):
            raise IndexError(f"target series {target} out of range [0, {n_series})")
        relevance = np.zeros((batch, n_series, window))
        relevance[:, target, :] = 1.0
        return relevance

    def prepare(self, cache: TransformerCache) -> PreparedPropagation:
        """Precompute everything that does not depend on the target series."""
        model = self.model
        window = model.config.window
        scale = 1.0 / np.arange(1, window + 1, dtype=float)

        def denominator(outputs: np.ndarray, bias: Optional[np.ndarray]) -> np.ndarray:
            base = outputs if (self.use_bias or bias is None) else outputs - bias
            return stabilize(base, self.epsilon)

        w_output = model.attention.w_output.data
        return PreparedPropagation(
            cache=cache,
            d_output=denominator(cache.output, model.output_layer.bias.data),
            d_ffn_output=denominator(cache.ffn_output, model.feed_forward.b2.data),
            d_hidden=denominator(cache.ffn_hidden, model.feed_forward.b1.data),
            d_combined=stabilize(cache.attention_combined, self.epsilon),
            d_heads=[stabilize(head.head_output_data, self.epsilon)
                     for head in cache.head_caches],
            d_values_pre=stabilize(cache.values_pre_shift, self.epsilon),
            weighted_heads=[head.head_output_data * w_output[index]
                            for index, head in enumerate(cache.head_caches)],
            kernel=model.convolution.effective_kernel().data,
            scaled_windows=cache.conv_windows * scale[None, None, :, None],
        )

    def propagate(self, cache: TransformerCache, target: int) -> RelevanceResult:
        """Propagate relevance from the output of series ``target`` to A and K."""
        return self.propagate_targets(cache, [target])[0]

    def propagate_targets(self, cache: TransformerCache,
                          targets: Sequence[int],
                          prepared: Optional[PreparedPropagation] = None,
                          include_values: bool = True) -> List[RelevanceResult]:
        """Propagate several target series in one vectorised pass.

        Relevance propagation is linear in the output relevance, so the
        targets stack as a leading axis: the between-layer matmuls run as
        batched per-``(target, batch)`` GEMM slices and the Eq. 18 einsums
        gain a leading target subscript — both produce, slice for slice, the
        same floating-point results as one pass per target (the contraction
        order over the summed indices is unchanged), so ``propagate`` stays
        bit-identical to the historical per-target implementation.

        ``include_values=False`` skips storing the per-head ``(B, N, N, T)``
        values relevance in the results (the detector only consumes the
        attention and kernel relevance; callers chunk ``targets`` to bound
        the intermediates' memory).
        """
        if prepared is None:
            prepared = self.prepare(cache)
        batch, n_series, window = cache.output.shape
        for target in targets:
            if not (0 <= target < n_series):
                raise IndexError(
                    f"target series {target} out of range [0, {n_series})")
        n_targets = len(targets)
        diag = np.arange(n_series)

        relevance_output = np.zeros((n_targets, batch, n_series, window))
        for index, target in enumerate(targets):
            relevance_output[index, :, target, :] = 1.0

        model = self.model
        # Output layer → feed-forward second linear → (pass-through leaky
        # ReLU) → feed-forward first linear (Eq. 15/17).
        relevance_ffn_out = cache.ffn_output * (
            (relevance_output / prepared.d_output)
            @ model.output_layer.weight.data.T)
        relevance_activated = cache.ffn_activated * (
            (relevance_ffn_out / prepared.d_ffn_output)
            @ model.feed_forward.w2.data.T)
        relevance_attention_combined = cache.attention_combined * (
            (relevance_activated / prepared.d_hidden)
            @ model.feed_forward.w1.data.T)

        values = cache.values
        per_head_attention: List[np.ndarray] = []
        per_head_values: List[Optional[np.ndarray]] = []
        per_head_kernel: List[np.ndarray] = []
        for head_index, head_cache in enumerate(cache.head_caches):
            # Head concatenation: combined = Σ_h W_O[h] · head_output_h.
            relevance_head = (prepared.weighted_heads[head_index]
                              * relevance_attention_combined
                              / prepared.d_combined)

            # Attention application (two-operand rule, Eq. 18):
            #   head_output[b, i, t] = Σ_j attention[b, i, j] · values[b, j, i, t]
            attention = head_cache.attention_data
            ratio = relevance_head / prepared.d_heads[head_index]
            relevance_attention = attention * np.einsum(
                "bjit,gbit->gbij", values, ratio)
            relevance_values = np.einsum(
                "bij,bjit,gbit->gbjit", attention, values, ratio)

            # Undo the diagonal right-shift before touching the kernel: the
            # post-shift value at slot t+1 came from the pre-shift value at t.
            relevance_pre_shift = relevance_values.copy()
            relevance_pre_shift[:, :, diag, diag, :-1] = \
                relevance_values[:, :, diag, diag, 1:]
            relevance_pre_shift[:, :, diag, diag, -1] = 0.0

            # Convolution (two-operand rule): values_pre[b, i, j, t] =
            #   Σ_τ kernel[i, j, τ] · windows[b, i, t, τ] / (t + 1)
            ratio_values = relevance_pre_shift / prepared.d_values_pre
            relevance_kernel = prepared.kernel * np.einsum(
                "bitk,gbijt->gijk", prepared.scaled_windows, ratio_values)

            per_head_attention.append(relevance_attention)
            per_head_values.append(relevance_values if include_values else None)
            per_head_kernel.append(relevance_kernel)

        results: List[RelevanceResult] = []
        for index, target in enumerate(targets):
            heads = [
                HeadRelevance(
                    attention=per_head_attention[head_index][index],
                    values=(per_head_values[head_index][index]
                            if include_values else None),
                    kernel=per_head_kernel[head_index][index],
                )
                for head_index in range(len(cache.head_caches))
            ]
            results.append(RelevanceResult(
                target=target, heads=heads,
                output_relevance=relevance_output[index]))
        return results

    # ------------------------------------------------------------------ #
    # Diagnostics used by tests
    # ------------------------------------------------------------------ #
    def conservation_gap(self, cache: TransformerCache, target: int) -> float:
        """Relative gap between output relevance and the relevance reaching A.

        Exact LRP conserves relevance layer by layer (Eq. 10); RRP's bias
        relevance deliberately breaks strict conservation (Sec. 4.2.1), so
        this returns the relative difference — useful to verify that the
        propagation neither explodes nor vanishes.
        """
        result = self.propagate(cache, target)
        total_out = float(result.output_relevance.sum())
        total_attention = float(sum(head.attention.sum() for head in result.heads))
        if total_out == 0:
            return 0.0
        return abs(total_out - total_attention) / abs(total_out)


@dataclass
class PreparedStackedPropagation:
    """Target-independent precomputation for a *stack* of models.

    The model-axis analogue of :class:`PreparedPropagation`: every array
    gains a leading ``M`` (model) axis, and the per-head lists collapse into
    one stacked array with the head axis second.  Stabilisation is
    elementwise, so each row is bit-identical to preparing that model alone.
    """

    d_output: np.ndarray            # (M, B, N, T)
    d_ffn_output: np.ndarray        # (M, B, N, T)
    d_hidden: np.ndarray            # (M, B, N, d_ffn)
    d_combined: np.ndarray          # (M, B, N, T)
    d_heads: np.ndarray             # (M, h, B, N, T)
    d_values_pre: np.ndarray        # (M, B, N, N, T)
    weighted_heads: np.ndarray      # (M, h, B, N, T)
    kernel: np.ndarray              # (M, N, N, T)
    scaled_windows: np.ndarray      # (M, B, N, T, K)
    w_output: np.ndarray            # (M, T, T)   output-layer weights
    w2: np.ndarray                  # (M, d_ffn, T)
    w1: np.ndarray                  # (M, T, d_ffn)


class StackedRelevancePropagation:
    """RRP with a leading model axis over a stacked interpretation forward.

    Propagates relevance for ``M`` same-architecture models (a batched
    sweep group) and ``G`` target series in one vectorised pass.  Every
    between-layer matmul and Eq. 18 einsum simply gains a leading model
    subscript; batched matmuls dispatch the same per-slice GEMMs and einsum
    keeps its per-element contraction order, so row ``m`` of every result is
    **bit-identical** to :class:`RegressionRelevancePropagation` on model
    ``m`` alone (the stacked-interpretation tests assert exactly this,
    across all Table 3 ablations).
    """

    def __init__(self, models: Sequence[CausalityAwareTransformer],
                 use_bias: bool = True, epsilon: float = 1e-9) -> None:
        if not models:
            raise ValueError("need at least one model")
        self.models = list(models)
        self.use_bias = use_bias
        self.epsilon = epsilon

    def prepare(self, forward) -> PreparedStackedPropagation:
        """Precompute everything that does not depend on the target series.

        ``forward`` is a
        :class:`~repro.nn.inference.StackedInterpretationForward`.
        """
        models = self.models
        window = models[0].config.window
        scale = 1.0 / np.arange(1, window + 1, dtype=float)

        def denominator(outputs: np.ndarray, biases: np.ndarray,
                        expand) -> np.ndarray:
            base = outputs if self.use_bias else outputs - biases[expand]
            return stabilize(base, self.epsilon)

        output_bias = np.stack([model.output_layer.bias.data
                                for model in models])
        b2 = np.stack([model.feed_forward.b2.data for model in models])
        b1 = np.stack([model.feed_forward.b1.data for model in models])
        w_out = np.stack([model.attention.w_output.data for model in models])
        channel = (slice(None), None, None, slice(None))
        return PreparedStackedPropagation(
            d_output=denominator(forward.output, output_bias, channel),
            d_ffn_output=denominator(forward.ffn_output, b2, channel),
            d_hidden=denominator(forward.hidden, b1, channel),
            d_combined=stabilize(forward.combined, self.epsilon),
            d_heads=stabilize(forward.head_outputs, self.epsilon),
            d_values_pre=stabilize(forward.values_pre, self.epsilon),
            weighted_heads=forward.head_outputs
            * w_out[:, :, None, None, None],
            kernel=np.stack([model.convolution.effective_kernel().data
                             for model in models]),
            scaled_windows=forward.conv_windows
            * scale[None, None, None, :, None],
            w_output=np.stack([model.output_layer.weight.data
                               for model in models]),
            w2=np.stack([model.feed_forward.w2.data for model in models]),
            w1=np.stack([model.feed_forward.w1.data for model in models]),
        )

    def propagate_targets(self, forward, targets: Sequence[int],
                          prepared: Optional[PreparedStackedPropagation] = None,
                          include_values: bool = False
                          ) -> List[List[RelevanceResult]]:
        """Propagate several targets for every model in one stacked pass.

        Returns ``results[m][g]`` — one :class:`RelevanceResult` per
        (model, target), bit-identical to the per-model propagation.
        """
        if prepared is None:
            prepared = self.prepare(forward)
        m, batch, n_series, window = forward.output.shape
        for target in targets:
            if not (0 <= target < n_series):
                raise IndexError(
                    f"target series {target} out of range [0, {n_series})")
        n_targets = len(targets)
        diag = np.arange(n_series)
        n_heads = forward.attention_probs.shape[1]

        relevance_output = np.zeros((m, n_targets, batch, n_series, window))
        for index, target in enumerate(targets):
            relevance_output[:, index, :, target, :] = 1.0

        # Output layer → feed-forward second linear → (pass-through leaky
        # ReLU) → feed-forward first linear (Eq. 15/17), model axis leading.
        relevance_ffn_out = forward.ffn_output[:, None] * (
            (relevance_output / prepared.d_output[:, None])
            @ prepared.w_output.transpose(0, 2, 1)[:, None, None])
        relevance_activated = forward.activated[:, None] * (
            (relevance_ffn_out / prepared.d_ffn_output[:, None])
            @ prepared.w2.transpose(0, 2, 1)[:, None, None])
        relevance_attention_combined = forward.combined[:, None] * (
            (relevance_activated / prepared.d_hidden[:, None])
            @ prepared.w1.transpose(0, 2, 1)[:, None, None])

        values = forward.values
        per_head_attention: List[np.ndarray] = []
        per_head_values: List[Optional[np.ndarray]] = []
        per_head_kernel: List[np.ndarray] = []
        for head_index in range(n_heads):
            relevance_head = (prepared.weighted_heads[:, head_index, None]
                              * relevance_attention_combined
                              / prepared.d_combined[:, None])

            attention = forward.attention_probs[:, head_index]
            ratio = relevance_head / prepared.d_heads[:, head_index, None]
            relevance_attention = attention[:, None] * np.einsum(
                "mbjit,mgbit->mgbij", values, ratio)
            relevance_values = np.einsum(
                "mbij,mbjit,mgbit->mgbjit", attention, values, ratio)

            relevance_pre_shift = relevance_values.copy()
            relevance_pre_shift[:, :, :, diag, diag, :-1] = \
                relevance_values[:, :, :, diag, diag, 1:]
            relevance_pre_shift[:, :, :, diag, diag, -1] = 0.0

            ratio_values = relevance_pre_shift / prepared.d_values_pre[:, None]
            relevance_kernel = prepared.kernel[:, None] * np.einsum(
                "mbitk,mgbijt->mgijk", prepared.scaled_windows, ratio_values)

            per_head_attention.append(relevance_attention)
            per_head_values.append(relevance_values if include_values else None)
            per_head_kernel.append(relevance_kernel)

        results: List[List[RelevanceResult]] = []
        for row in range(m):
            model_results: List[RelevanceResult] = []
            for index, target in enumerate(targets):
                heads = [
                    HeadRelevance(
                        attention=per_head_attention[head_index][row, index],
                        values=(per_head_values[head_index][row, index]
                                if include_values else None),
                        kernel=per_head_kernel[head_index][row, index],
                    )
                    for head_index in range(n_heads)
                ]
                model_results.append(RelevanceResult(
                    target=target, heads=heads,
                    output_relevance=relevance_output[row, index]))
            results.append(model_results)
        return results
