"""Optimisers: SGD (with momentum) and Adam, plus gradient clipping.

The paper optimises the causality-aware transformer with Adam and an early
stop strategy; the training loop in :mod:`repro.core.training` uses
:class:`Adam` from this module.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding a list of parameters to update."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                    self._velocity[id(parameter)] = velocity
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data -= self.lr * grad


#: Adam defaults, shared with the stacked trainer's fused replica
#: (:mod:`repro.core.batched`) so both updates stay bit-identical.
ADAM_BETAS = (0.9, 0.999)
ADAM_EPS = 1e-8
ADAM_CLIP_FUZZ = 1e-12


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = ADAM_BETAS, eps: float = ADAM_EPS,
                 weight_decay: float = 0.0,
                 clip_norm: Optional[float] = None) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        #: when set, gradients are globally L2-clipped to this norm inside
        #: ``step`` — one dot product on the fused gradient vector instead of
        #: a per-parameter pass through :func:`clip_grad_norm_`.
        self.clip_norm = clip_norm
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        # Fused update state: every parameter's gradient and both moments
        # live in one flat buffer each, so a step is a handful of vectorized
        # ops over the whole parameter vector instead of ~10 numpy calls per
        # parameter.  Rebuilt (with moments preserved) whenever the set of
        # gradient-carrying parameters changes.
        self._flat_key: Optional[tuple] = None
        self._flat_views: List[tuple] = []
        self._flat_grad: Optional[np.ndarray] = None
        self._flat_m: Optional[np.ndarray] = None
        self._flat_v: Optional[np.ndarray] = None
        # When every parameter shares one dtype, their .data arrays are
        # re-pointed at views of one flat vector so the whole update is a
        # single in-place subtraction (no per-parameter scatter).  External
        # reassignment of a .data array is detected by identity and the
        # fusion is rebuilt from the new arrays.
        self._flat_data: Optional[np.ndarray] = None
        self._data_ids: List[int] = []

    def _flush_moments(self) -> None:
        """Write the flat moment buffers back to the per-parameter store."""
        for parameter, view_slice, _shape in self._flat_views:
            key = id(parameter)
            self._m[key] = self._flat_m[view_slice].copy()
            self._v[key] = self._flat_v[view_slice].copy()

    def _rebuild_flat(self, active: List[Parameter]) -> None:
        if self._flat_views:
            self._flush_moments()
        dtype = np.result_type(*(p.data.dtype for p in active))
        total = sum(p.data.size for p in active)
        self._flat_grad = np.empty(total, dtype=dtype)
        self._flat_m = np.zeros(total, dtype=dtype)
        self._flat_v = np.zeros(total, dtype=dtype)
        self._flat_views = []
        offset = 0
        for parameter in active:
            size = parameter.data.size
            view_slice = slice(offset, offset + size)
            key = id(parameter)
            if key in self._m:
                self._flat_m[view_slice] = self._m[key].ravel()
                self._flat_v[view_slice] = self._v[key].ravel()
            self._flat_views.append((parameter, view_slice, parameter.data.shape))
            offset += size
        self._flat_key = tuple(id(p) for p in active)
        self._fuse_parameter_data(dtype)

    def _fuse_parameter_data(self, dtype) -> None:
        if any(p.data.dtype != dtype for p, _s, _shape in self._flat_views):
            self._flat_data = None
            self._data_ids = []
            return
        self._flat_data = np.concatenate(
            [p.data.ravel() for p, _s, _shape in self._flat_views])
        self._data_ids = []
        for parameter, view_slice, shape in self._flat_views:
            parameter.data = self._flat_data[view_slice].reshape(shape)
            self._data_ids.append(id(parameter.data))

    def _ensure_views_current(self, active: List[Parameter]) -> None:
        """(Re)build the fused flat state for ``active`` if it drifted."""
        if self._flat_key != tuple(id(p) for p in active):
            self._rebuild_flat(active)
        elif self._flat_data is not None:
            for (parameter, _s, _shape), data_id in zip(self._flat_views,
                                                        self._data_ids):
                if id(parameter.data) != data_id:
                    # A .data array was replaced (e.g. load_state_dict):
                    # re-fuse from the new arrays.
                    self._fuse_parameter_data(self._flat_data.dtype)
                    break

    def ensure_flat(self, parameters: Optional[List[Parameter]] = None
                    ) -> List[tuple]:
        """Build (or refresh) the fused flat state and return its views.

        Returns the ``(parameter, slice, shape)`` triples of the flat
        layout.  Callers that compute gradients *without* the autograd
        engine (:mod:`repro.nn.training_engine`) write them directly into
        ``flat_gradient`` views obtained from these triples, then call
        :meth:`step_flat` — skipping the per-parameter ``.grad`` arrays and
        the gather entirely.  The layout (hence the update) is identical to
        what :meth:`step` builds from the same parameter list.
        """
        active = list(parameters) if parameters is not None else self.parameters
        self._ensure_views_current(active)
        return self._flat_views

    @property
    def flat_gradient(self) -> Optional[np.ndarray]:
        """The fused flat gradient buffer (``None`` before the first build)."""
        return self._flat_grad

    def step_flat(self) -> None:
        """One Adam update reading the already-filled flat gradient buffer.

        The caller must have obtained the layout via :meth:`ensure_flat`
        (same step — a parameter-set change in between would misroute the
        update) and written every parameter's gradient into its
        ``flat_gradient`` slice.  Performs the exact op sequence of
        :meth:`step` after its gather, so trajectories are bit-identical.
        """
        if self._flat_grad is None:
            raise RuntimeError("ensure_flat() must run before step_flat()")
        self._step_count += 1
        t = self._step_count
        self._apply_flat_update(1.0 - self.beta1 ** t, 1.0 - self.beta2 ** t)

    def state_dict(self) -> Dict[str, object]:
        """Checkpointable optimiser state: step count + flat moment buffers.

        ``ensure_flat`` runs first so the snapshot always reflects the fused
        layout (the layout a resumed run rebuilds from the same parameter
        list — making ``load_state_dict`` a pure in-place restore).
        """
        self.ensure_flat()
        return {
            "step_count": self._step_count,
            "m": self._flat_m.copy(),
            "v": self._flat_v.copy(),
        }

    def load_state_dict(self, payload: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output in place (views stay live)."""
        self.ensure_flat()
        m = np.asarray(payload["m"])
        v = np.asarray(payload["v"])
        if m.shape != self._flat_m.shape or v.shape != self._flat_v.shape:
            raise ValueError(
                "optimizer state shape mismatch: checkpoint does not match "
                "this parameter set")
        self._step_count = int(payload["step_count"])
        self._flat_m[...] = m
        self._flat_v[...] = v

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias_correction1 = 1.0 - self.beta1 ** t
        bias_correction2 = 1.0 - self.beta2 ** t
        active = [p for p in self.parameters if p.grad is not None]
        if not active:
            return
        self._ensure_views_current(active)
        grad = self._flat_grad
        np.concatenate([p.grad.ravel() for p in active], out=grad)
        self._apply_flat_update(bias_correction1, bias_correction2)

    def _apply_flat_update(self, bias_correction1: float,
                           bias_correction2: float) -> None:
        grad = self._flat_grad
        if self.clip_norm is not None:
            total = float(np.sqrt(np.dot(grad, grad)))
            if total > self.clip_norm:
                grad *= self.clip_norm / (total + ADAM_CLIP_FUZZ)
        if self.weight_decay:
            for parameter, view_slice, _shape in self._flat_views:
                grad[view_slice] += self.weight_decay * parameter.data.ravel()
        m, v = self._flat_m, self._flat_v
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        np.multiply(grad, grad, out=grad)  # grad buffer now holds g²
        v += (1.0 - self.beta2) * grad
        denominator = np.sqrt(v / bias_correction2)
        denominator += self.eps
        update = (self.lr / bias_correction1) * m
        update /= denominator
        if self._flat_data is not None:
            self._flat_data -= update
        else:
            for parameter, view_slice, shape in self._flat_views:
                parameter.data -= update[view_slice].reshape(shape)


class StackedAdam:
    """Row-masked Adam over a stacked ``(C, P)`` parameter matrix.

    The stacked trainer (:mod:`repro.core.batched`) trains ``K <= C`` models
    whose flat parameter vectors occupy the first ``K`` rows of one matrix
    (``C`` is the lane capacity).  Under continuous batching the rows stop
    moving in lockstep: a lane whose dataset has fewer windows sits out the
    trailing steps of a round, a freshly refilled lane starts its step count
    at zero, and a finished lane is compacted out of the prefix entirely.
    Each row therefore carries its *own* Adam step count — and its own bias
    corrections — and :meth:`step_rows` updates only the rows that really
    trained this step.

    Bit-exactness contract: every participating row sees the exact scalar
    arithmetic of the solo fused update (:meth:`Adam._apply_flat_update`) —
    the per-row bias corrections are computed with Python-float ``**`` and
    applied through columns cast to the parameter dtype, matching the
    implicit scalar cast of the solo path, and the moment/denominator op
    sequence is identical — so a row's trajectory equals training that model
    alone regardless of which other rows ride along.
    """

    def __init__(self, params: np.ndarray, lr: float,
                 clip_norm: Optional[float] = None,
                 betas: tuple = ADAM_BETAS, eps: float = ADAM_EPS) -> None:
        if params.ndim != 2:
            raise ValueError("StackedAdam expects a (C, P) parameter matrix")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = params
        self.lr = lr
        self.clip_norm = clip_norm
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.m = np.zeros_like(params)
        self.v = np.zeros_like(params)
        #: per-row step counts (Python ints: the bias corrections must come
        #: from the same ``float ** int`` the solo optimiser computes).
        self.t: List[int] = [0] * params.shape[0]

    def _clip_rows(self, grad: np.ndarray) -> None:
        clip = self.clip_norm
        if clip is None:
            return
        for row in range(grad.shape[0]):
            g = grad[row]
            total = float(np.sqrt(np.dot(g, g)))
            if total > clip:
                g *= clip / (total + ADAM_CLIP_FUZZ)

    def _bias_columns(self, rows: List[int]):
        dtype = self.params.dtype
        scale = np.array([[self.lr / (1.0 - self.beta1 ** self.t[row])]
                          for row in rows], dtype=dtype)
        bias2 = np.array([[1.0 - self.beta2 ** self.t[row]]
                          for row in rows], dtype=dtype)
        return scale, bias2

    def step_rows(self, grads: np.ndarray, rows: Iterable[int],
                  active: int) -> None:
        """One Adam update for ``rows``, reading their ``grads`` rows.

        ``active`` is the current lane count ``K``; when every active row
        participates the update runs in place on the ``[:K]`` prefix (the
        lockstep fast path — no gathers), otherwise the participating rows
        are gathered, updated with the identical op sequence, and scattered
        back.  Non-participating rows are untouched: no moment decay, no
        step-count tick, no parameter change.
        """
        rows = list(rows)
        if not rows:
            return
        for row in rows:
            self.t[row] += 1
        beta1, beta2 = self.beta1, self.beta2
        scale, bias2 = self._bias_columns(rows)
        if len(rows) == active:
            grad = grads[:active]
            self._clip_rows(grad)
            m = self.m[:active]
            v = self.v[:active]
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            np.multiply(grad, grad, out=grad)  # grad buffer now holds g²
            v += (1.0 - beta2) * grad
            denominator = np.sqrt(v / bias2)
            denominator += self.eps
            update = scale * m
            update /= denominator
            self.params[:active] -= update
            return
        index = np.asarray(rows, dtype=np.intp)
        grad = grads[index]
        self._clip_rows(grad)
        m = self.m[index]
        v = self.v[index]
        m *= beta1
        m += (1.0 - beta1) * grad
        v *= beta2
        np.multiply(grad, grad, out=grad)
        v += (1.0 - beta2) * grad
        self.m[index] = m
        self.v[index] = v
        denominator = np.sqrt(v / bias2)
        denominator += self.eps
        update = scale * m
        update /= denominator
        self.params[index] -= update

    def permute_rows(self, order: Sequence[int], active: int) -> None:
        """Reorder the first ``active`` rows of the moments and step counts.

        The stacked trainer keeps its lanes sorted by descending window
        count so that every full step's participants form a contiguous
        prefix; admissions and compactions can disturb that order, and the
        matching permutation of the parameter matrix must be mirrored here.
        Fancy indexing materialises the gathered rows before assignment, so
        the in-place overwrite is safe for any permutation.
        """
        index = np.asarray(list(order), dtype=np.intp)
        if index.shape[0] != active:
            raise ValueError("permutation must cover the active prefix")
        self.m[:active] = self.m[index]
        self.v[:active] = self.v[index]
        self.t[:active] = [self.t[row] for row in order]

    def compact_row(self, row: int, active: int) -> None:
        """Drop ``row`` from the first ``active`` rows, shifting the tail up.

        Row-by-row copies (no overlapping slice assignment); the caller
        performs the matching shift on the parameter matrix itself.  The
        vacated row at ``active - 1`` is left cleared for a future refill.
        """
        for r in range(row, active - 1):
            self.m[r] = self.m[r + 1]
            self.v[r] = self.v[r + 1]
            self.t[r] = self.t[r + 1]
        self.reset_row(active - 1)

    def reset_row(self, row: int) -> None:
        """Zero one lane's moments and step count for a fresh admission."""
        self.m[row] = 0.0
        self.v[row] = 0.0
        self.t[row] = 0


def clip_grad_norm_(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm, which the trainer logs for diagnostics.
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = float(np.sqrt(sum(
        float(np.dot(p.grad.ravel(), p.grad.ravel())) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / (total + 1e-12)
        for parameter in parameters:
            parameter.grad *= scale
    return total
