"""``telemetry-guard``: hot-module emissions stay behind ``.enabled``.

PR 6's null-object contract: with telemetry off, a hot path pays one
attribute check (``telemetry.enabled``) and nothing else.  An unguarded
``telemetry.event(...)`` still builds its kwargs dict every step, an
unguarded ``telemetry.counter(f"...")`` formats a metric name and takes the
registry lock — death by a thousand no-ops.  This rule flags, in the
configured hot modules, every telemetry emission (``event`` / ``trace`` /
``counter`` / ``gauge`` / ``histogram`` / ``emit`` / ``record``) that is not
*dominated* by an enabled-style guard:

* an ancestor ``if``/ternary whose test reads ``.enabled`` or
  ``.engine_profiling``, or
* an earlier ``if not <x>.enabled: return/raise/continue`` in the same
  block (the early-exit idiom).

Metric-name f-strings get a dedicated message — even a cheap emission must
not format names per call (resolve the metric once and cache it, as
:func:`repro.nn.inference.profiling_hook` does).

Receivers are recognised structurally — a value returned by
``get_telemetry()`` / ``verbose_telemetry()`` (directly or via a local
binding) — and by the conventional names ``telemetry`` / ``tel`` (which
covers runtimes received as function parameters).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.base import Checker, Finding, LintConfig, ModuleSource
from repro.analysis.registry import register

_EMISSION_METHODS = ("event", "trace", "counter", "gauge", "histogram",
                     "emit", "record")
_NAMED_METRICS = ("event", "trace", "counter", "gauge", "histogram")
_SOURCE_CALLS = ("get_telemetry", "verbose_telemetry")
_CONVENTIONAL = ("telemetry", "tel")
_GUARD_ATTRS = ("enabled", "engine_profiling")


def _mentions_guard_attribute(node: ast.AST) -> bool:
    return any(isinstance(child, ast.Attribute) and child.attr in _GUARD_ATTRS
               for child in ast.walk(node))


def _is_source_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else \
        func.id if isinstance(func, ast.Name) else ""
    return name in _SOURCE_CALLS


def _exits_block(body: List[ast.stmt]) -> bool:
    return bool(body) and isinstance(body[-1],
                                     (ast.Return, ast.Raise, ast.Continue,
                                      ast.Break))


class _FunctionAuditor:
    """Audits one function body for unguarded emissions."""

    def __init__(self, checker: "TelemetryGuardChecker",
                 module: ModuleSource) -> None:
        self.checker = checker
        self.module = module
        self.findings: List[Finding] = []
        self.receivers: Set[str] = set(_CONVENTIONAL)

    def audit(self, function: ast.AST) -> None:
        # Pass 1: local names bound (anywhere in the function) to a
        # telemetry runtime; conservative and flow-insensitive.
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and _is_source_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.receivers.add(target.id)
        # Pass 2: walk statements tracking guard domination.
        self._walk_block(function.body, guarded=False)

    # ------------------------------------------------------------------ #
    def _walk_block(self, body: List[ast.stmt], guarded: bool) -> None:
        for statement in body:
            # ``if not tel.enabled: return`` dominates the rest of the block.
            if isinstance(statement, ast.If) \
                    and isinstance(statement.test, ast.UnaryOp) \
                    and isinstance(statement.test.op, ast.Not) \
                    and _mentions_guard_attribute(statement.test) \
                    and _exits_block(statement.body):
                self._walk_statement(statement, guarded=True)
                guarded = True
                continue
            self._walk_statement(statement, guarded)

    def _walk_statement(self, statement: ast.stmt, guarded: bool) -> None:
        if isinstance(statement, ast.If):
            test_guards = _mentions_guard_attribute(statement.test)
            self._check_expression(statement.test, guarded)
            self._walk_block(statement.body, guarded or test_guards)
            self._walk_block(statement.orelse, guarded)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._check_expression(statement.iter, guarded)
            self._walk_block(statement.body, guarded)
            self._walk_block(statement.orelse, guarded)
            return
        if isinstance(statement, ast.While):
            self._check_expression(statement.test, guarded)
            self._walk_block(statement.body, guarded)
            self._walk_block(statement.orelse, guarded)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self._check_expression(item.context_expr, guarded)
            self._walk_block(statement.body, guarded)
            return
        if isinstance(statement, ast.Try):
            self._walk_block(statement.body, guarded)
            for handler in statement.handlers:
                self._walk_block(handler.body, guarded)
            self._walk_block(statement.orelse, guarded)
            self._walk_block(statement.finalbody, guarded)
            return
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            # Nested scopes are audited separately by the checker.
            return
        self._check_expression(statement, guarded)

    # ------------------------------------------------------------------ #
    def _receiver_is_telemetry(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.receivers
        return _is_source_call(node)

    def _check_expression(self, node: ast.AST, guarded: bool) -> None:
        for current in ast.walk(node):
            if not isinstance(current, ast.Call) \
                    or not isinstance(current.func, ast.Attribute):
                continue
            method = current.func.attr
            if method not in _EMISSION_METHODS:
                continue
            if not self._receiver_is_telemetry(current.func.value):
                continue
            # A ternary guard on the same expression also dominates.
            effective = guarded or any(
                isinstance(ancestor, ast.IfExp)
                and _mentions_guard_attribute(ancestor.test)
                for ancestor in self.module.ancestors(current))
            fstring = method in _NAMED_METRICS and current.args \
                and isinstance(current.args[0], ast.JoinedStr)
            if effective:
                continue
            if fstring:
                message = (f"telemetry .{method}() formats an f-string "
                           "metric name on a hot module without an "
                           "enabled-guard; resolve the metric once and "
                           "cache it")
            else:
                message = (f"telemetry .{method}() on a hot module is not "
                           "dominated by an 'if telemetry.enabled' guard; "
                           "the telemetry-off contract is one attribute "
                           "check per step")
            self.findings.append(Finding(
                self.checker.name, self.module.path,
                current.lineno, current.col_offset, message))


@register
class TelemetryGuardChecker(Checker):
    name = "telemetry-guard"
    description = ("telemetry emission in a hot module not dominated by an "
                   "if telemetry.enabled guard")

    def check(self, module: ModuleSource,
              config: LintConfig) -> Iterator[Finding]:
        if module.path not in config.checkers.telemetry_modules:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                auditor = _FunctionAuditor(self, module)
                auditor.audit(node)
                yield from auditor.findings
