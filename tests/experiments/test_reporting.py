"""Result tables and aggregation."""

import json

import numpy as np
import pytest

from repro.experiments import CellStatistic, ResultTable, format_mean_std


class TestFormatting:
    def test_mean_std_format(self):
        assert format_mean_std([0.5, 0.7]) == "0.60±0.10"

    def test_precision(self):
        assert format_mean_std([1 / 3], precision=3) == "0.333±0.000"

    def test_empty_is_na(self):
        assert format_mean_std([]) == "n/a"

    def test_skips_none_and_nan(self):
        assert format_mean_std([0.5, None, float("nan")]) == "0.50±0.00"


class TestCellStatistic:
    def test_mean_std(self):
        cell = CellStatistic()
        cell.add(0.2)
        cell.add(0.4)
        assert cell.mean == pytest.approx(0.3)
        assert cell.std == pytest.approx(0.1)

    def test_ignores_invalid(self):
        cell = CellStatistic()
        cell.add(None)
        cell.add(float("inf"))
        assert cell.values == []
        assert np.isnan(cell.mean)


class TestResultTable:
    def make_table(self):
        table = ResultTable("Table X", metric="f1")
        table.add("dataset_a", "method1", 0.5)
        table.add("dataset_a", "method1", 0.7)
        table.add("dataset_a", "method2", 0.9)
        table.add("dataset_b", "method1", 0.4)
        return table

    def test_rows_and_columns_ordered(self):
        table = self.make_table()
        assert table.rows == ["dataset_a", "dataset_b"]
        assert table.columns == ["method1", "method2"]

    def test_cell_aggregation(self):
        table = self.make_table()
        assert table.mean("dataset_a", "method1") == pytest.approx(0.6)
        assert table.cell("dataset_a", "method2").values == [0.9]

    def test_best_column(self):
        table = self.make_table()
        assert table.best_column("dataset_a") == "method2"
        assert table.best_column("dataset_b") == "method1"
        assert table.best_column("missing_row") is None

    def test_render_contains_rows_and_marks_best(self):
        text = self.make_table().render()
        assert "dataset_a" in text and "method2" in text
        assert "*" in text  # best cell highlighted

    def test_missing_cell_rendered_na(self):
        table = self.make_table()
        assert "n/a" in table.render()

    def test_dict_roundtrip(self):
        table = self.make_table()
        restored = ResultTable.from_dict(table.to_dict())
        assert restored.rows == table.rows
        assert restored.mean("dataset_a", "method1") == pytest.approx(0.6)

    def test_json_file_output(self, tmp_path):
        table = self.make_table()
        path = tmp_path / "table.json"
        table.to_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["title"] == "Table X"

    def test_add_many(self):
        table = ResultTable("t")
        table.add_many("r", "c", [0.1, 0.2, 0.3])
        assert table.cell("r", "c").values == [0.1, 0.2, 0.3]
