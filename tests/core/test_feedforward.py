"""Feed-forward and output layers."""

import numpy as np
import pytest

from repro.core.feedforward import FeedForward, OutputLayer
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestFeedForward:
    def test_shape_preserved(self):
        ffn = FeedForward(window=6, d_ffn=10)
        assert ffn(Tensor(np.zeros((2, 3, 6)))).shape == (2, 3, 6)

    def test_matches_manual_composition(self):
        rng = np.random.default_rng(0)
        ffn = FeedForward(window=5, d_ffn=7, rng=rng)
        x = rng.normal(size=(2, 3, 5))
        hidden = x @ ffn.w1.data + ffn.b1.data
        activated = np.where(hidden > 0, hidden, 0.01 * hidden)
        expected = activated @ ffn.w2.data + ffn.b2.data
        np.testing.assert_allclose(ffn(Tensor(x)).data, expected, atol=1e-10)

    def test_introduces_nonlinearity(self):
        """f(x) + f(-x) ≠ 2 f(0) in general (the leaky ReLU is not linear)."""
        rng = np.random.default_rng(1)
        ffn = FeedForward(window=4, d_ffn=6, rng=rng)
        x = rng.normal(size=(1, 2, 4)) * 3
        plus = ffn(Tensor(x)).data
        minus = ffn(Tensor(-x)).data
        zero = ffn(Tensor(np.zeros_like(x))).data
        assert not np.allclose(plus + minus, 2 * zero, atol=1e-6)

    def test_gradients_flow(self):
        ffn = FeedForward(window=4, d_ffn=6)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 3, 4)), requires_grad=True)
        ffn(x).sum().backward()
        assert x.grad is not None
        assert ffn.w1.grad is not None and ffn.w2.grad is not None


class TestOutputLayer:
    def test_shape_preserved(self):
        layer = OutputLayer(window=6)
        assert layer(Tensor(np.zeros((2, 3, 6)))).shape == (2, 3, 6)

    def test_is_affine(self):
        rng = np.random.default_rng(3)
        layer = OutputLayer(window=5, rng=rng)
        a = rng.normal(size=(1, 2, 5))
        b = rng.normal(size=(1, 2, 5))
        lhs = layer(Tensor(a + b)).data + layer(Tensor(np.zeros_like(a))).data
        rhs = layer(Tensor(a)).data + layer(Tensor(b)).data
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    def test_bias_used(self):
        layer = OutputLayer(window=4)
        layer.bias.data = np.arange(4.0)
        out = layer(Tensor(np.zeros((1, 2, 4)))).data
        np.testing.assert_allclose(out[0, 0], np.arange(4.0))
