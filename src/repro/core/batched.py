"""Lockstep training of several same-shape CausalFormer models at once.

A causal-discovery sweep runs many *small* models — one per (dataset, seed)
cell — and at these sizes the per-step numpy/autograd dispatch overhead
costs more than the arithmetic.  :class:`StackedCausalFormerTrainer` trains
``K`` same-architecture models (different datasets and seeds) in lockstep:
every parameter gains a leading model axis, each training step runs the
whole fleet through stacked GEMMs (one set of numpy calls for ``K`` models
instead of ``K`` sets), and a hand-derived backward — transcribed from the
fused autograd ops' closures, evaluated over persistent scratch arenas by
:class:`repro.nn.training_engine.StackedTrainingEngine` — fills a stacked
flat Adam state.  Mini-batches are built by one stacked gather (a single
``np.take`` over the concatenated training sets into a persistent batch
buffer), not one ``np.take`` per model, and the engine that runs the
training steps is the same object (same arena) that runs every validation
pass; its arena is also handed to the group detector interpretation.

Numerical contract: batched matmuls dispatch one GEMM per 2-D slice and
reductions keep their per-model order, so every model's parameter
trajectory is **bit-identical** to training it alone through
:class:`repro.core.training.Trainer` (the correctness tests assert exactly
this).  Early stopping is tracked per model: a model that has stopped keeps
riding the stacked step (its updates are discarded when its best snapshot
is restored, exactly like the sequential trainer restores its best epoch),
and the loop ends when every model has stopped or ``max_epochs`` is
reached.

The per-model parameter tensors are re-pointed at views of the stacked
``(K, P)`` parameter matrix, so the models — and the stacked inference
engine that runs every validation pass in one set of stacked GEMMs
(:class:`repro.nn.inference.StackedInferenceEngine`) — stay live during
training with zero copying; best-state restoration copies *into* those
views so the stack stays authoritative after ``fit`` returns.  The
single-kernel ablation stacks too: its shared ``(1, 1, T)`` kernel is
broadcast through the same constant-ones multiply as the autograd
``effective_kernel`` node, with the matching unbroadcast-sum backward.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import CausalFormerConfig
from repro.core.training import (GATHER_ELEMENT_BUDGET, TrainingHistory,
                                 losses_diverged, split_windows)
from repro.core.transformer import CausalityAwareTransformer
from repro.data.windows import sliding_windows
from repro.nn.inference import profiling_hook
from repro.nn.optim import ADAM_BETAS, ADAM_CLIP_FUZZ, ADAM_EPS
from repro.nn.parallel import get_engine_threads
from repro.nn.training_engine import StackedTrainingEngine
from repro.telemetry import get_telemetry




class StackedCausalFormerTrainer:
    """Adam + early stopping over ``K`` models, one stacked step at a time.

    Parameters
    ----------
    models:
        Same-architecture :class:`CausalityAwareTransformer` instances (their
        configs may differ only in ``seed``).
    """

    def __init__(self, models: Sequence[CausalityAwareTransformer]) -> None:
        if not models:
            raise ValueError("need at least one model to train")
        self.models = list(models)
        reference = self.models[0].config
        for model in self.models[1:]:
            if not self._compatible(reference, model.config):
                raise ValueError(
                    "stacked training requires identical configs up to the seed")
        self.config = reference
        self.histories = [TrainingHistory() for _ in self.models]
        self._build_parameter_stack()
        # One fused engine serves the whole sweep: training steps (its
        # hand-derived stacked backward writes into self._grads), every
        # validation pass (it is a StackedInferenceEngine) and — via its
        # arena, handed to compute_scores_group by the service layer — the
        # group's detector interpretation.
        self.engine = StackedTrainingEngine(self.models, self._stacked,
                                            self._grad_views)

    @staticmethod
    def _compatible(a: CausalFormerConfig, b: CausalFormerConfig) -> bool:
        payload_a = {k: v for k, v in a.to_dict().items() if k != "seed"}
        payload_b = {k: v for k, v in b.to_dict().items() if k != "seed"}
        return payload_a == payload_b

    # ------------------------------------------------------------------ #
    # Stacked parameter storage
    # ------------------------------------------------------------------ #
    def _build_parameter_stack(self) -> None:
        """Stack every model's parameters into one ``(K, P)`` matrix.

        Each model's ``Parameter.data`` is re-pointed at a contiguous view
        of its row, mirroring the fused flat Adam's parameter fusion — the
        stacked update is then a single in-place subtraction and the models
        (and their inference engines) observe it with no copies.
        """
        self._parameters = [list(model.parameters()) for model in self.models]
        reference = self._parameters[0]
        self.dtype = reference[0].data.dtype
        sizes = [parameter.data.size for parameter in reference]
        self._slices = []
        offset = 0
        for size in sizes:
            self._slices.append(slice(offset, offset + size))
            offset += size
        self.n_params = offset
        k = len(self.models)
        self.params = np.empty((k, offset), dtype=self.dtype)
        for row, parameters in enumerate(self._parameters):
            for view, parameter in zip(self._slices, parameters):
                self.params[row, view] = parameter.data.ravel()
        # Stacked per-parameter views (K, *shape), and per-model re-pointing.
        self._stacked = {}
        self._grad_views = {}
        names = [name for name, _p in self.models[0].named_parameters()]
        for name, view, parameter in zip(names, self._slices, reference):
            stacked = self.params[:, view].reshape((k,) + parameter.data.shape)
            assert np.shares_memory(stacked, self.params)
            self._stacked[name] = stacked
        for row, parameters in enumerate(self._parameters):
            for view, parameter in zip(self._slices, parameters):
                data = self.params[row, view].reshape(parameter.data.shape)
                assert np.shares_memory(data, self.params)
                parameter.data = data
        # Adam state (stacked flat buffers, one row per model).
        self._grads = np.empty((k, offset), dtype=self.dtype)
        for name, view, parameter in zip(names, self._slices, reference):
            grad_view = self._grads[:, view].reshape((k,) + parameter.data.shape)
            assert np.shares_memory(grad_view, self._grads)
            self._grad_views[name] = grad_view
        self._adam_m = np.zeros((k, offset), dtype=self.dtype)
        self._adam_v = np.zeros((k, offset), dtype=self.dtype)
        self._step_count = 0

    def _grad_view(self, name: str) -> np.ndarray:
        """The ``(K, *shape)`` stacked view into the flat gradient matrix."""
        return self._grad_views[name]

    # ------------------------------------------------------------------ #
    # Training loop (lockstep replica of Trainer.fit)
    # ------------------------------------------------------------------ #
    def fit(self, values_list: Sequence[np.ndarray]) -> List[TrainingHistory]:
        """Train every model on its own ``(N, T_total)`` series, in lockstep."""
        if len(values_list) != len(self.models):
            raise ValueError("one dataset per model required")
        config = self.config
        k = len(self.models)
        rngs = [np.random.default_rng(model.config.seed) for model in self.models]
        train_sets: List[np.ndarray] = []
        validation_sets: List[Optional[np.ndarray]] = []
        for model, values, rng in zip(self.models, values_list, rngs):
            windows = sliding_windows(np.asarray(values), config.window,
                                      config.window_stride)
            windows = np.ascontiguousarray(windows, dtype=self.dtype)
            train, validation = self._split(windows, rng, model.config)
            train_sets.append(train)
            validation_sets.append(validation)
        # The validation shapes must match too: equal *training* shapes do
        # not imply it (round() on the validation fraction can split 105 and
        # 106 windows into 95 + 10 and 95 + 11).  Reject up front, before
        # any training work is spent.
        train_shapes = {train.shape for train in train_sets}
        validation_shapes = {None if validation is None else validation.shape
                             for validation in validation_sets}
        if len(train_shapes) != 1 or len(validation_shapes) != 1:
            raise ValueError("stacked training requires same-shape window sets")

        # Training, validation and (via the shared arena) interpretation all
        # run through self.engine — the sweep stays stacked from the first
        # training step to the last validation score with one buffer pool.
        engine = self.engine
        has_validation = validation_sets[0] is not None \
            and len(validation_sets[0])
        n_train = train_sets[0].shape[0]
        batch_size = config.batch_size
        active = [True] * k
        best_states: List[Optional[List[np.ndarray]]] = [None] * k
        stale_epochs = [0] * k

        # Stacked mini-batch gather: the fleet's training sets concatenate
        # into one (K·W, N, T) block, so each step's K mini-batches are one
        # np.take into a persistent batch buffer (the per-row np.take loop
        # was the last per-model operation in the stacked step).  Row
        # offsets shift each model's shuffled indices into its own block;
        # the gathered rows are exactly train_sets[row][order[row][...]].
        # Full-size steps fuse further: several steps' indices transpose
        # into one (steps, K, B) layout and gather through a single
        # np.take, bounded by GATHER_ELEMENT_BUDGET; each step then trains
        # on a contiguous (K, B) slice of the block — the same rows in the
        # same order as a per-step gather.
        tail_shape = train_sets[0].shape[1:]
        train_flat = np.ascontiguousarray(np.stack(train_sets)) \
            .reshape((k * n_train,) + tail_shape)
        row_offsets = (np.arange(k) * n_train)[:, None]
        arena = engine.arena
        row_elements = max(1, int(np.prod(tail_shape)))
        step_rows = k * batch_size
        n_full = n_train // batch_size
        tail_start = n_full * batch_size
        block_steps = max(1, min(n_full or 1, GATHER_ELEMENT_BUDGET
                                 // max(1, step_rows * row_elements)))
        gather = arena.take("train.gather",
                            (block_steps, k, batch_size) + tail_shape,
                            self.dtype) if n_full else None

        # The stacked engines thread over the model axis when the fleet is
        # at least as wide as the pool, otherwise over the batch axis.
        engine.parallel_model_axis = k >= get_engine_threads()
        telemetry = get_telemetry()
        telemetry.gauge("engine.threads").set(get_engine_threads())
        if telemetry.engine_profiling:
            engine.enable_profiling(profiling_hook(telemetry))
        else:
            engine.disable_profiling()
        with telemetry.trace("train_fit_stacked", models=k,
                             n_windows=n_train,
                             max_epochs=config.max_epochs) as fit_span:
            for _epoch in range(config.max_epochs):
                orders = [rng.permutation(n_train) for rng in rngs]
                order_matrix = np.stack(orders)
                order_matrix += row_offsets
                batch_losses: List[List[float]] = [[] for _ in range(k)]
                steps = order_matrix[:, :tail_start] \
                    .reshape(k, n_full, batch_size)
                for block_start in range(0, n_full, block_steps):
                    block_stop = min(block_start + block_steps, n_full)
                    count = block_stop - block_start
                    block = gather[:count]
                    np.take(train_flat,
                            steps[:, block_start:block_stop]
                            .transpose(1, 0, 2).ravel(), axis=0,
                            out=block.reshape((count * step_rows,)
                                              + tail_shape))
                    for index in range(count):
                        losses = self._train_step(block[index])
                        for row, loss in enumerate(losses):
                            batch_losses[row].append(loss)
                if tail_start < n_train:
                    remainder = n_train - tail_start
                    batch = arena.take("train.batch",
                                       (k, remainder) + tail_shape,
                                       self.dtype)
                    np.take(train_flat, order_matrix[:, tail_start:].ravel(),
                            axis=0,
                            out=batch.reshape((k * remainder,) + tail_shape))
                    losses = self._train_step(batch)
                    for row, loss in enumerate(losses):
                        batch_losses[row].append(loss)

                if has_validation:
                    validation_losses = engine.evaluate(validation_sets,
                                                        batch_size)
                for row in range(k):
                    if not active[row]:
                        continue
                    history = self.histories[row]
                    epoch_loss = float(np.mean(batch_losses[row])) \
                        if batch_losses[row] else float("nan")
                    history.train_loss.append(epoch_loss)
                    validation_loss = validation_losses[row] if has_validation \
                        else epoch_loss
                    history.validation_loss.append(validation_loss)
                    if telemetry.enabled:
                        telemetry.event("train_epoch", model=row, epoch=_epoch,
                                        loss=epoch_loss,
                                        validation_loss=validation_loss)
                    if losses_diverged(epoch_loss, validation_loss):
                        # Same rule as the sequential trainer: a NaN/inf loss
                        # stops this model immediately (it would otherwise ride
                        # the whole patience window without ever improving); its
                        # last finite best state is restored below.  A row that
                        # diverged before ever improving has no best snapshot,
                        # but still rides the remaining stacked steps — freeze
                        # its current weights so the final restore hands back
                        # exactly what the sequential trainer's break leaves
                        # (the post-diverged-epoch parameters).
                        history.diverged = True
                        telemetry.event("train_diverged", model=row,
                                        epoch=_epoch, loss=epoch_loss,
                                        validation_loss=validation_loss)
                        active[row] = False
                        if best_states[row] is None:
                            best_states[row] = [
                                parameter.data.copy()
                                for parameter in self._parameters[row]]
                        continue
                    if validation_loss < history.best_validation_loss - config.min_delta:
                        history.best_validation_loss = validation_loss
                        history.best_epoch = history.n_epochs - 1
                        best_states[row] = [
                            parameter.data.copy()
                            for parameter in self._parameters[row]]
                        stale_epochs[row] = 0
                    else:
                        stale_epochs[row] += 1
                        if stale_epochs[row] >= config.patience:
                            history.stopped_early = True
                            telemetry.event("early_stop", model=row,
                                            epoch=_epoch,
                                            best_epoch=history.best_epoch)
                            active[row] = False
                if not any(active):
                    break
            fit_span.set(
                epochs=max(history.n_epochs for history in self.histories),
                stopped_early=sum(history.stopped_early
                                  for history in self.histories),
                diverged=sum(history.diverged
                             for history in self.histories))

        for row, saved in enumerate(best_states):
            if saved is not None:
                # In-place copy (not a .data re-point): the parameters must
                # keep backing the stacked (K, P) matrix so the shared
                # inference engines and any later stacked pass keep observing
                # the restored best-epoch weights.
                for parameter, data in zip(self._parameters[row], saved):
                    parameter.data[...] = data
        return self.histories

    # The split must match the sequential trainer draw for draw.
    _split = staticmethod(split_windows)

    # ------------------------------------------------------------------ #
    # One stacked step: forward, per-model losses, backward, Adam
    # ------------------------------------------------------------------ #
    def _train_step(self, batch: np.ndarray) -> List[float]:
        losses, grads = self._forward_backward(batch)
        self._adam_step()
        return losses

    def _forward_backward(self, xb: np.ndarray
                          ) -> Tuple[List[float], np.ndarray]:
        """One stacked fused forward + hand-derived backward (no autograd).

        Delegates to :class:`repro.nn.training_engine.StackedTrainingEngine`,
        which transcribes the fused autograd ops' closures with a leading
        model axis over persistent arena buffers and writes every gradient
        into the stacked flat matrix returned here; batched matmuls run the
        same per-slice GEMMs, so each model's gradients are bit-identical
        to a solo step.
        """
        return self.engine.train_step(xb), self._grads

    def _adam_step(self) -> None:
        """Stacked replica of the fused flat Adam update (one row per model)."""
        config = self.config
        self._step_count += 1
        t = self._step_count
        beta1, beta2 = ADAM_BETAS
        eps = ADAM_EPS
        bias_correction1 = 1.0 - beta1 ** t
        bias_correction2 = 1.0 - beta2 ** t
        grad = self._grads
        if config.grad_clip is not None:
            for row in range(grad.shape[0]):
                total = float(np.sqrt(np.dot(grad[row], grad[row])))
                if total > config.grad_clip:
                    grad[row] *= config.grad_clip / (total + ADAM_CLIP_FUZZ)
        m, v = self._adam_m, self._adam_v
        m *= beta1
        m += (1.0 - beta1) * grad
        v *= beta2
        np.multiply(grad, grad, out=grad)
        v += (1.0 - beta2) * grad
        denominator = np.sqrt(v / bias_correction2)
        denominator += eps
        update = (config.learning_rate / bias_correction1) * m
        update /= denominator
        self.params -= update
