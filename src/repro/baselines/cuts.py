"""CUTS-lite — neural causal discovery with learnable edge gates, reduced.

The original CUTS (Cheng et al., 2023) alternates data imputation (for
irregular series) with causal-graph fitting: every potential edge has a
learnable inclusion probability, a prediction network reads only the gated
inputs, and a sparsity penalty drives unused gates to zero.  The data here
are regular, so the imputation stage is a no-op and this reduced
re-implementation keeps the causal-scoring core the paper compares against:
sigmoid edge gates over lagged inputs, trained jointly with per-target
linear predictors under an L1 gate penalty, scored by the gate probabilities.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import ScoreBasedMethod
from repro.data.windows import lagged_design_matrix
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class _GatedPredictor(Module):
    """All targets at once: x_{i,t} = Σ_{j,lag} gate[i,j] · W[i,j,lag] · x_{j,t-lag}."""

    def __init__(self, n_series: int, max_lag: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.n_series = n_series
        self.max_lag = max_lag
        rng = rng or init.default_rng()
        self.gate_logits = Parameter(init.normal((n_series, n_series), 0.0, 0.1, rng))
        self.weights = Parameter(init.normal((n_series, n_series, max_lag), 0.0, 0.1, rng))
        self.bias = Parameter(init.zeros((n_series,)))

    def gates(self) -> Tensor:
        """Edge inclusion probabilities (row = target, column = source)."""
        return F.sigmoid(self.gate_logits)

    def forward(self, lagged: Tensor) -> Tensor:
        """Predict ``(samples, N)`` from lagged inputs ``(samples, max_lag, N)``."""
        from repro.nn.tensor import einsum

        gates = self.gates()
        # contribution[s, i] = Σ_{j, lag} gates[i, j] · weights[i, j, lag] · lagged[s, lag, j]
        gated_weights = gates.unsqueeze(-1) * self.weights
        return einsum("slj,ijl->si", lagged, gated_weights) + self.bias


class CutsLite(ScoreBasedMethod):
    """Edge-gated lagged predictor scored by its gate probabilities."""

    name = "cuts"

    def __init__(self, max_lag: int = 3, epochs: int = 200, learning_rate: float = 2e-2,
                 sparsity: float = 2e-3, max_samples: int = 512, **kwargs) -> None:
        super().__init__(**kwargs)
        self.max_lag = max_lag
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.sparsity = sparsity
        self.max_samples = max_samples
        self.model_: Optional[_GatedPredictor] = None

    def _fit(self, values: np.ndarray) -> None:
        rng = init.default_rng(self.seed)
        n_series = values.shape[0]
        if values.shape[1] > self.max_samples:
            values = values[:, :self.max_samples]
        design, targets = lagged_design_matrix(values, self.max_lag)
        lagged = design.reshape(design.shape[0], self.max_lag, n_series)
        lagged_tensor = Tensor(lagged)
        target_tensor = Tensor(targets)
        model = _GatedPredictor(n_series, self.max_lag, rng=rng)
        optimizer = Adam(model.parameters(), lr=self.learning_rate)
        for _epoch in range(self.epochs):
            optimizer.zero_grad()
            prediction = model(lagged_tensor)
            loss = F.mse_loss(prediction, target_tensor)
            loss = loss + self.sparsity * model.gates().sum()
            loss.backward()
            optimizer.step()
        self.model_ = model

    def causal_scores(self, values: np.ndarray) -> np.ndarray:
        self._fit(values)
        return self.model_.gates().data.copy()

    def estimated_delays(self, values: np.ndarray) -> np.ndarray:
        if self.model_ is None:
            self._fit(values)
        weights = np.abs(self.model_.weights.data)       # (target, source, lag)
        return weights.argmax(axis=-1) + 1
