"""Discovery-job specifications with deterministic serialization.

A :class:`DiscoveryJob` describes one causal-discovery run — which method to
build (by :mod:`repro.service.registry` name), with which configuration, on
which dataset (identified by a content fingerprint), with which seed — as
plain JSON-able data.  Because the spec is pure data it can be pickled to a
worker process, hashed into a cache key, and written into run manifests.

Determinism matters: ``cache_key`` must be identical across processes and
across Python sessions for the on-disk result cache to work, so the canonical
serialization sorts dictionary keys and uses a fixed separator style.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.data.base import TimeSeriesDataset
from repro.graph.causal_graph import TemporalCausalGraph
from repro.graph.metrics import ConfusionCounts, DiscoveryScores


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN surprises."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def fingerprint_array(values: np.ndarray) -> str:
    """SHA-256 fingerprint of an array's shape and contents."""
    values = np.ascontiguousarray(np.asarray(values, dtype=float))
    digest = hashlib.sha256()
    digest.update(str(values.shape).encode("utf-8"))
    digest.update(values.tobytes())
    return digest.hexdigest()


def fingerprint_dataset(data: Union[TimeSeriesDataset, np.ndarray]) -> str:
    """SHA-256 fingerprint of a dataset: values, names and ground truth.

    Two datasets with identical observations but different ground-truth graphs
    fingerprint differently, because the evaluation (and therefore the cached
    scores) depends on the truth as well as on the observations.
    """
    if not isinstance(data, TimeSeriesDataset):
        return fingerprint_array(np.asarray(data, dtype=float))
    digest = hashlib.sha256()
    digest.update(fingerprint_array(data.values).encode("ascii"))
    digest.update(canonical_json(list(data.series_names)).encode("utf-8"))
    if data.graph is not None:
        digest.update(canonical_json(data.graph.to_dict()).encode("utf-8"))
    return digest.hexdigest()


@dataclass
class DiscoveryJob:
    """One schedulable causal-discovery run, as plain data.

    Attributes
    ----------
    method:
        Method name in :mod:`repro.service.registry` (e.g. ``"causalformer"``).
    config:
        JSON-able keyword arguments for the method factory.  For
        ``causalformer`` this is a flat :class:`CausalFormerConfig` payload
        plus the detector switches; for baselines it is their constructor
        keywords.
    dataset:
        Human-readable dataset identifier (used in tables and manifests).
    dataset_fingerprint:
        Content hash of the dataset (see :func:`fingerprint_dataset`); part
        of the cache key so stale results are never served for fresh data.
    seed:
        Random seed handed to the method factory (overrides any seed in
        ``config``).
    delay_tolerance:
        Tolerance passed to the delay-precision metric when scoring.
    """

    method: str
    config: Dict[str, Any] = field(default_factory=dict)
    dataset: str = "dataset"
    dataset_fingerprint: str = ""
    seed: int = 0
    delay_tolerance: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "method": self.method,
            "config": dict(self.config),
            "dataset": self.dataset,
            "dataset_fingerprint": self.dataset_fingerprint,
            "seed": self.seed,
            "delay_tolerance": self.delay_tolerance,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DiscoveryJob":
        return cls(
            method=payload["method"],
            config=dict(payload.get("config", {})),
            dataset=payload.get("dataset", "dataset"),
            dataset_fingerprint=payload.get("dataset_fingerprint", ""),
            seed=int(payload.get("seed", 0)),
            delay_tolerance=int(payload.get("delay_tolerance", 0)),
        )

    def canonical(self) -> str:
        """Deterministic serialization used for hashing and manifests."""
        return canonical_json(self.to_dict())

    def cache_key(self) -> str:
        """SHA-256 of the canonical spec — the result-cache key.

        Execution-environment knobs (worker count, engine dtype adoption,
        engine thread count) are deliberately *not* part of the key: the
        engines are bit-identical across all of them, so a result computed
        serially answers a threaded run and vice versa.
        """
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    @property
    def job_id(self) -> str:
        """Short, filesystem-safe identifier for logs and artifact names."""
        return f"{self.dataset}-{self.method}-seed{self.seed}-{self.cache_key()[:10]}"

    def __str__(self) -> str:
        return f"{self.method} on {self.dataset} (seed={self.seed})"


@dataclass
class JobResult:
    """Outcome of one :class:`DiscoveryJob`.

    Exactly one of ``error`` or (``graph``, ``scores``) is populated: a job
    that raised carries the formatted traceback instead of results, so one
    crashing method never takes down a sweep.
    """

    job: DiscoveryJob
    graph: Optional[TemporalCausalGraph] = None
    scores: Optional[DiscoveryScores] = None
    error: Optional[str] = None
    duration: float = 0.0
    cached: bool = False
    #: wall time of the cache lookup that served this result.  Kept separate
    #: from ``duration`` (the original run's *compute* time, preserved
    #: through the cache round-trip) — conflating the two made cache hits
    #: look as expensive as the training run they saved.
    lookup_duration: Optional[float] = None
    #: telemetry payload collected in a pool worker
    #: (:meth:`repro.telemetry.Telemetry.export`), shipped back across the
    #: process boundary for the parent executor to absorb.  Transient: the
    #: executor clears it after absorption and it is never cached.
    telemetry: Optional[Dict[str, Any]] = None
    #: how many executions this result consumed (1 = no retries).  The
    #: executor's retry/timeout recovery stamps it on the final result.
    attempts: int = 1
    #: the executor exhausted its retry budget on this job — the error is
    #: final, not transient.  A dead-letter result is never cached.
    dead_letter: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def metric(self, name: str) -> Optional[float]:
        """One scalar score (``f1`` / ``precision`` / ...), ``None`` on error."""
        if self.scores is None:
            return None
        return getattr(self.scores, name)

    # ------------------------------------------------------------------ #
    # JSON round-trip (used by the result cache and the artifact store)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "job": self.job.to_dict(),
            "error": self.error,
            "duration": self.duration,
        }
        if self.lookup_duration is not None:
            payload["lookup_duration"] = self.lookup_duration
        if self.attempts != 1:
            payload["attempts"] = self.attempts
        if self.dead_letter:
            payload["dead_letter"] = True
        if self.graph is not None:
            payload["graph"] = self.graph.to_dict()
        if self.scores is not None:
            scores = {
                "precision": self.scores.precision,
                "recall": self.scores.recall,
                "f1": self.scores.f1,
                "precision_of_delay": self.scores.precision_of_delay,
            }
            if self.scores.counts is not None:
                counts = self.scores.counts
                scores["counts"] = {
                    "true_positive": counts.true_positive,
                    "false_positive": counts.false_positive,
                    "false_negative": counts.false_negative,
                    "true_negative": counts.true_negative,
                }
            payload["scores"] = scores
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobResult":
        graph = None
        if payload.get("graph") is not None:
            graph = TemporalCausalGraph.from_dict(payload["graph"])
        scores = None
        if payload.get("scores") is not None:
            raw = payload["scores"]
            counts = None
            if raw.get("counts") is not None:
                counts = ConfusionCounts(**raw["counts"])
            scores = DiscoveryScores(
                precision=raw["precision"],
                recall=raw["recall"],
                f1=raw["f1"],
                precision_of_delay=raw.get("precision_of_delay"),
                counts=counts,
            )
        return cls(
            job=DiscoveryJob.from_dict(payload["job"]),
            graph=graph,
            scores=scores,
            error=payload.get("error"),
            duration=float(payload.get("duration", 0.0)),
            lookup_duration=(None if payload.get("lookup_duration") is None
                             else float(payload["lookup_duration"])),
            attempts=int(payload.get("attempts", 1)),
            dead_letter=bool(payload.get("dead_letter", False)),
        )
