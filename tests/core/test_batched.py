"""Stacked lockstep training must be bit-identical to sequential training."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.batched import StackedCausalFormerTrainer
from repro.core.config import CausalFormerConfig
from repro.core.training import Trainer
from repro.core.transformer import CausalityAwareTransformer


def base_config(**overrides):
    payload = dict(
        window=12, d_model=18, d_qk=18, d_ffn=18, n_heads=3, batch_size=16,
        window_stride=2, max_epochs=5, patience=2, n_series=None)
    payload.update(overrides)
    return CausalFormerConfig(**payload)


def make_series(seed, n_series=4, length=150):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(n_series, length)).cumsum(axis=1)
    values -= values.mean(axis=1, keepdims=True)
    values /= values.std(axis=1, keepdims=True) + 1e-9
    return values


@pytest.fixture(scope="module")
def trained_pair():
    """Three models trained sequentially and stacked on the same data."""
    values_list = [make_series(seed) for seed in range(3)]
    configs = [replace(base_config(), n_series=v.shape[0], seed=seed)
               for seed, v in enumerate(values_list)]
    sequential = [CausalityAwareTransformer(config) for config in configs]
    sequential_histories = [
        Trainer(model, config).fit(values)
        for model, config, values in zip(sequential, configs, values_list)]
    stacked = [CausalityAwareTransformer(config) for config in configs]
    stacked_histories = StackedCausalFormerTrainer(stacked).fit(values_list)
    return sequential, sequential_histories, stacked, stacked_histories


class TestBitIdentity:
    def test_final_parameters_identical(self, trained_pair):
        sequential, _sh, stacked, _bh = trained_pair
        for model_a, model_b in zip(sequential, stacked):
            for (name, param_a), (_n, param_b) in zip(
                    model_a.named_parameters(), model_b.named_parameters()):
                assert np.array_equal(param_a.data, param_b.data), name

    def test_histories_identical(self, trained_pair):
        _seq, sequential_histories, _stacked, stacked_histories = trained_pair
        for history_a, history_b in zip(sequential_histories,
                                        stacked_histories):
            assert history_a.train_loss == history_b.train_loss
            assert history_a.validation_loss == history_b.validation_loss
            assert history_a.best_epoch == history_b.best_epoch
            assert history_a.best_validation_loss == history_b.best_validation_loss
            assert history_a.stopped_early == history_b.stopped_early

    def test_models_usable_after_stacked_training(self, trained_pair):
        _seq, _sh, stacked, _bh = trained_pair
        for model in stacked:
            windows = make_series(9)[:, :model.config.window][None]
            prediction = model.predict(windows)
            assert np.isfinite(prediction).all()


class TestHeterogeneousStopping:
    def test_models_may_stop_at_different_epochs(self):
        """Lockstep training honours each model's own early stop."""
        values_list = [make_series(seed + 20) for seed in range(2)]
        configs = [replace(base_config(max_epochs=8, patience=1),
                           n_series=v.shape[0], seed=seed)
                   for seed, v in enumerate(values_list)]
        stacked = [CausalityAwareTransformer(config) for config in configs]
        histories = StackedCausalFormerTrainer(stacked).fit(values_list)
        reference = [
            Trainer(CausalityAwareTransformer(config), config).fit(values)
            for config, values in zip(configs, values_list)]
        for history, expected in zip(histories, reference):
            assert history.n_epochs == expected.n_epochs
            assert history.train_loss == expected.train_loss


class TestValidation:
    def test_rejects_mismatched_configs(self):
        config_a = replace(base_config(), n_series=4, seed=0)
        config_b = replace(base_config(d_model=24), n_series=4, seed=1)
        models = [CausalityAwareTransformer(config_a),
                  CausalityAwareTransformer(config_b)]
        with pytest.raises(ValueError, match="identical configs"):
            StackedCausalFormerTrainer(models)

    def test_single_kernel_is_stackable(self):
        config = replace(base_config(single_kernel=True), n_series=4)
        models = [CausalityAwareTransformer(config),
                  CausalityAwareTransformer(replace(config, seed=1))]
        trainer = StackedCausalFormerTrainer(models)
        assert trainer.config.single_kernel

    def test_unequal_validation_counts_train_identically(self):
        """Equal training shapes with unequal validation shapes (a round()
        artefact of the validation fraction) train bit-identically: the
        grouped evaluation runs each validation count at its exact shape."""
        configs = [replace(base_config(validation_fraction=0.1, max_epochs=3),
                           n_series=4, seed=seed) for seed in range(2)]
        # window=12, stride=2: lengths 220 and 222 give 105 and 106 windows,
        # which split into 95 + 10 and 95 + 11 under a 0.1 fraction.
        values_list = [make_series(0, length=220), make_series(1, length=222)]
        sequential = [CausalityAwareTransformer(config) for config in configs]
        for model, config, values in zip(sequential, configs, values_list):
            Trainer(model, config).fit(values)
        stacked = [CausalityAwareTransformer(config) for config in configs]
        StackedCausalFormerTrainer(stacked).fit(values_list)
        for model_a, model_b in zip(sequential, stacked):
            for (name, param_a), (_n, param_b) in zip(
                    model_a.named_parameters(), model_b.named_parameters()):
                assert np.array_equal(param_a.data, param_b.data), name

    def test_rejects_empty_model_list(self):
        with pytest.raises(ValueError, match="at least one"):
            StackedCausalFormerTrainer([])

    def test_rejects_mismatched_dataset_count(self):
        config = replace(base_config(), n_series=4)
        models = [CausalityAwareTransformer(config),
                  CausalityAwareTransformer(replace(config, seed=1))]
        with pytest.raises(ValueError, match="one dataset per model"):
            StackedCausalFormerTrainer(models).fit([make_series(0)])

    def test_rejects_mismatched_variable_counts(self):
        """Lanes must share the (N, T) window geometry — padding the model's
        own variable axis would change every GEMM."""
        config = replace(base_config(), n_series=4)
        models = [CausalityAwareTransformer(config),
                  CausalityAwareTransformer(replace(config, seed=1))]
        with pytest.raises(ValueError, match="window geometry"):
            StackedCausalFormerTrainer(models).fit(
                [make_series(0), make_series(1, n_series=3)])


class TestSingleKernelBitIdentity:
    """The single-kernel ablation trains in the stack like any other config."""

    @pytest.fixture(scope="class")
    def trained_single_kernel(self):
        values_list = [make_series(seed + 40) for seed in range(2)]
        configs = [replace(base_config(single_kernel=True),
                           n_series=v.shape[0], seed=seed)
                   for seed, v in enumerate(values_list)]
        sequential = [CausalityAwareTransformer(config) for config in configs]
        sequential_histories = [
            Trainer(model, config).fit(values)
            for model, config, values in zip(sequential, configs, values_list)]
        stacked = [CausalityAwareTransformer(config) for config in configs]
        stacked_histories = StackedCausalFormerTrainer(stacked).fit(values_list)
        return sequential, sequential_histories, stacked, stacked_histories

    def test_parameters_identical(self, trained_single_kernel):
        sequential, _sh, stacked, _bh = trained_single_kernel
        for model_a, model_b in zip(sequential, stacked):
            for (name, param_a), (_n, param_b) in zip(
                    model_a.named_parameters(), model_b.named_parameters()):
                assert np.array_equal(param_a.data, param_b.data), name

    def test_histories_identical(self, trained_single_kernel):
        _seq, sequential_histories, _stacked, stacked_histories = \
            trained_single_kernel
        for history_a, history_b in zip(sequential_histories,
                                        stacked_histories):
            assert history_a.train_loss == history_b.train_loss
            assert history_a.validation_loss == history_b.validation_loss
            assert history_a.best_epoch == history_b.best_epoch


class TestRetiredModelsOwnTheirWeights:
    def test_best_state_restore_detaches_from_stack(self):
        """A finished lane's model leaves with *owned* best-epoch arrays —
        its stack row is compacted away and may be reused by a refilled
        lane, so the restored weights must not alias the (K, P) matrix."""
        values_list = [make_series(seed + 60) for seed in range(2)]
        configs = [replace(base_config(max_epochs=8, patience=1,
                                       min_delta=10.0),
                           n_series=v.shape[0], seed=seed)
                   for seed, v in enumerate(values_list)]
        models = [CausalityAwareTransformer(config) for config in configs]
        trainer = StackedCausalFormerTrainer(models)
        histories = trainer.fit(values_list)
        assert any(history.stopped_early for history in histories)
        for row in range(len(models)):
            for parameter in trainer._parameters[row]:
                assert not np.shares_memory(parameter.data, trainer.params)
        for model in models:
            windows = make_series(9)[:, :model.config.window][None]
            assert np.isfinite(model.predict(windows)).all()


class TestDivergenceStopsRow:
    def test_non_finite_loss_flags_and_stops(self, monkeypatch):
        """A NaN loss in one model stops that row immediately and flags its
        history, without derailing the other rows."""
        values_list = [make_series(seed + 80) for seed in range(2)]
        configs = [replace(base_config(max_epochs=6, patience=1000),
                           n_series=v.shape[0], seed=seed)
                   for seed, v in enumerate(values_list)]
        models = [CausalityAwareTransformer(config) for config in configs]
        trainer = StackedCausalFormerTrainer(models)

        original = StackedCausalFormerTrainer._forward_backward
        state = {"epoch_batches": 0}

        def poisoned(self, xb):
            losses, grads = original(self, xb)
            state["epoch_batches"] += 1
            # Poison row 0 in later epochs, but only while both lanes are
            # live — once model 0 retires, lane compaction shifts model 1
            # into row 0.
            if state["epoch_batches"] > 12 and len(losses) > 1:
                losses[0] = float("nan")
            return losses, grads

        monkeypatch.setattr(StackedCausalFormerTrainer, "_forward_backward",
                            poisoned)
        histories = trainer.fit(values_list)
        assert histories[0].diverged
        assert not histories[1].diverged
        assert histories[0].n_epochs <= histories[1].n_epochs
        assert histories[1].n_epochs == 6

    def test_divergence_without_best_state_matches_sequential(self,
                                                              monkeypatch):
        """A row that diverges before ever improving must end with the same
        weights as the sequential trainer's immediate break — not keep
        riding the remaining stacked Adam steps."""
        values_list = [make_series(seed + 90) for seed in range(2)]
        configs = [replace(base_config(max_epochs=6, patience=1000),
                           n_series=v.shape[0], seed=seed)
                   for seed, v in enumerate(values_list)]

        stacked_models = [CausalityAwareTransformer(config)
                          for config in configs]
        trainer = StackedCausalFormerTrainer(stacked_models)
        original_stacked = StackedCausalFormerTrainer._forward_backward

        def poison_row0(self, xb):
            losses, grads = original_stacked(self, xb)
            if len(losses) > 1:        # row 0 is model 0 until it retires
                losses[0] = float("nan")
            return losses, grads

        monkeypatch.setattr(StackedCausalFormerTrainer, "_forward_backward",
                            poison_row0)
        histories = trainer.fit(values_list)
        assert histories[0].diverged and histories[0].best_epoch == -1
        assert not histories[1].diverged

        # Sequential reference for row 0: same data, every reported epoch
        # loss NaN, real steps still taken — breaks after epoch 0.
        sequential = CausalityAwareTransformer(configs[0])
        sequential_trainer = Trainer(sequential, configs[0])
        original_epoch = Trainer._run_epoch

        def poison_epoch(self, windows, rng):
            original_epoch(self, windows, rng)
            return float("nan")

        monkeypatch.setattr(Trainer, "_run_epoch", poison_epoch)
        sequential_history = sequential_trainer.fit(values_list[0])
        assert sequential_history.diverged

        for (name, param_a), (_n, param_b) in zip(
                sequential.named_parameters(),
                stacked_models[0].named_parameters()):
            assert np.array_equal(param_a.data, param_b.data), name


#: the training-relevant Table 3 ablation grid (detector-only switches
#: never touch a training step), plus the head/penalty axes that change
#: the backward's accumulation structure — see test_training_engine
ABLATION_GRID = [
    {},
    {"single_kernel": True},
    {"lambda_kernel": 0.0},
    {"lambda_mask": 0.0},
    {"n_heads": 1},
    {"temperature": 2.5},
]


class TestHeterogeneousShapes:
    """Pad-and-mask lanes: mixed window counts must train bit-identically.

    Series lengths are chosen so every lane has a different window count
    (and a different full-step/tail split), forcing masked full steps,
    ragged tail groups and grouped validation — and, with finite patience,
    mid-fit lane compaction when lanes stop at different epochs."""

    LENGTHS = [150, 190, 166]

    def _run(self, dtype):
        from repro.nn.tensor import default_dtype

        with default_dtype(dtype):
            values_list = [make_series(seed, length=length)
                           for seed, length in enumerate(self.LENGTHS)]
            configs = [replace(base_config(max_epochs=6, patience=2),
                               n_series=v.shape[0], seed=seed)
                       for seed, v in enumerate(values_list)]
            sequential = [CausalityAwareTransformer(config)
                          for config in configs]
            sequential_histories = [
                Trainer(model, config).fit(values)
                for model, config, values in zip(sequential, configs,
                                                 values_list)]
            stacked = [CausalityAwareTransformer(config)
                       for config in configs]
            trainer = StackedCausalFormerTrainer(stacked)
            stacked_histories = trainer.fit(values_list)
        return (sequential, sequential_histories, stacked, stacked_histories,
                trainer)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_mixed_lengths_bit_identical(self, dtype):
        sequential, seq_histories, stacked, stk_histories, trainer = \
            self._run(dtype)
        for model_a, model_b in zip(sequential, stacked):
            for (name, param_a), (_n, param_b) in zip(
                    model_a.named_parameters(), model_b.named_parameters()):
                assert param_a.data.dtype == param_b.data.dtype
                assert np.array_equal(param_a.data, param_b.data), name
        for history_a, history_b in zip(seq_histories, stk_histories):
            assert history_a.train_loss == history_b.train_loss
            assert history_a.validation_loss == history_b.validation_loss
            assert history_a.best_epoch == history_b.best_epoch
            assert history_a.stopped_early == history_b.stopped_early
            assert history_a.diverged == history_b.diverged

    def test_padding_is_accounted(self):
        *_rest, trainer = self._run(np.float64)
        assert 0.0 < trainer.padded_window_fraction < 1.0

    @pytest.mark.parametrize("overrides", ABLATION_GRID)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_ablation_grid_bit_identical(self, overrides, dtype):
        """Two mixed-length lanes across the Table 3 ablation grid."""
        from repro.nn.tensor import default_dtype

        with default_dtype(dtype):
            values_list = [make_series(7, length=150),
                           make_series(8, length=198)]
            configs = [replace(base_config(max_epochs=3, **overrides),
                               n_series=v.shape[0], seed=seed)
                       for seed, v in enumerate(values_list)]
            sequential = [CausalityAwareTransformer(config)
                          for config in configs]
            for model, config, values in zip(sequential, configs,
                                             values_list):
                Trainer(model, config).fit(values)
            stacked = [CausalityAwareTransformer(config)
                       for config in configs]
            StackedCausalFormerTrainer(stacked).fit(values_list)
        for model_a, model_b in zip(sequential, stacked):
            for (name, param_a), (_n, param_b) in zip(
                    model_a.named_parameters(), model_b.named_parameters()):
                assert np.array_equal(param_a.data, param_b.data), name


class TestCompaction:
    def test_retired_lanes_stop_consuming_step_time(self, monkeypatch):
        """Once a lane diverges, the stack repacks to (K-1, P) and later
        steps run at the narrower width — a dead lane costs nothing."""
        values_list = [make_series(seed + 100) for seed in range(3)]
        configs = [replace(base_config(max_epochs=4, patience=1000),
                           n_series=v.shape[0], seed=seed)
                   for seed, v in enumerate(values_list)]
        models = [CausalityAwareTransformer(config) for config in configs]
        trainer = StackedCausalFormerTrainer(models)

        original = StackedCausalFormerTrainer._forward_backward
        widths = []

        def recording(self, xb):
            widths.append(xb.shape[0])
            losses, grads = original(self, xb)
            if len(losses) == 3:       # poison one lane in the full fleet
                losses[0] = float("nan")
            return losses, grads

        monkeypatch.setattr(StackedCausalFormerTrainer, "_forward_backward",
                            recording)
        histories = trainer.fit(values_list)
        assert histories[0].diverged
        assert not histories[1].diverged and not histories[2].diverged
        assert widths[0] == 3          # epoch 0 runs the full stack
        assert widths[-1] == 2         # survivors run without the dead lane
        assert set(widths) == {3, 2}


class TestRefill:
    def test_refilled_lanes_train_bit_identically(self):
        """A model admitted into a freed lane mid-sweep trains exactly like
        a fresh solo fit (epoch 0, zeroed Adam state, its own rng)."""
        lengths = [150, 190, 166, 222, 174]
        values_list = [make_series(seed, length=length)
                       for seed, length in enumerate(lengths)]
        configs = [replace(base_config(max_epochs=6, patience=2),
                           n_series=v.shape[0], seed=seed)
                   for seed, v in enumerate(values_list)]
        sequential = [CausalityAwareTransformer(config) for config in configs]
        sequential_histories = [
            Trainer(model, config).fit(values)
            for model, config, values in zip(sequential, configs, values_list)]
        stacked = [CausalityAwareTransformer(config) for config in configs]
        trainer = StackedCausalFormerTrainer(stacked[:3], capacity=3)
        queue = list(zip(stacked[3:], values_list[3:]))

        def refill(free):
            admissions = []
            while free and queue:
                admissions.append(queue.pop(0))
                free -= 1
            return admissions

        histories = trainer.fit(values_list[:3], refill=refill)
        assert not queue and len(histories) == 5
        assert len(trainer.models) == 5
        for model_a, model_b in zip(sequential, stacked):
            for (name, param_a), (_n, param_b) in zip(
                    model_a.named_parameters(), model_b.named_parameters()):
                assert np.array_equal(param_a.data, param_b.data), name
        for history_a, history_b in zip(sequential_histories, histories):
            assert history_a.train_loss == history_b.train_loss
            assert history_a.best_epoch == history_b.best_epoch

    def test_refill_respects_capacity(self):
        values_list = [make_series(seed + 30) for seed in range(2)]
        configs = [replace(base_config(max_epochs=2), n_series=4, seed=seed)
                   for seed in range(2)]
        models = [CausalityAwareTransformer(config) for config in configs]
        trainer = StackedCausalFormerTrainer(models, capacity=2)
        with pytest.raises(RuntimeError, match="no free lane"):
            trainer._admit_lane(
                CausalityAwareTransformer(replace(configs[0], seed=9)),
                make_series(9), __import__("repro.telemetry",
                                           fromlist=["get_telemetry"])
                .get_telemetry())
