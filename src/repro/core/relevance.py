"""Regression relevance propagation (RRP), paper Sec. 4.2.1.

RRP extends layer-wise relevance propagation (LRP) to regression models.  The
between-layer rule (Eq. 17) is

.. math::

    R^{(l)}_i = \\sum_j x_i \\; \\frac{\\partial f^{(l)}(x)_j}{\\partial x_i}
                \\; \\frac{R^{(l+1)}_j}{f^{(l)}(x)_j}

and non-parametric operations (matrix products) propagate relevance through
both operands with the two-operand variant (Eq. 18).  The bias term is kept
in the denominator (Eq. 15–16) so that the relevance the bias would claim is
subtracted from the inputs' relevance — removing it is the "w/o bias"
ablation of Table 3.

The propagation implemented here starts at the model output (initialised with
a one-hot relevance selecting the target series, Fig. 6a) and walks back
through the output layer, the feed-forward layer, the head-concatenation
weight, the attention application, and the causal convolution, stopping at
the attention matrix ``A`` and the convolution kernel ``K`` — exactly the
two tensors the causal-graph construction reads (Sec. 4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.transformer import CausalityAwareTransformer, TransformerCache


def stabilize(values: np.ndarray, epsilon: float) -> np.ndarray:
    """Add a sign-preserving epsilon so divisions by activations are safe."""
    signs = np.where(values >= 0, 1.0, -1.0)
    return values + signs * epsilon


@dataclass
class HeadRelevance:
    """Relevance scores reaching one attention head."""

    attention: np.ndarray   # (B, N, N) — relevance of the attention matrix
    values: np.ndarray      # (B, N, N, T) — relevance of the convolution output
    kernel: np.ndarray      # (N, N, T) — relevance of the convolution kernel


@dataclass
class RelevanceResult:
    """Relevance of the interpretable tensors for one target series."""

    target: int
    heads: List[HeadRelevance]
    output_relevance: np.ndarray  # the one-hot initialisation (B, N, T)


class RegressionRelevancePropagation:
    """Backward relevance decomposition of a trained causality-aware transformer.

    Parameters
    ----------
    model:
        The trained transformer.
    use_bias:
        Keep the bias term in the denominators (Eq. 15).  ``False``
        reproduces the "w/o bias" ablation (z-rule denominators, Eq. 14).
    epsilon:
        Stabiliser for divisions by activations.
    """

    def __init__(self, model: CausalityAwareTransformer, use_bias: bool = True,
                 epsilon: float = 1e-9) -> None:
        self.model = model
        self.use_bias = use_bias
        self.epsilon = epsilon

    # ------------------------------------------------------------------ #
    # Elementary propagation rules
    # ------------------------------------------------------------------ #
    def _linear_relevance(self, inputs: np.ndarray, weight: np.ndarray,
                          bias: Optional[np.ndarray], outputs: np.ndarray,
                          relevance_out: np.ndarray) -> np.ndarray:
        """Relevance through ``outputs = inputs @ weight + bias`` (Eq. 15/17)."""
        denominator = outputs if (self.use_bias or bias is None) else outputs - bias
        ratio = relevance_out / stabilize(denominator, self.epsilon)
        return inputs * (ratio @ weight.T)

    def _scale_relevance(self, operand: np.ndarray, scale: float,
                         outputs: np.ndarray, relevance_out: np.ndarray) -> np.ndarray:
        """Relevance through an element-wise scaling ``outputs = scale * operand``."""
        return operand * scale * relevance_out / stabilize(outputs, self.epsilon)

    # ------------------------------------------------------------------ #
    # Full propagation
    # ------------------------------------------------------------------ #
    def one_hot_relevance(self, cache: TransformerCache, target: int) -> np.ndarray:
        """Initial relevance: ones on the target series' output row (Fig. 6a)."""
        batch, n_series, window = cache.output.shape
        if not (0 <= target < n_series):
            raise IndexError(f"target series {target} out of range [0, {n_series})")
        relevance = np.zeros((batch, n_series, window))
        relevance[:, target, :] = 1.0
        return relevance

    def propagate(self, cache: TransformerCache, target: int) -> RelevanceResult:
        """Propagate relevance from the output of series ``target`` to A and K."""
        model = self.model
        relevance_output = self.one_hot_relevance(cache, target)

        # Output layer: prediction = ffn_output @ W_out + b_out.
        relevance_ffn_out = self._linear_relevance(
            cache.ffn_output, model.output_layer.weight.data,
            model.output_layer.bias.data, cache.output, relevance_output)

        # Feed-forward second linear: ffn_output = activated @ W2 + b2.
        relevance_activated = self._linear_relevance(
            cache.ffn_activated, model.feed_forward.w2.data,
            model.feed_forward.b2.data, cache.ffn_output, relevance_ffn_out)

        # Leaky ReLU: the generic rule gives R_in = x·f'(x)·R_out / f(x) = R_out
        # for a piecewise-linear activation through the origin, so relevance
        # passes through unchanged.
        relevance_hidden = relevance_activated

        # Feed-forward first linear: hidden = attention_combined @ W1 + b1.
        relevance_attention_combined = self._linear_relevance(
            cache.attention_combined, model.feed_forward.w1.data,
            model.feed_forward.b1.data, cache.ffn_hidden, relevance_hidden)

        # Head concatenation: combined = Σ_h W_O[h] · head_output_h.
        combined = cache.attention_combined
        w_output = model.attention.w_output.data
        head_relevances: List[HeadRelevance] = []
        kernel = model.convolution.effective_kernel().data
        window = model.config.window
        scale = 1.0 / np.arange(1, window + 1, dtype=float)
        scaled_windows = cache.conv_windows * scale[None, None, :, None]

        for head_index, head_cache in enumerate(cache.head_caches):
            head_output = head_cache.head_output_data
            relevance_head = (head_output * w_output[head_index]
                              * relevance_attention_combined
                              / stabilize(combined, self.epsilon))

            # Attention application (two-operand rule, Eq. 18):
            #   head_output[b, i, t] = Σ_j attention[b, i, j] · values[b, j, i, t]
            attention = head_cache.attention_data
            values = cache.values
            ratio = relevance_head / stabilize(head_output, self.epsilon)
            relevance_attention = attention * np.einsum("bjit,bit->bij", values, ratio)
            relevance_values = np.einsum("bij,bjit,bit->bjit", attention, values, ratio)

            # Undo the diagonal right-shift before touching the kernel: the
            # post-shift value at slot t+1 came from the pre-shift value at t.
            relevance_pre_shift = relevance_values.copy()
            n_series = values.shape[1]
            diag = np.arange(n_series)
            relevance_pre_shift[:, diag, diag, :-1] = relevance_values[:, diag, diag, 1:]
            relevance_pre_shift[:, diag, diag, -1] = 0.0

            # Convolution (two-operand rule): values_pre[b, i, j, t] =
            #   Σ_τ kernel[i, j, τ] · windows[b, i, t, τ] / (t + 1)
            ratio_values = relevance_pre_shift / stabilize(cache.values_pre_shift, self.epsilon)
            relevance_kernel = kernel * np.einsum("bitk,bijt->ijk", scaled_windows, ratio_values)

            head_relevances.append(HeadRelevance(
                attention=relevance_attention,
                values=relevance_values,
                kernel=relevance_kernel,
            ))

        return RelevanceResult(target=target, heads=head_relevances,
                               output_relevance=relevance_output)

    # ------------------------------------------------------------------ #
    # Diagnostics used by tests
    # ------------------------------------------------------------------ #
    def conservation_gap(self, cache: TransformerCache, target: int) -> float:
        """Relative gap between output relevance and the relevance reaching A.

        Exact LRP conserves relevance layer by layer (Eq. 10); RRP's bias
        relevance deliberately breaks strict conservation (Sec. 4.2.1), so
        this returns the relative difference — useful to verify that the
        propagation neither explodes nor vanishes.
        """
        result = self.propagate(cache, target)
        total_out = float(result.output_relevance.sum())
        total_attention = float(sum(head.attention.sum() for head in result.heads))
        if total_out == 0:
            return 0.0
        return abs(total_out - total_attention) / abs(total_out)
