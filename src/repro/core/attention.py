"""Multi-variate causal attention (paper Sec. 4.1.3, Eq. 5–7).

Each head projects the time-series embedding to queries and keys, forms the
``N×N`` attention matrix

.. math::

    A = \\mathrm{softmax}\\big( Q K^\\top / (τ \\sqrt{d_{QK}}) ⊙ M \\big)

with a learnable mask ``M`` controlling sparsity, and applies it to the value
tensor ``V`` — the multi-kernel causal convolution output — so that the
attention result for target series ``i`` aggregates, over sources ``j``, the
convolution of ``j``'s history computed *for* ``i``:

.. math::

    \\mathrm{A}_{i,t} = \\sum_j A_{ij} · V_{j,i,t}

The ``h`` head outputs are combined by a weight vector ``W_O ∈ R^h`` (Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn import tensor as T
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor


@dataclass
class AttentionHeadCache:
    """Intermediates of one attention head kept for interpretation.

    ``attention`` and ``head_output`` are the live autograd tensors (so the
    detector can read their gradients after a backward pass); the ``*_data``
    fields are plain numpy views used by relevance propagation.
    """

    attention: Tensor
    head_output: Tensor
    attention_data: np.ndarray
    head_output_data: np.ndarray
    scores_data: np.ndarray


class CausalAttentionHead(Module):
    """One head: Q/K projections, learnable mask, tempered softmax."""

    def __init__(self, n_series: int, d_model: int, d_qk: int, temperature: float,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.n_series = n_series
        self.d_qk = d_qk
        self.temperature = temperature
        rng = rng or init.default_rng()
        self.w_query = Parameter(init.he_normal((d_model, d_qk), rng))
        self.b_query = Parameter(init.zeros((d_qk,)))
        self.w_key = Parameter(init.he_normal((d_model, d_qk), rng))
        self.b_key = Parameter(init.zeros((d_qk,)))
        # Learnable attention mask M, initialised to ones (no masking).
        self.mask = Parameter(init.ones((n_series, n_series)))

    def forward(self, embedding: Tensor, values: Tensor) -> AttentionHeadCache:
        """Run the head on a batch.

        Parameters
        ----------
        embedding:
            ``(batch, N, d_model)`` output of the time-series embedding.
        values:
            ``(batch, N, N, T)`` output of the causal convolution
            (``values[b, j, i, t]`` = source ``j`` convolved for target ``i``).
        """
        query = embedding @ self.w_query + self.b_query
        key = embedding @ self.w_key + self.b_key
        scale = 1.0 / (self.temperature * np.sqrt(self.d_qk))
        scores = T.einsum("bnd,bmd->bnm", query, key) * scale
        masked = scores * self.mask
        attention = F.softmax(masked, axis=-1)
        attention.retain_grad()
        # head_output[b, i, t] = Σ_j attention[b, i, j] · values[b, j, i, t]
        head_output = T.einsum("bij,bjit->bit", attention, values)
        head_output.retain_grad()
        return AttentionHeadCache(
            attention=attention,
            head_output=head_output,
            attention_data=attention.data,
            head_output_data=head_output.data,
            scores_data=masked.data,
        )

    def l1_penalty(self) -> Tensor:
        """``‖M‖₁`` — the mask sparsity term of the loss (Eq. 9)."""
        return self.mask.abs().sum()


class MultiVariateCausalAttention(Module):
    """The full multi-head multi-variate causal attention block.

    The parameters live in per-head :class:`CausalAttentionHead` submodules
    (stable ``state_dict`` layout, and each head remains usable standalone),
    but ``forward`` stacks them and runs every head in one batched einsum
    chain instead of a Python loop over heads.
    """

    def __init__(self, n_series: int, d_model: int, d_qk: int, n_heads: int,
                 temperature: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if n_heads < 1:
            raise ValueError("n_heads must be at least 1")
        self.n_series = n_series
        self.n_heads = n_heads
        self.d_qk = d_qk
        self.temperature = temperature
        rng = rng or init.default_rng()
        self.heads = ModuleList([
            CausalAttentionHead(n_series, d_model, d_qk, temperature, rng=rng)
            for _ in range(n_heads)
        ])
        # W_O ∈ R^h concatenates (weights) the head outputs (Eq. 7).
        self.w_output = Parameter(init.ones((n_heads,)) / n_heads)
        # The per-head parameter lists are fixed after construction; cache
        # them so the forward pass does not rebuild them every step.
        heads = list(self.heads)
        self.query_weights = [head.w_query for head in heads]
        self.query_biases = [head.b_query for head in heads]
        self.key_weights = [head.w_key for head in heads]
        self.key_biases = [head.b_key for head in heads]
        self.mask_parameters = [head.mask for head in heads]

    def _project_qk(self, embedding: Tensor) -> Tuple[Tensor, Tensor]:
        """Every head's Q and K projection in one BLAS GEMM.

        The ``2h`` per-head weight matrices are stacked and flattened to
        ``(d, 2·h·q)`` so a single matmul produces all queries *and* keys;
        the result is reshaped to ``(2, h, B, N, q)`` and sliced.
        """
        n_heads = self.n_heads
        projected = F.stacked_qk_projection(
            embedding, self.query_weights + self.key_weights,
            self.query_biases + self.key_biases)                      # (2h, B, N, q)
        return projected[:n_heads], projected[n_heads:]

    def forward(self, embedding: Tensor, values: Tensor,
                collect_caches: bool = True):
        """Return ``(combined, head_caches)``.

        ``combined`` has shape ``(batch, N, T)``; ``head_caches`` is the list
        of per-head :class:`AttentionHeadCache` used by the causality
        detector.  Training steps never read the caches, so the trainer path
        passes ``collect_caches=False`` and skips both the per-head graph
        nodes and the retained-gradient copies.
        """
        n_heads = self.n_heads
        scale = 1.0 / (self.temperature * np.sqrt(self.d_qk))
        masks = self.mask_parameters

        if not collect_caches:
            # Training fast path: two fused nodes for the whole block.
            attention_stack = F.causal_attention_probs(
                embedding, self.query_weights, self.query_biases,
                self.key_weights, self.key_biases, masks, scale)
            combined = F.attention_combine(attention_stack, values, self.w_output)
            return combined, []

        query, key = self._project_qk(embedding)                      # (h, B, N, q) each
        masked = F.masked_attention_scores(query, key, masks, scale)  # (h, B, N, N)
        attention_stack = F.softmax(masked, axis=-1)                  # (h, B, N, N)

        # Slice out per-head views and re-stack them, so each head's
        # attention matrix is an autograd node *on the path* to the output —
        # the detector reads their retained gradients (Fig. 6b).  The slices
        # are O(h·B·N²), negligible next to the attention application below.
        attention_heads = [attention_stack[h].retain_grad() for h in range(n_heads)]
        attention_restack = T.stack(attention_heads, axis=0)
        # head_output[h, b, i, t] = Σ_j attention[h, b, i, j] · values[b, j, i, t]
        head_output_stack = F.causal_attention_apply(attention_restack, values)
        head_outputs = [head_output_stack[h].retain_grad() for h in range(n_heads)]
        output_restack = T.stack(head_outputs, axis=0)
        combined = T.einsum("hbit,h->bit", output_restack, self.w_output)

        masked_data = masked.data
        caches = [
            AttentionHeadCache(
                attention=attention_heads[h],
                head_output=head_outputs[h],
                attention_data=attention_heads[h].data,
                head_output_data=head_outputs[h].data,
                scores_data=masked_data[h],
            )
            for h in range(n_heads)
        ]
        return combined, caches

    def mask_l1_penalty(self) -> Tensor:
        """``Σ_h ‖M_h‖₁`` in one batched op (equals the per-head sum)."""
        if len(self.heads) == 1:
            return self.heads[0].l1_penalty()
        masks = T.stack([head.mask for head in self.heads], axis=0)
        return masks.abs().sum()
