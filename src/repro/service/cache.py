"""On-disk, content-addressed result cache.

Results are keyed by the SHA-256 of the job's canonical spec (which already
includes the dataset fingerprint — see
:meth:`repro.service.jobs.DiscoveryJob.cache_key`), so a cache entry can
never be served for different data, a different configuration or a different
seed.  Entries are single JSON files, sharded by the first two hex digits of
the key to keep directories small; writes go through a temporary file and an
atomic rename so concurrent workers and interrupted runs cannot leave a
half-written entry behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional


def default_cache_dir() -> str:
    """Resolve the cache directory: ``$REPRO_CACHE_DIR`` or XDG cache."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(xdg, "repro", "results")


@dataclass
class CacheStats:
    """Snapshot of a cache directory plus this session's hit/miss counters."""

    directory: str
    n_entries: int
    total_bytes: int
    hits: int
    misses: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "directory": self.directory,
            "n_entries": self.n_entries,
            "total_bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
        }


class ResultCache:
    """A directory of JSON result payloads addressed by hex digest keys."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = (os.path.expanduser(str(directory))
                          if directory is not None else default_cache_dir())
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Key → path layout
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> str:
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            raise ValueError(f"cache keys must be lowercase hex digests; got {key!r}")
        return os.path.join(self.directory, key[:2], f"{key}.json")

    # ------------------------------------------------------------------ #
    # Read / write
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload, or ``None`` on a miss (or a corrupted entry).

        Reads are paranoid: an entry that fails to parse, decode, or isn't a
        JSON object is *evicted* (counted under ``cache.corrupt``) and
        reported as a miss — a torn write or a flipped bit must never raise
        mid-sweep, and must never be retried on every subsequent lookup.
        """
        from repro.telemetry import get_telemetry

        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
        except OSError:
            self.misses += 1
            get_telemetry().counter("cache.misses").inc()
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
            self.evict(key, reason="unparseable")
            self.misses += 1
            get_telemetry().counter("cache.misses").inc()
            return None
        self.hits += 1
        get_telemetry().counter("cache.hits").inc()
        return payload

    def evict(self, key: str, reason: str = "corrupt") -> bool:
        """Drop one entry (used on corruption); returns whether it existed."""
        from repro.telemetry import get_telemetry

        telemetry = get_telemetry()
        telemetry.counter("cache.corrupt").inc()
        if telemetry.enabled:
            telemetry.event("cache_corrupt_entry", key=key, reason=reason)
        try:
            os.unlink(self.path_for(key))
        except OSError:
            return False
        return True

    def put(self, key: str, payload: Dict[str, Any]) -> str:
        """Atomically persist a payload; returns the entry's path.

        The entry is serialized up front, written to a same-directory
        temporary file, flushed and fsynced, and only then renamed into
        place — a crash at any point leaves either the old entry or a stray
        ``.tmp`` file (pruned by :meth:`clear`), never a half-written entry.
        """
        from repro import faults
        from repro.telemetry import get_telemetry

        get_telemetry().counter("cache.writes").inc()
        path = self.path_for(key)
        # default=str matches canonical_json: a config that hashed
        # cleanly (e.g. numpy scalars) must also store cleanly.
        text = json.dumps(payload, default=str)
        spec = faults.fault_point("cache_write", key=key)
        if spec is not None and spec.action == "corrupt":
            # Simulate a torn write surviving to disk: the truncated entry
            # still lands atomically, so the *read* path's paranoia is what
            # the injected fault exercises.
            text = text[:max(1, len(text) // 3)]
        os.makedirs(os.path.dirname(path), exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        """Pure existence probe — deliberately does *not* touch the hit/miss
        counters.  ``get`` is the single counting lookup, so the common
        ``key in cache`` + ``get(key)`` pattern records exactly one hit (or
        one miss), never two."""
        return os.path.exists(self.path_for(key))

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def keys(self) -> Iterator[str]:
        if not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            shard_path = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_path):
                continue
            for entry in sorted(os.listdir(shard_path)):
                if entry.endswith(".json"):
                    yield entry[:-len(".json")]

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed.

        Also prunes what emptying leaves behind: stale ``.tmp`` files from
        interrupted writes and the then-empty shard directories (which used
        to accumulate forever, one per touched key prefix).
        """
        removed = 0
        for key in list(self.keys()):
            try:
                os.unlink(self.path_for(key))
                removed += 1
            except OSError:
                pass
        if os.path.isdir(self.directory):
            for shard in os.listdir(self.directory):
                shard_path = os.path.join(self.directory, shard)
                if not os.path.isdir(shard_path):
                    continue
                for entry in os.listdir(shard_path):
                    if entry.endswith(".tmp"):
                        try:
                            os.unlink(os.path.join(shard_path, entry))
                        except OSError:
                            pass
                try:
                    os.rmdir(shard_path)
                except OSError:
                    # Shard still holds foreign files — leave it alone.
                    pass
        return removed

    def stats(self) -> CacheStats:
        n_entries = 0
        total_bytes = 0
        for key in self.keys():
            n_entries += 1
            try:
                total_bytes += os.path.getsize(self.path_for(key))
            except OSError:
                pass
        return CacheStats(directory=self.directory, n_entries=n_entries,
                          total_bytes=total_bytes, hits=self.hits, misses=self.misses)

    def __repr__(self) -> str:
        return f"ResultCache({self.directory!r})"
