"""The paper's four synthetic causal structures (Fig. 7).

* **diamond** — ``S1→S2, S1→S3, S2→S4, S3→S4`` (four series);
* **mediator** — ``S1→S2, S2→S3, S1→S3`` (three series);
* **v-structure** — ``S1→S3, S2→S3`` (three series, a collider);
* **fork** — ``S1→S2, S1→S3`` (three series, a common cause).

Every structure also carries self-causation edges (``Si→Si`` with delay 1),
matching the paper's Fig. 1 which lists self-causation among the relations a
temporal causal graph may contain, and each non-self edge receives a small
random delay.  Observations are produced by the structural lagged process of
:mod:`repro.data.var` with additive standard-normal noise and 1,000 steps, as
in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.data.base import TimeSeriesDataset
from repro.data.var import VarProcessSpec, simulate_var
from repro.graph.causal_graph import TemporalCausalGraph

DEFAULT_LENGTH = 1000


def _build_structure(edges, n_series: int, max_delay: int, include_self_loops: bool,
                     rng: np.random.Generator) -> TemporalCausalGraph:
    graph = TemporalCausalGraph(n_series)
    for source, target in edges:
        graph.add_edge(source, target, int(rng.integers(1, max_delay + 1)))
    if include_self_loops:
        for series in range(n_series):
            graph.add_edge(series, series, 1)
    return graph


def diamond_graph(max_delay: int = 3, include_self_loops: bool = True,
                  rng: Optional[np.random.Generator] = None) -> TemporalCausalGraph:
    """Diamond structure: S0→S1, S0→S2, S1→S3, S2→S3."""
    rng = rng or np.random.default_rng()
    return _build_structure([(0, 1), (0, 2), (1, 3), (2, 3)], 4, max_delay,
                            include_self_loops, rng)


def mediator_graph(max_delay: int = 3, include_self_loops: bool = True,
                   rng: Optional[np.random.Generator] = None) -> TemporalCausalGraph:
    """Mediator structure: S0→S1, S1→S2, S0→S2."""
    rng = rng or np.random.default_rng()
    return _build_structure([(0, 1), (1, 2), (0, 2)], 3, max_delay,
                            include_self_loops, rng)


def v_structure_graph(max_delay: int = 3, include_self_loops: bool = True,
                      rng: Optional[np.random.Generator] = None) -> TemporalCausalGraph:
    """V-structure (collider): S0→S2, S1→S2."""
    rng = rng or np.random.default_rng()
    return _build_structure([(0, 2), (1, 2)], 3, max_delay, include_self_loops, rng)


def fork_graph(max_delay: int = 3, include_self_loops: bool = True,
               rng: Optional[np.random.Generator] = None) -> TemporalCausalGraph:
    """Fork (common cause): S0→S1, S0→S2."""
    rng = rng or np.random.default_rng()
    return _build_structure([(0, 1), (0, 2)], 3, max_delay, include_self_loops, rng)


_STRUCTURE_BUILDERS: Dict[str, Callable[..., TemporalCausalGraph]] = {
    "diamond": diamond_graph,
    "mediator": mediator_graph,
    "v_structure": v_structure_graph,
    "fork": fork_graph,
}

SYNTHETIC_STRUCTURES = tuple(_STRUCTURE_BUILDERS)


def synthetic_dataset(structure: str, length: int = DEFAULT_LENGTH,
                      nonlinearity: str = "tanh", noise_std: float = 1.0,
                      max_delay: int = 3, include_self_loops: bool = True,
                      seed: Optional[int] = None) -> TimeSeriesDataset:
    """Generate one of the paper's synthetic datasets.

    Parameters
    ----------
    structure:
        One of ``"diamond"``, ``"mediator"``, ``"v_structure"``, ``"fork"``.
    length:
        Number of time steps (paper: 1,000).
    nonlinearity:
        Link function of the structural process; the paper uses additive
        noise over basic structures, we default to a mild ``tanh``
        non-linearity so discovery is non-trivial (``"linear"`` is available).
    seed:
        Seed controlling the graph delays, coefficients and noise.
    """
    if structure not in _STRUCTURE_BUILDERS:
        raise ValueError(
            f"unknown structure {structure!r}; choose from {sorted(_STRUCTURE_BUILDERS)}"
        )
    rng = np.random.default_rng(seed)
    graph = _STRUCTURE_BUILDERS[structure](max_delay=max_delay,
                                           include_self_loops=include_self_loops, rng=rng)
    spec = VarProcessSpec(graph=graph, length=length, noise_std=noise_std,
                          nonlinearity=nonlinearity)
    values = simulate_var(spec, rng=rng)
    return TimeSeriesDataset(
        values=values,
        name=structure,
        graph=graph,
        metadata={
            "structure": structure,
            "length": length,
            "nonlinearity": nonlinearity,
            "noise_std": noise_std,
            "max_delay": max_delay,
            "include_self_loops": include_self_loops,
            "seed": seed,
            "generator": "synthetic",
        },
    )


def diamond_dataset(seed: Optional[int] = None, **kwargs) -> TimeSeriesDataset:
    """Diamond dataset (4 series, paper Fig. 1 / Fig. 7)."""
    return synthetic_dataset("diamond", seed=seed, **kwargs)


def mediator_dataset(seed: Optional[int] = None, **kwargs) -> TimeSeriesDataset:
    """Mediator dataset (3 series)."""
    return synthetic_dataset("mediator", seed=seed, **kwargs)


def v_structure_dataset(seed: Optional[int] = None, **kwargs) -> TimeSeriesDataset:
    """V-structure / collider dataset (3 series)."""
    return synthetic_dataset("v_structure", seed=seed, **kwargs)


def fork_dataset(seed: Optional[int] = None, **kwargs) -> TimeSeriesDataset:
    """Fork / common-cause dataset (3 series)."""
    return synthetic_dataset("fork", seed=seed, **kwargs)
