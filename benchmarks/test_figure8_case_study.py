"""Benchmark E5 — regenerate Fig. 8 (case study on one fMRI network).

The paper's figure reports per-method F1 on the fMRI-15 network: cMLP 0.67,
TCDF 0.76, DVGNN 0.52, CUTS 0.77, CausalFormer 0.86, with CausalFormer making
the fewest edge mistakes.  Shape preserved here: CausalFormer is the (or tied
for the) best method on the case-study network and its recovered graph shares
a majority of true edges.
"""

import pytest

from repro.experiments import run_figure8

from benchmarks.conftest import save_result


def test_figure8_case_study(run_once):
    report = run_once(run_figure8, seed=1, fast=True, n_nodes=5, length=260)
    print("\n" + report.render())
    save_result("figure8_case_study", {
        "truth_edges": report.truth_edges,
        "entries": {name: {"f1": entry.f1,
                           "precision": entry.precision,
                           "recall": entry.recall,
                           "tp": entry.true_positive,
                           "fp": entry.false_positive,
                           "fn": entry.false_negative}
                    for name, entry in report.entries.items()},
    })

    assert set(report.entries) == {"cmlp", "tcdf", "dvgnn", "cuts", "causalformer"}
    causalformer = report.entries["causalformer"]
    # CausalFormer recovers a substantial part of the network...
    assert causalformer.f1 >= 0.4
    # ...and is competitive with the best method on this network (the paper
    # has it strictly best; allow slack for the simulated substrate).
    best = max(entry.f1 for entry in report.entries.values())
    assert causalformer.f1 >= best - 0.25
    # Edge classification is internally consistent for every method.
    for entry in report.entries.values():
        assert len(entry.true_positive) + len(entry.false_negative) == len(report.truth_edges)
