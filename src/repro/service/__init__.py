"""Discovery-job subsystem: schedulable jobs, parallel execution, caching.

This package turns causal discovery into a job-oriented service layer:

* :mod:`repro.service.jobs` — :class:`DiscoveryJob` / :class:`JobResult`
  specs with deterministic serialization and content fingerprints;
* :mod:`repro.service.registry` — name → factory registries that make jobs
  picklable and CLI-addressable;
* :mod:`repro.service.executor` — :class:`JobExecutor`, a process-pool
  fan-out with per-job error capture;
* :mod:`repro.service.cache` — :class:`ResultCache`, an on-disk cache keyed
  by SHA-256 of (job spec + data fingerprint);
* :mod:`repro.service.artifacts` — :class:`ArtifactStore` run directories
  for graphs, scores and manifests;
* :mod:`repro.service.cli` — the ``python -m repro`` command line.

The experiment harness (:mod:`repro.experiments`) dispatches its sweeps
through this layer, so every table/figure runner gains ``max_workers`` and
``cache`` for free.
"""

from repro.service.artifacts import ArtifactStore, RunArtifacts
from repro.service.cache import CacheStats, ResultCache, default_cache_dir
from repro.service.executor import JobExecutor, execute_job
from repro.service.jobs import (
    DiscoveryJob,
    JobResult,
    canonical_json,
    fingerprint_array,
    fingerprint_dataset,
)
from repro.service.registry import (
    build_dataset,
    build_method,
    dataset_names,
    method_names,
    register_dataset,
    register_method,
)

__all__ = [
    "ArtifactStore",
    "RunArtifacts",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "JobExecutor",
    "execute_job",
    "DiscoveryJob",
    "JobResult",
    "canonical_json",
    "fingerprint_array",
    "fingerprint_dataset",
    "build_dataset",
    "build_method",
    "dataset_names",
    "method_names",
    "register_dataset",
    "register_method",
]
