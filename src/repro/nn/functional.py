"""Point-wise functions, activations and losses used by the models.

Every function here accepts and returns :class:`repro.nn.tensor.Tensor`
objects and is differentiable through the autograd engine.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn import tensor as T
from repro.nn.tensor import Tensor


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit ``max(x, 0)``."""
    return T.maximum(x, T.Tensor(np.zeros_like(x.data)))


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight + bias`` as one fused autograd node.

    ``weight`` must be 2-D ``(in, out)``; ``x`` may have any number of
    leading dimensions; ``bias`` broadcasts over them.  Fusing the matmul
    and the bias addition halves the graph nodes per linear layer, and the
    backward pass computes the weight gradient with a single tensordot.
    """
    x = x if isinstance(x, Tensor) else Tensor(x)
    out_data = x.data @ weight.data
    if bias is not None:
        out_data += bias.data
    parents = (x, weight) if bias is None else (x, weight, bias)
    out = T._make_op(out_data, parents)
    if out.requires_grad:
        x_data, w_data = x.data, weight.data

        def backward(grad, route):
            if x.requires_grad:
                route(x, grad @ w_data.T)
            grad_2d = grad.reshape(-1, grad.shape[-1])
            if weight.requires_grad:
                route(weight, x_data.reshape(-1, x_data.shape[-1]).T @ grad_2d)
            if bias is not None and bias.requires_grad:
                route(bias, grad_2d.sum(axis=0))

        out._backward = backward
    return out


# ---------------------------------------------------------------------- #
# Causal-convolution primitives (the training hot path)
# ---------------------------------------------------------------------- #
import threading as _threading

_pad_buffers = _threading.local()

_backward_arenas = _threading.local()


def _backward_arena():
    """Per-thread scratch arena for backward-pass temporaries.

    The fused training nodes' backward closures allocate several large
    temporaries (contiguous transposes, products, GEMM outputs) every
    training step; steady-state steps reuse these buffers instead.  Only
    arrays that never escape the closure — or that are routed to *leaf*
    tensors, which :meth:`Tensor._accumulate` copies or adds out of
    immediately — may live in the arena; gradients routed to interior graph
    nodes are referenced until a later closure consumes them and keep fresh
    allocations.
    """
    from repro.nn.inference import ScratchArena

    arena = getattr(_backward_arenas, "arena", None)
    if arena is None:
        arena = _backward_arenas.arena = ScratchArena()
    return arena


def _causal_window_view(data: np.ndarray, window: int, reuse_buffer: bool = False):
    """Left-zero-pad ``data`` and return its causal windows as a strided view.

    Returns ``(padded, view)`` where ``view[..., t, τ] = padded[..., t+1+τ]``
    — the ``window``-slot history whose last element is the observation at
    slot ``t``.  The view shares memory with ``padded``; no ``(…, T, T)``
    copy is ever materialised.  ``reuse_buffer=True`` recycles a per-thread
    pad buffer keyed by shape — only safe when the caller copies everything
    it needs out of the view before the next call (as the fused
    :func:`causal_conv` does).
    """
    if reuse_buffer:
        key = (data.shape, data.dtype.str, window)
        cache = getattr(_pad_buffers, "buffers", None)
        if cache is None:
            cache = _pad_buffers.buffers = {}
        padded = cache.get(key)
        if padded is None:
            if len(cache) > 16:
                cache.clear()
            padded = cache[key] = np.zeros(
                data.shape[:-1] + (data.shape[-1] + window,), dtype=data.dtype)
        padded[..., window:] = data
    else:
        padded = np.concatenate(
            [np.zeros(data.shape[:-1] + (window,), dtype=data.dtype), data],
            axis=-1)
    view = np.lib.stride_tricks.sliding_window_view(padded, window, axis=-1)
    return padded, view[..., 1:, :]


def _scatter_window_grad(grad_windows: np.ndarray, window: int,
                         padded_shape, dtype, arena=None) -> np.ndarray:
    """Backward of the causal window view: scatter-add onto the padded axis.

    ``grad_windows[..., t, τ]`` contributes to ``padded[..., t+1+τ]``; the
    window axis is moved to be contiguous first so each of the ``window``
    vectorized adds streams over contiguous memory.  ``arena`` (a scratch
    arena) hosts the internal contiguous transpose; the returned array is
    always freshly allocated — it is routed into the graph.
    """
    length = grad_windows.shape[-2]
    swapped = np.swapaxes(grad_windows, -1, -2)
    if arena is None:
        by_offset = np.ascontiguousarray(swapped)
    else:
        by_offset = arena.take("scatter.by_offset", swapped.shape,
                               grad_windows.dtype)
        np.copyto(by_offset, swapped)
    grad_padded = np.zeros(padded_shape, dtype=dtype)
    for tau in range(window):
        grad_padded[..., 1 + tau:1 + tau + length] += by_offset[..., tau, :]
    return grad_padded[..., window:]


def sliding_window(x: Tensor, window: int) -> Tensor:
    """Differentiable causal windows: ``out[..., t, τ] = padded[..., t+1+τ]``.

    ``padded`` is ``x`` left-padded with ``window`` zeros along the last
    axis, so ``out[..., t, :]`` is the history visible at slot ``t`` under
    the paper's temporal-priority constraint (Eq. 3).  The forward pass is a
    stride-trick view — replacing the ``T``-iteration slice-and-stack loop
    this engine used previously.
    """
    x = x if isinstance(x, Tensor) else Tensor(x)
    if window < 1:
        raise ValueError("window must be at least 1")
    padded, view = _causal_window_view(x.data, window)
    out = T._make_op(view, (x,))
    if out.requires_grad:
        padded_shape = padded.shape
        dtype = x.data.dtype

        def backward(grad, route):
            route(x, _scatter_window_grad(grad, window, padded_shape, dtype))

        out._backward = backward
    return out


def causal_conv(x: Tensor, kernel: Tensor, scale: np.ndarray,
                right_shift: bool = False) -> Tensor:
    """Fused pad → window → contraction causal convolution (paper Eq. 3).

    ``out[b, i, j, t] = scale[t] · Σ_τ kernel[i, j, τ] · W[b, i, t, τ]``
    where ``W`` is the causal window view of ``x``.  The contraction runs as
    one batched GEMM per source series over the strided view, so neither
    pass builds per-slot autograd nodes or materialises a ``(B, N, T, T)``
    autograd intermediate.  ``right_shift=True`` additionally applies the
    paper's Eq. 4 diagonal right-shift inside the same node (see
    :func:`diagonal_right_shift` for the standalone primitive).
    """
    x = x if isinstance(x, Tensor) else Tensor(x)
    kernel = kernel if isinstance(kernel, Tensor) else Tensor(kernel)
    window = kernel.shape[-1]
    if x.shape[-1] != window:
        raise ValueError(
            f"kernel window {window} does not match input window {x.shape[-1]}")
    padded, windows = _causal_window_view(x.data, window, reuse_buffer=True)
    kernel_data = kernel.data
    batch, n_series, length = x.shape
    diag = np.arange(n_series)
    windows_flat = np.ascontiguousarray(windows.transpose(1, 0, 2, 3)) \
        .reshape(n_series, batch * length, window)
    raw = windows_flat @ kernel_data.transpose(0, 2, 1)   # (N, B·T, N)
    out_data = raw.reshape(n_series, batch, length, kernel_data.shape[1]) \
        .transpose(1, 0, 3, 2) * scale
    if right_shift:
        diagonal = out_data[:, diag, diag, :]
        out_data[:, diag, diag, 1:] = diagonal[:, :, :-1]
        out_data[:, diag, diag, 0] = 0.0
    out = T._make_op(out_data, (x, kernel))
    if out.requires_grad:
        padded_shape = padded.shape
        dtype = x.data.dtype

        k_out = kernel_data.shape[1]

        def backward(grad, route):
            arena = _backward_arena()
            if right_shift:
                # Undo the shift: the gradient of the diagonal entry at slot
                # t+1 flows to the pre-shift entry at slot t.
                shifted = arena.take("conv.bwd.grad", grad.shape, grad.dtype)
                np.copyto(shifted, grad)
                diagonal = shifted[:, diag, diag, :]
                shifted[:, diag, diag, :-1] = diagonal[:, :, 1:]
                shifted[:, diag, diag, -1] = 0.0
                grad = shifted
            grad_scaled = arena.take("conv.bwd.scaled", grad.shape, grad.dtype)
            np.multiply(grad, scale, out=grad_scaled)     # (B, i, j, t)
            if kernel.requires_grad:
                flat = arena.take("conv.bwd.flat_k",
                                  (n_series, k_out, batch * length), grad.dtype)
                np.copyto(flat.reshape(n_series, k_out, batch, length),
                          grad_scaled.transpose(1, 2, 0, 3))
                if kernel.is_leaf:
                    kernel_grad = arena.take("conv.bwd.kgrad",
                                             (n_series, k_out, window),
                                             grad.dtype)
                    np.matmul(flat, windows_flat, out=kernel_grad)
                    route(kernel, kernel_grad)            # (N, N, K)
                else:
                    route(kernel, flat @ windows_flat)
            if x.requires_grad:
                flat = arena.take("conv.bwd.flat_x",
                                  (n_series, batch * length, k_out), grad.dtype)
                np.copyto(flat.reshape(n_series, batch, length, k_out),
                          grad_scaled.transpose(1, 0, 3, 2))
                grad_windows = arena.take("conv.bwd.gwin",
                                          (n_series, batch * length, window),
                                          grad.dtype)
                np.matmul(flat, kernel_data, out=grad_windows)
                grad_windows = grad_windows \
                    .reshape(n_series, batch, length, window).transpose(1, 0, 2, 3)
                route(x, _scatter_window_grad(grad_windows, window,
                                              padded_shape, dtype,
                                              arena=arena))

        out._backward = backward
    return out


def stacked_qk_projection(embedding: Tensor, weights: List[Tensor],
                          biases: List[Tensor]) -> Tensor:
    """Project an embedding through ``L`` affine heads in one GEMM.

    Returns ``(L, B, N, q)`` where slice ``l`` is
    ``embedding @ weights[l] + biases[l]``.  The attention block passes the
    ``2h`` query and key projections of every head as one list, so all
    heads' Q *and* K come out of a single matrix multiply and a single
    autograd node (instead of ~12 stack/reshape/matmul nodes).
    """
    batch, n, d_model = embedding.shape
    count = len(weights)
    d_out = weights[0].shape[-1]
    weight_flat = np.concatenate([w.data for w in weights], axis=1)   # (d, L·q)
    bias_flat = np.concatenate([b.data for b in biases])              # (L·q,)
    x2d = embedding.data.reshape(batch * n, d_model)
    projected = x2d @ weight_flat
    projected += bias_flat
    out_data = np.ascontiguousarray(
        projected.reshape(batch, n, count, d_out).transpose(2, 0, 1, 3))
    out = T._make_op(out_data, (embedding, *weights, *biases))
    if out.requires_grad:
        def backward(grad, route):
            grad_2d = np.ascontiguousarray(grad.transpose(1, 2, 0, 3)) \
                .reshape(batch * n, count * d_out)
            if embedding.requires_grad:
                route(embedding, (grad_2d @ weight_flat.T)
                      .reshape(batch, n, d_model))
            grad_weight = x2d.T @ grad_2d                             # (d, L·q)
            grad_bias = grad_2d.sum(axis=0)
            for index in range(count):
                columns = slice(index * d_out, (index + 1) * d_out)
                if weights[index].requires_grad:
                    route(weights[index], grad_weight[:, columns])
                if biases[index].requires_grad:
                    route(biases[index], grad_bias[columns])

        out._backward = backward
    return out


def masked_attention_scores(query: Tensor, key: Tensor, masks: List[Tensor],
                            scale: float) -> Tensor:
    """Tempered, mask-modulated attention scores for all heads (paper Eq. 5).

    ``out[h] = (query[h] @ key[h]ᵀ) · scale ⊙ masks[h]`` with ``query``/
    ``key`` of shape ``(h, B, N, q)`` — one batched GEMM plus one
    multiplication, with the per-head learnable masks routed directly in the
    backward pass.
    """
    q_data, k_data = query.data, key.data
    mask_stack = np.stack([m.data for m in masks])[:, None, :, :]     # (h, 1, N, N)
    raw = q_data @ k_data.transpose(0, 1, 3, 2)                       # (h, B, N, N)
    modulation = mask_stack * scale
    out_data = raw * modulation
    out = T._make_op(out_data, (query, key, *masks))
    if out.requires_grad:
        def backward(grad, route):
            grad_raw = grad * modulation
            if query.requires_grad:
                route(query, grad_raw @ k_data)
            if key.requires_grad:
                route(key, grad_raw.transpose(0, 1, 3, 2) @ q_data)
            grad_masks = (grad * raw).sum(axis=1) * scale             # (h, N, N)
            for index, mask in enumerate(masks):
                if mask.requires_grad:
                    route(mask, grad_masks[index])

        out._backward = backward
    return out


def causal_attention_probs(inputs: Tensor, w_query: List[Tensor],
                           b_query: List[Tensor], w_key: List[Tensor],
                           b_key: List[Tensor], masks: List[Tensor],
                           scale: float,
                           embed_weight: Optional[Tensor] = None,
                           embed_bias: Optional[Tensor] = None) -> Tensor:
    """Embedding → all-head Q/K projection → masked tempered softmax (Eq. 5).

    The entire attention-probability computation for every head runs as one
    autograd node: one GEMM projects all queries and keys, one batched GEMM
    forms the scores, and the softmax Jacobian is applied in the hand-written
    backward before routing into the per-head parameters.  When
    ``embed_weight``/``embed_bias`` are given, ``inputs`` is the raw window
    batch and the time-series embedding (Eq. 2) is computed inside the same
    node — one more fused GEMM on the training path.
    """
    n_heads = len(w_query)
    batch, n = inputs.shape[0], inputs.shape[1]
    d_qk = w_query[0].shape[-1]
    weights = w_query + w_key
    biases = b_query + b_key
    weight_flat = np.concatenate([w.data for w in weights], axis=1)   # (d, 2h·q)
    bias_flat = np.concatenate([b.data for b in biases])
    x2d = inputs.data.reshape(batch * n, inputs.shape[-1])
    if embed_weight is not None:
        emb2d = x2d @ embed_weight.data
        emb2d += embed_bias.data
    else:
        emb2d = x2d
    projected = emb2d @ weight_flat
    projected += bias_flat
    qk = np.ascontiguousarray(
        projected.reshape(batch, n, 2 * n_heads, d_qk).transpose(2, 0, 1, 3))
    q_data, k_data = qk[:n_heads], qk[n_heads:]
    mask_stack = np.stack([m.data for m in masks])[:, None, :, :]     # (h, 1, N, N)
    raw = q_data @ k_data.transpose(0, 1, 3, 2)                       # (h, B, N, N)
    modulation = mask_stack * scale
    probabilities = raw * modulation
    probabilities -= probabilities.max(axis=-1, keepdims=True)
    np.exp(probabilities, out=probabilities)
    probabilities /= probabilities.sum(axis=-1, keepdims=True)
    parents = [inputs, *weights, *biases, *masks]
    if embed_weight is not None:
        parents += [embed_weight, embed_bias]
    out = T._make_op(probabilities, tuple(parents))
    if out.requires_grad:
        params_leaf = all(parameter.is_leaf for parameter in weights) \
            and all(parameter.is_leaf for parameter in biases)

        def backward(grad, route):
            arena = _backward_arena()
            product = arena.take("attn.bwd.prod", probabilities.shape,
                                 probabilities.dtype)
            np.multiply(grad, probabilities, out=product)
            dot = product.sum(axis=-1, keepdims=True)
            grad_masked = arena.take("attn.bwd.masked", probabilities.shape,
                                     probabilities.dtype)
            np.subtract(grad, dot, out=grad_masked)
            np.multiply(probabilities, grad_masked, out=grad_masked)
            grad_raw = arena.take("attn.bwd.raw", probabilities.shape,
                                  probabilities.dtype)
            np.multiply(grad_masked, modulation, out=grad_raw)
            grad_qk = arena.take("attn.bwd.qk", qk.shape, qk.dtype)
            np.matmul(grad_raw, k_data, out=grad_qk[:n_heads])
            np.matmul(grad_raw.transpose(0, 1, 3, 2), q_data, out=grad_qk[n_heads:])
            grad_2d = arena.take("attn.bwd.2d",
                                 (batch * n, 2 * n_heads * d_qk), qk.dtype)
            np.copyto(grad_2d.reshape(batch, n, 2 * n_heads, d_qk),
                      grad_qk.transpose(1, 2, 0, 3))
            need_emb_grad = (embed_weight is not None
                             and (embed_weight.requires_grad
                                  or embed_bias.requires_grad
                                  or inputs.requires_grad))
            if inputs.requires_grad or need_emb_grad:
                grad_emb = grad_2d @ weight_flat.T                    # (B·N, d)
                if embed_weight is None:
                    if inputs.requires_grad:
                        route(inputs, grad_emb.reshape(inputs.data.shape))
                else:
                    if embed_weight.requires_grad:
                        route(embed_weight, x2d.T @ grad_emb)
                    if embed_bias.requires_grad:
                        route(embed_bias, grad_emb.sum(axis=0))
                    if inputs.requires_grad:
                        route(inputs, (grad_emb @ embed_weight.data.T)
                              .reshape(inputs.data.shape))
            if params_leaf:
                # Routed slices land on leaf parameters, which copy/add out
                # of the arena buffer immediately.
                grad_weight = arena.take("attn.bwd.gw", weight_flat.shape,
                                         qk.dtype)
                np.matmul(emb2d.T, grad_2d, out=grad_weight)
            else:
                grad_weight = emb2d.T @ grad_2d
            grad_bias = grad_2d.sum(axis=0)
            for index, (weight, bias) in enumerate(zip(weights, biases)):
                columns = slice(index * d_qk, (index + 1) * d_qk)
                if weight.requires_grad:
                    route(weight, grad_weight[:, columns])
                if bias.requires_grad:
                    route(bias, grad_bias[columns])
            np.multiply(grad_masked, raw, out=product)
            grad_masks = product.sum(axis=1) * scale                  # (h, N, N)
            for index, mask in enumerate(masks):
                if mask.requires_grad:
                    route(mask, grad_masks[index])

        out._backward = backward
    return out


def attention_combine(attention: Tensor, values: Tensor,
                      w_output: Tensor) -> Tensor:
    """Fused attention application + head combination (Eq. 6–7).

    ``out[b, i, t] = Σ_h w_output[h] · Σ_j attention[h,b,i,j] · values[b,j,i,t]``
    in one node: the batched GEMM of :func:`causal_attention_apply` followed
    by the head-weighted sum, keeping the per-head outputs only as a local
    for the ``w_output`` gradient.
    """
    a_data, v_data, w_data = attention.data, values.data, w_output.data
    a_bihj = np.ascontiguousarray(a_data.transpose(1, 2, 0, 3))       # (B, i, h, j)
    v_bijt = np.ascontiguousarray(v_data.transpose(0, 2, 1, 3))       # (B, i, j, t)
    head_outputs = a_bihj @ v_bijt                                    # (B, i, h, t)
    out_data = np.tensordot(head_outputs, w_data, axes=([2], [0]))    # (B, i, t)
    out = T._make_op(out_data, (attention, values, w_output))
    if out.requires_grad:
        def backward(grad, route):
            arena = _backward_arena()
            # grad (B, i, t): expand back over heads first.
            grad_heads = arena.take("comb.bwd.heads", head_outputs.shape,
                                    np.result_type(grad, w_data))
            np.multiply(grad[:, :, None, :], w_data[None, None, :, None],
                        out=grad_heads)
            if attention.requires_grad:
                grad_a = grad_heads @ v_bijt.transpose(0, 1, 3, 2)    # (B, i, h, j)
                route(attention, grad_a.transpose(2, 0, 1, 3))
            if values.requires_grad:
                grad_v = a_bihj.transpose(0, 1, 3, 2) @ grad_heads    # (B, i, j, t)
                route(values, grad_v.transpose(0, 2, 1, 3))
            if w_output.requires_grad:
                route(w_output,
                      np.tensordot(head_outputs, grad, axes=([0, 1, 3], [0, 1, 2])))

        out._backward = backward
    return out


def mlp_chain(x: Tensor, w1: Tensor, b1: Tensor, w2: Tensor, b2: Tensor,
              w3: Tensor, b3: Tensor, negative_slope: float) -> Tensor:
    """Fused ``linear → leakyReLU → linear → linear`` tail of the model.

    This is the feed-forward layer (Eq. 8) followed by the output layer in
    one autograd node — a hand-derived MLP backward instead of seven graph
    nodes on the training hot path.  The cache-collecting path of the
    transformer still uses the individual ops (it needs the intermediates).
    """
    x2d = x.data.reshape(-1, x.data.shape[-1])
    hidden = x2d @ w1.data
    hidden += b1.data
    slope = np.where(hidden > 0, hidden.dtype.type(1.0),
                     hidden.dtype.type(negative_slope))
    hidden *= slope                                                   # activated
    ffn = hidden @ w2.data
    ffn += b2.data
    out2d = ffn @ w3.data
    out2d += b3.data
    out = T._make_op(out2d.reshape(x.data.shape[:-1] + (w3.data.shape[-1],)),
                     (x, w1, b1, w2, b2, w3, b3))
    if out.requires_grad:
        def backward(grad, route):
            arena = _backward_arena()
            grad2d = grad.reshape(-1, grad.shape[-1])
            if w3.requires_grad:
                route(w3, ffn.T @ grad2d)
            if b3.requires_grad:
                route(b3, grad2d.sum(axis=0))
            grad_ffn = arena.take("mlp.bwd.ffn", ffn.shape, grad.dtype)
            np.matmul(grad2d, w3.data.T, out=grad_ffn)
            if w2.requires_grad:
                route(w2, hidden.T @ grad_ffn)
            if b2.requires_grad:
                route(b2, grad_ffn.sum(axis=0))
            grad_hidden = arena.take("mlp.bwd.hidden", hidden.shape, grad.dtype)
            np.matmul(grad_ffn, w2.data.T, out=grad_hidden)
            grad_hidden *= slope
            if w1.requires_grad:
                route(w1, x2d.T @ grad_hidden)
            if b1.requires_grad:
                route(b1, grad_hidden.sum(axis=0))
            if x.requires_grad:
                route(x, (grad_hidden @ w1.data.T).reshape(x.data.shape))

        out._backward = backward
    return out


def prediction_loss_with_l1(prediction: Tensor, target: Tensor,
                            pairs: List[Tuple[float, Tensor]],
                            start_slot: int = 1) -> Tensor:
    """The paper's full training loss (Eq. 9) as one fused autograd node.

    ``MSE(prediction[..., start_slot:], target[..., start_slot:]) +
    Σ_i λ_i·‖W_i‖₁`` — evaluated every training step, so the windowed MSE,
    the penalty sum and their gradients all run inside a single node.
    """
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction.data[..., start_slot:] - target.data[..., start_slot:]
    value = np.dot(diff.ravel(), diff.ravel()) / diff.size
    # Group equal-coefficient penalties (e.g. the per-head masks) so each
    # group costs one abs/sum pass instead of one per tensor.
    groups: dict = {}
    for coefficient, tensor in pairs:
        groups.setdefault(coefficient, []).append(tensor.data.ravel())
    for coefficient, arrays in groups.items():
        flat = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
        value += coefficient * float(np.abs(flat).sum())
    out = T._make_op(np.asarray(value, dtype=diff.dtype),
                     (prediction, target, *(tensor for _c, tensor in pairs)))
    if out.requires_grad:
        scale = 2.0 / diff.size

        def backward(grad, route):
            g = (scale * grad) * diff
            if prediction.requires_grad:
                full = np.zeros_like(prediction.data)
                full[..., start_slot:] = g
                route(prediction, full)
            if target.requires_grad:
                full = np.zeros_like(target.data)
                full[..., start_slot:] = g
                np.negative(full, out=full)
                route(target, full)
            for coefficient, tensor in pairs:
                if tensor.requires_grad:
                    route(tensor, (coefficient * grad) * np.sign(tensor.data))

        out._backward = backward
    return out


def causal_attention_apply(attention: Tensor, values: Tensor) -> Tensor:
    """Batched attention application for every head at once (paper Eq. 6).

    ``out[h, b, i, t] = Σ_j attention[h, b, i, j] · values[b, j, i, t]`` —
    the contraction aggregates, for target ``i``, the convolution of source
    ``j`` computed *for* ``i``.  Forward and backward each run as one
    batched GEMM over the ``(b, i)`` axes instead of an einsum dispatch.
    """
    a_data = attention.data                                # (h, B, N, N)
    v_data = values.data                                   # (B, N, N, T)
    a_bihj = np.ascontiguousarray(a_data.transpose(1, 2, 0, 3))   # (B, i, h, j)
    v_bijt = np.ascontiguousarray(v_data.transpose(0, 2, 1, 3))   # (B, i, j, t)
    out_data = np.ascontiguousarray((a_bihj @ v_bijt).transpose(2, 0, 1, 3))
    out = T._make_op(out_data, (attention, values))
    if out.requires_grad:
        def backward(grad, route):
            grad_biht = np.ascontiguousarray(grad.transpose(1, 2, 0, 3))
            if attention.requires_grad:
                grad_a = grad_biht @ v_bijt.transpose(0, 1, 3, 2)  # (B, i, h, j)
                route(attention, grad_a.transpose(2, 0, 1, 3))
            if values.requires_grad:
                grad_v = a_bihj.transpose(0, 1, 3, 2) @ grad_biht  # (B, i, j, t)
                route(values, grad_v.transpose(0, 2, 1, 3))

        out._backward = backward
    return out


def diagonal_right_shift(values: Tensor) -> Tensor:
    """Shift the self-convolution results one slot right (paper Eq. 4).

    ``values`` has shape ``(B, N, N, T)``; the diagonal entries
    ``values[:, i, i, :]`` are shifted right by one slot (slot 0 becomes 0)
    so a series' own current value never leaks into its own prediction.
    Off-diagonal entries pass through unchanged.
    """
    values = values if isinstance(values, Tensor) else Tensor(values)
    n_series = values.shape[1]
    diag = np.arange(n_series)
    out_data = values.data.copy()
    out_data[:, diag, diag, 1:] = values.data[:, diag, diag, :-1]
    out_data[:, diag, diag, 0] = 0.0
    out = T._make_op(out_data, (values,))
    if out.requires_grad:
        def backward(grad, route):
            grad_values = grad.copy()
            grad_values[:, diag, diag, :-1] = grad[:, diag, diag, 1:]
            grad_values[:, diag, diag, -1] = 0.0
            route(values, grad_values)

        out._backward = backward
    return out


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU, the activation the paper's feed-forward layer uses."""
    x = x if isinstance(x, Tensor) else Tensor(x)
    data = x.data
    slope = np.where(data > 0, data.dtype.type(1.0),
                     data.dtype.type(negative_slope))
    out = T._make_op(data * slope, (x,))
    if out.requires_grad:
        def backward(grad, route):
            route(x, grad * slope)

        out._backward = backward
    return out


def sigmoid(x: Tensor) -> Tensor:
    x = x if isinstance(x, Tensor) else Tensor(x)
    out_data = 1.0 / (1.0 + np.exp(-x.data))
    out = T._make_op(out_data, (x,))
    if out.requires_grad:
        def backward(grad, route):
            route(x, grad * out_data * (1.0 - out_data))
        out._backward = backward
    return out


def tanh(x: Tensor) -> Tensor:
    x = x if isinstance(x, Tensor) else Tensor(x)
    out_data = np.tanh(x.data)
    out = T._make_op(out_data, (x,))
    if out.requires_grad:
        def backward(grad, route):
            route(x, grad * (1.0 - out_data ** 2))
        out._backward = backward
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    x = x if isinstance(x, Tensor) else Tensor(x)
    out_data = x.data - x.data.max(axis=axis, keepdims=True)
    np.exp(out_data, out=out_data)
    out_data /= out_data.sum(axis=axis, keepdims=True)
    out = T._make_op(out_data, (x,))
    if out.requires_grad:
        def backward(grad, route):
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            route(x, out_data * (grad - dot))
        out._backward = backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return T.log(softmax(x, axis=axis) + 1e-12)


def dropout(x: Tensor, p: float = 0.5, training: bool = True,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when ``training`` is false or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


def mse_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error between prediction and target.

    The ``mean``/``sum`` reductions are fused into a single autograd node
    (gradient ``±2·diff·(scale)``) — the training loss is evaluated every
    step, so it should not cost three graph nodes and two full-size
    temporaries.
    """
    target = target if isinstance(target, Tensor) else Tensor(target)
    if reduction == "none":
        diff = prediction - target
        return diff * diff
    if reduction not in ("mean", "sum"):
        raise ValueError(f"unknown reduction {reduction!r}")
    diff = prediction.data - target.data
    value = np.dot(diff.ravel(), diff.ravel())
    if reduction == "mean":
        value = value / diff.size
    out = T._make_op(np.asarray(value, dtype=diff.dtype), (prediction, target))
    if out.requires_grad:
        scale = 2.0 / diff.size if reduction == "mean" else 2.0

        def backward(grad, route):
            g = (scale * grad) * diff
            route(prediction, g)
            if target.requires_grad:
                route(target, -g)

        out._backward = backward
    return out


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (prediction - target).abs().mean()


def l1_norm(x: Tensor) -> Tensor:
    """Sum of absolute values — the paper's sparsity penalty (Eq. 9)."""
    return x.abs().sum()


def l2_norm(x: Tensor) -> Tensor:
    """Euclidean norm (square root of the sum of squares)."""
    return ((x * x).sum() + 1e-12) ** 0.5


def group_lasso(weight: Tensor, axis: int = 0) -> Tensor:
    """Group-lasso penalty: sum over groups of the L2 norms along ``axis``.

    Used by the cMLP / cLSTM neural-Granger baselines to push whole input
    groups (one group per candidate cause series) to zero.
    """
    squared = (weight * weight).sum(axis=axis)
    return ((squared + 1e-12) ** 0.5).sum()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss, provided for robustness experiments."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = 0.5 * diff * diff
    linear = delta * abs_diff - 0.5 * delta * delta
    mask = abs_diff.data <= delta
    return T.where(mask, quadratic, linear).mean()
