"""Command-line interface: ``python -m repro``.

Subcommands
-----------
``discover``
    Run one method on one dataset and print the recovered graph and scores.
``sweep``
    Run a methods × datasets × seeds sweep through the parallel executor and
    print the aggregated result table.
``cache``
    Inspect (``info``) or empty (``clear``) the on-disk result cache.
``list``
    Show the registered method and dataset names.
``bench``
    Run the perf microbenchmarks (tensor ops, convolution, attention, one
    training epoch, a small end-to-end fit, inference, detector
    interpretation, batched sweep) and append the next numbered
    ``BENCH_nn.json`` (``BENCH_01.json``, ``BENCH_02.json``, …) with
    speedups against the committed pre-optimization baseline.
``report``
    Render a JSONL telemetry trace (span tree, per-epoch training losses,
    cache hit/miss counts, metrics) written by ``--telemetry jsonl:PATH``.

Every run-producing subcommand shares the executor flags ``--workers``,
``--cache-dir`` / ``--no-cache``, ``--run-dir`` (artifact persistence) and
the telemetry flags ``--telemetry off|stderr|jsonl:PATH`` /
``--profile-engines`` (per-op engine wall-time histograms).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.service.artifacts import ArtifactStore
from repro.service.cache import ResultCache, default_cache_dir
from repro.service.executor import JobExecutor
from repro.service.jobs import DiscoveryJob, fingerprint_dataset
from repro.service.registry import build_dataset, dataset_names, method_names


def _parse_config(entries: Optional[Sequence[str]]) -> Dict[str, Any]:
    """Parse repeated ``key=value`` flags; values are JSON when possible."""
    config: Dict[str, Any] = {}
    for entry in entries or ():
        if "=" not in entry:
            raise SystemExit(f"--config expects key=value, got {entry!r}")
        key, _sep, raw = entry.partition("=")
        try:
            config[key] = json.loads(raw)
        except json.JSONDecodeError:
            config[key] = raw
    return config


def _split_csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _make_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir)


def _parse_lengths(raw) -> List[int]:
    """Sweep ``--length``: one series length, or a comma list cycled across
    seeds (mixed-shape sweeps exercise the shape-bucketed stacked path)."""
    if raw is None:
        return []
    try:
        return [int(item) for item in _split_csv(str(raw))]
    except ValueError:
        raise SystemExit(f"--length expects integers, got {raw!r}")


def _dataset_kwargs(args: argparse.Namespace) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {}
    if getattr(args, "length", None) is not None:
        kwargs["length"] = args.length
    return kwargs


def _build_dataset_checked(name: str, seed: int, **kwargs: Any):
    """Build a dataset, turning registry/signature errors into clean exits."""
    try:
        return build_dataset(name, seed=seed, **kwargs)
    except (KeyError, TypeError) as error:
        message = error.args[0] if error.args else str(error)
        raise SystemExit(f"error: {message}")


def _format_scores(result) -> str:
    if result.scores is None:
        return "no ground truth — scores unavailable"
    scores = result.scores
    text = f"precision={scores.precision:.3f} recall={scores.recall:.3f} f1={scores.f1:.3f}"
    if scores.precision_of_delay is not None:
        text += f" pod={scores.precision_of_delay:.3f}"
    return text


def _persist(args: argparse.Namespace, results, manifest_extra: Dict[str, Any]) -> Optional[str]:
    if getattr(args, "run_dir", None) is None:
        return None
    run = ArtifactStore(args.run_dir).create_run()
    for result in results:
        run.save_result(result)
        if result.graph is not None:
            run.save_graph(result.job.job_id, result.graph)
    run.write_manifest({
        "command": " ".join(sys.argv[1:]),
        "jobs": [result.job.to_dict() for result in results],
        "errors": sum(1 for result in results if not result.ok),
        **manifest_extra,
    })
    return run.path


# ---------------------------------------------------------------------- #
# Subcommand implementations
# ---------------------------------------------------------------------- #
def _cmd_discover(args: argparse.Namespace) -> int:
    dataset = _build_dataset_checked(args.dataset, args.seed, **_dataset_kwargs(args))
    job = DiscoveryJob(
        method=args.method,
        config=_parse_config(args.config),
        dataset=args.dataset,
        dataset_fingerprint=fingerprint_dataset(dataset),
        seed=args.seed,
        delay_tolerance=args.delay_tolerance,
    )
    executor = JobExecutor(max_workers=args.workers, cache=_make_cache(args),
                           **_executor_kwargs(args))
    result = executor.run_one(job, dataset)
    run_path = _persist(args, [result], {"subcommand": "discover"})

    if not result.ok:
        print(f"job {job.job_id} failed:\n{result.error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        origin = "cache" if result.cached else f"{result.duration:.2f}s"
        print(f"{job} [{origin}]")
        print(f"discovered {result.graph.n_edges} edges:")
        for edge in result.graph.edges:
            source = result.graph.names[edge.source]
            target = result.graph.names[edge.target]
            print(f"  {source} -> {target} (delay {edge.delay})")
        print(_format_scores(result))
    if run_path:
        print(f"artifacts: {run_path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import ResultTable

    methods = _split_csv(args.methods)
    datasets = _split_csv(args.datasets)
    seeds = [int(seed) for seed in _split_csv(args.seeds)]
    config = _parse_config(args.config)

    lengths = _parse_lengths(args.length)
    pairs = []
    for dataset_name in datasets:
        for position, seed in enumerate(seeds):
            kwargs: Dict[str, Any] = {}
            if lengths:
                kwargs["length"] = lengths[position % len(lengths)]
            dataset = _build_dataset_checked(dataset_name, seed, **kwargs)
            fingerprint = fingerprint_dataset(dataset)
            for method in methods:
                job = DiscoveryJob(
                    method=method,
                    config=config if method == args.config_method else {},
                    dataset=dataset_name,
                    dataset_fingerprint=fingerprint,
                    seed=seed,
                    delay_tolerance=args.delay_tolerance,
                )
                pairs.append((job, dataset))

    executor = JobExecutor(max_workers=args.workers, cache=_make_cache(args),
                           batch_jobs=args.batch_jobs,
                           bucket_slack=args.bucket_slack,
                           max_lanes=args.max_lanes,
                           **_executor_kwargs(args))
    results = executor.run(pairs)
    run_path = _persist(args, results, {"subcommand": "sweep", "metric": args.metric})

    table = ResultTable(f"sweep: {args.metric}", metric=args.metric)
    failures = 0
    for result in results:
        value = result.metric(args.metric)
        if not result.ok:
            failures += 1
            print(f"job {result.job.job_id} failed:\n{result.error}", file=sys.stderr)
        table.add(result.job.dataset, result.job.method, value)
    if args.json:
        print(table.to_json())
    else:
        print(table.render())
        cached = sum(1 for result in results if result.cached)
        print(f"\n{len(results)} jobs ({cached} from cache, {failures} failed)")
    if run_path:
        print(f"artifacts: {run_path}")
    return 1 if failures else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return 0
    stats = cache.stats()
    print(f"cache directory: {stats.directory}")
    print(f"entries: {stats.n_entries}")
    print(f"size: {stats.total_bytes} bytes")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("methods: " + ", ".join(method_names()))
    print("datasets: " + ", ".join(dataset_names()))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.telemetry.report import render_trace

    try:
        print(render_trace(args.trace))
    except OSError as error:
        print(f"error: cannot read trace {args.trace!r}: {error}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.service import bench

    if args.trajectory:
        # Summarize the committed BENCH_01..NN trajectory (per payload:
        # ms per report + speedup vs the previous and the first report)
        # without running any benchmarks.
        print(bench.render_trajectory())
        return 0

    names = _split_csv(args.only) if args.only else None
    print(f"running {'smoke' if args.smoke else 'full'} microbenchmarks "
          f"({', '.join(names or bench.PAYLOADS)}):")
    # Resolve the reference before writing the report, so ``latest`` never
    # points at the report this very run is about to produce.  Only resolved
    # when the gate will actually use it — a bad --reference must not stop
    # a plain bench run from writing its report.
    reference = None
    if args.check_regression:
        if args.reference == "latest":
            reference_path = bench.latest_report_path()
            if reference_path is not None:
                with open(reference_path, "r", encoding="utf-8") as handle:
                    reference = json.load(handle)
        elif args.reference:
            with open(args.reference, "r", encoding="utf-8") as handle:
                reference = json.load(handle)
    report = bench.run_suite(smoke=args.smoke, names=names, progress=print)
    speedups = report.get("speedup_vs_baseline")
    if speedups:
        rendered = "  ".join(f"{name} {value:.2f}x" for name, value in speedups.items())
        print(f"speedup vs pre-optimization baseline: {rendered}")
    ratio = report.get("telemetry_overhead_ratio")
    if ratio is not None:
        print(f"telemetry-off overhead on train_epoch: {(ratio - 1.0):+.1%} "
              f"(instrumented/raw ratio {ratio:.4f})")
        if args.max_telemetry_overhead is not None \
                and ratio > 1.0 + args.max_telemetry_overhead:
            print(f"REGRESSION: telemetry-off train_epoch overhead "
                  f"{(ratio - 1.0):.1%} exceeds the "
                  f"{args.max_telemetry_overhead:.1%} budget", file=sys.stderr)
            return 1
    path = bench.write_report(report, args.output)
    print(f"report written to {path}")
    if args.check_regression:
        keys = _split_csv(args.regression_keys) if args.regression_keys \
            else list(bench.REGRESSION_KEYS)
        unknown = [key for key in keys if key not in report.get("timings", {})]
        if unknown:
            print(f"error: regression keys not measured in this run: "
                  f"{', '.join(unknown)}", file=sys.stderr)
            return 1
        # A gated key missing from the reference fails loudly inside
        # check_regressions — a gate that silently stops comparing is
        # indistinguishable from one that passes.
        messages = bench.check_regressions(report, args.max_regression,
                                           keys=keys, reference=reference,
                                           normalize_by=args.normalize_by)
        if messages:
            for message in messages:
                print(f"REGRESSION: {message}", file=sys.stderr)
            return 1
        normalized = f" (normalized by {args.normalize_by})" if args.normalize_by else ""
        resolved = reference if reference is not None else report.get("baseline", {})
        if (resolved or {}).get("timings"):
            print(f"regression check passed ({', '.join(keys)} within "
                  f"{args.max_regression:.0%} of reference{normalized})")
        else:
            print("regression check ran against no comparable benchmarks")
    return 0


# ---------------------------------------------------------------------- #
# Argument parsing
# ---------------------------------------------------------------------- #
def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size (1 = in-process, default)")
    parser.add_argument("--cache-dir", default=default_cache_dir(),
                        help="result-cache directory (default: %(default)s)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache for this run")
    parser.add_argument("--run-dir", default=None,
                        help="persist graphs/results/manifest under this artifact root")
    parser.add_argument("--delay-tolerance", type=int, default=0,
                        help="slots of slack when scoring causal delays")
    parser.add_argument("--json", action="store_true",
                        help="print machine-readable JSON instead of text")
    parser.add_argument("--retries", type=int, default=0,
                        help="extra attempts for jobs whose execution errors "
                             "(worker deaths and timeouts always get one "
                             "free retry)")
    parser.add_argument("--retry-backoff", type=float, default=0.5,
                        metavar="SECONDS",
                        help="exponential backoff base between attempts, "
                             "with deterministic jitter (default: "
                             "%(default)s)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock budget under --workers > 1; "
                             "overrunning workers are killed and the job "
                             "retried")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="snapshot fit state here so retried/re-run jobs "
                             "resume training bit-identically")
    parser.add_argument("--checkpoint-every", type=int, default=1,
                        metavar="N",
                        help="save a fit snapshot every N epochs "
                             "(default: %(default)s)")
    parser.add_argument("--faults", default=None, metavar="PLAN",
                        help="deterministic fault-injection plan, e.g. "
                             "'kill@dispatch=2,raise@train_step=7' "
                             "(overrides REPRO_FAULTS; chaos testing only)")
    _add_engine_threads_flag(parser)
    _add_telemetry_flags(parser)


def _executor_kwargs(args: argparse.Namespace) -> Dict[str, Any]:
    """Fault-tolerance knobs shared by the discover and sweep executors."""
    return {
        "retries": args.retries,
        "retry_backoff": args.retry_backoff,
        "job_timeout": args.job_timeout,
        "checkpoint_dir": args.checkpoint_dir,
        "checkpoint_every": args.checkpoint_every,
    }


def _add_engine_threads_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine-threads", type=int, default=None,
                        metavar="N",
                        help="threads per fused engine (default: "
                             "REPRO_ENGINE_THREADS or 1 = serial; results "
                             "are bit-identical at any thread count)")


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--telemetry", default=None, metavar="SPEC",
                        help="telemetry sinks: off, stderr, jsonl:PATH or a "
                             "comma-separated combination (default: off)")
    parser.add_argument("--profile-engines", action="store_true",
                        help="record per-op engine wall-time histograms "
                             "(requires --telemetry)")


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CausalFormer reproduction: causal-discovery jobs, sweeps and cache.")
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    discover = commands.add_parser("discover", help="run one method on one dataset")
    discover.add_argument("--dataset", required=True, choices=dataset_names())
    discover.add_argument("--method", default="causalformer", choices=method_names())
    discover.add_argument("--seed", type=int, default=0)
    discover.add_argument("--length", type=int, default=None,
                          help="series length (dataset default when omitted)")
    discover.add_argument("--config", action="append", metavar="KEY=VALUE",
                          help="method configuration override (repeatable)")
    _add_executor_flags(discover)
    discover.set_defaults(handler=_cmd_discover)

    sweep = commands.add_parser("sweep", help="run a methods × datasets × seeds sweep")
    sweep.add_argument("--datasets", required=True,
                       help="comma-separated dataset names")
    sweep.add_argument("--methods", default="causalformer",
                       help="comma-separated method names")
    sweep.add_argument("--seeds", default="0", help="comma-separated seeds")
    sweep.add_argument("--length", default=None,
                       help="series length, or a comma-separated list cycled "
                            "across seeds (dataset default when omitted)")
    sweep.add_argument("--metric", default="f1",
                       choices=("f1", "precision", "recall", "precision_of_delay"))
    sweep.add_argument("--config", action="append", metavar="KEY=VALUE",
                       help="configuration overrides for --config-method")
    sweep.add_argument("--config-method", default="causalformer",
                       help="method that receives the --config overrides")
    sweep.add_argument("--bucket-slack", type=float, default=0.0,
                       help="relative series-length slack for stacking "
                            "mixed-shape jobs (0 = exact shapes only)")
    sweep.add_argument("--max-lanes", type=int, default=None,
                       help="cap on live stacked lanes per group; the rest "
                            "queue and refill freed lanes")
    sweep.add_argument("--batch-jobs", action="store_true",
                       help="pack same-shape causalformer jobs into stacked "
                            "training passes (identical results, faster)")
    _add_executor_flags(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    cache = commands.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.add_argument("--cache-dir", default=default_cache_dir())
    cache.set_defaults(handler=_cmd_cache)

    listing = commands.add_parser("list", help="list registered methods and datasets")
    listing.set_defaults(handler=_cmd_list)

    bench = commands.add_parser(
        "bench", help="run perf microbenchmarks and append the next BENCH_nn.json")
    bench.add_argument("--smoke", action="store_true",
                       help="fewer repeats (CI mode)")
    bench.add_argument("--only", default=None,
                       help="comma-separated benchmark names (default: all)")
    bench.add_argument("--output", default=None,
                       help="report path (default: the next free BENCH_nn.json "
                            "slot, so successive runs append to the trajectory)")
    bench.add_argument("--check-regression", action="store_true",
                       help="fail when a gated benchmark regresses vs the reference")
    bench.add_argument("--reference", default=None,
                       help="reference report for the regression check; "
                            "'latest' uses the newest committed BENCH_nn.json "
                            "(default: the embedded pre-optimization baseline)")
    from repro.service.bench import REGRESSION_KEYS

    bench.add_argument("--regression-keys", default=None,
                       help="comma-separated benchmarks to gate "
                            f"(default: {','.join(REGRESSION_KEYS)})")
    bench.add_argument("--trajectory", action="store_true",
                       help="print the BENCH_01..NN per-payload timing "
                            "trajectory (ms + speedups) and exit")
    bench.add_argument("--max-regression", type=float, default=0.25,
                       help="allowed slowdown fraction (default: %(default)s)")
    bench.add_argument("--normalize-by", default=None, metavar="BENCHMARK",
                       help="gate on the ratio vs this same-run benchmark "
                            "(hardware-independent, e.g. tensor_ops)")
    bench.add_argument("--max-telemetry-overhead", type=float, default=None,
                       metavar="FRACTION",
                       help="fail when the telemetry-off train_epoch overhead "
                            "(train_epoch/telemetry_overhead - 1, same run) "
                            "exceeds this fraction (e.g. 0.02)")
    _add_engine_threads_flag(bench)
    _add_telemetry_flags(bench)
    bench.set_defaults(handler=_cmd_bench)

    trace_report = commands.add_parser(
        "report", help="render a JSONL telemetry trace written by "
                       "--telemetry jsonl:PATH")
    trace_report.add_argument("trace", help="path to the .jsonl trace file")
    trace_report.set_defaults(handler=_cmd_report)

    from repro.analysis import cli as analysis_cli

    lint = commands.add_parser(
        "lint", help="statically check the engine invariants "
                     "(arena allocation, dtype purity, parallel outputs, "
                     "telemetry guards, no print)")
    analysis_cli.add_arguments(lint)
    lint.set_defaults(handler=analysis_cli.run)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    engine_threads = getattr(args, "engine_threads", None)
    if engine_threads is not None:
        from repro.nn.parallel import set_engine_threads

        try:
            set_engine_threads(engine_threads)
        except ValueError as error:
            raise SystemExit(f"error: {error}")
    plan = getattr(args, "faults", None)
    if plan is not None:
        from repro import faults

        try:
            faults.configure(plan)
        except faults.FaultSpecError as error:
            raise SystemExit(f"error: {error}")
    try:
        return _run_with_telemetry(args)
    finally:
        if plan is not None:
            from repro import faults

            # Back to the REPRO_FAULTS-derived default for embedders that
            # call main() repeatedly.
            faults.reset()


def _run_with_telemetry(args: argparse.Namespace) -> int:
    spec = getattr(args, "telemetry", None)
    profile = getattr(args, "profile_engines", False)
    if not spec and not profile:
        return args.handler(args)
    from repro.telemetry import configure, reset

    try:
        configure(spec, engine_profiling=profile)
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    try:
        return args.handler(args)
    finally:
        # Flush/close the sinks (emitting the final metrics snapshot) and
        # restore the null runtime even when the handler raises.
        reset()


if __name__ == "__main__":
    sys.exit(main())
