"""Synthetic sea-surface-temperature (SST) field for the Fig. 10 case study.

The paper's case study runs CausalFormer on NOAA OI-SST data for the North
Atlantic (20°N–70°N, 0°W–80°W, 4°×4° cells, 2013–2022, 38-day slots) and
checks that the discovered causal edges align with the known ocean currents
(North Atlantic Drift northward, East-Greenland current southward).  The NOAA
repository is not reachable offline, so this module simulates an SST anomaly
field advected by a prescribed current field on the same grid geometry:

* a gyre-like velocity field with a strong north-eastward drift in the west
  and a weaker southward return flow in the east (a cartoon North Atlantic);
* temperature anomalies injected in the south-west that are advected along
  the currents with diffusion and decay;
* the ground-truth causal edges are "cell upstream → cell downstream" along
  the velocity field, so the paper's qualitative claim ("edges align with
  currents") becomes a measurable alignment fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.data.base import TimeSeriesDataset
from repro.graph.causal_graph import TemporalCausalGraph


@dataclass
class SstFieldSpec:
    """Geometry and physics of the synthetic SST field.

    The default 5×5 grid keeps end-to-end discovery tractable on CPU while
    preserving the structure of the experiment (the paper uses 260 cells).
    """

    n_lat: int = 5
    n_lon: int = 5
    length: int = 97          # paper: 97 time slots of 38 days
    advection_strength: float = 0.7
    diffusion: float = 0.08
    decay: float = 0.15
    noise_std: float = 0.3
    seasonal_amplitude: float = 0.5

    def __post_init__(self) -> None:
        if self.n_lat < 2 or self.n_lon < 2:
            raise ValueError("the SST grid needs at least 2×2 cells")
        if self.length < 10:
            raise ValueError("length must be at least 10 slots")

    @property
    def n_cells(self) -> int:
        return self.n_lat * self.n_lon

    def cell_index(self, lat: int, lon: int) -> int:
        return lat * self.n_lon + lon

    def cell_coords(self, index: int) -> Tuple[int, int]:
        return divmod(index, self.n_lon)


def current_field(spec: SstFieldSpec) -> np.ndarray:
    """Prescribed current vectors ``(n_lat, n_lon, 2)`` as (d_lat, d_lon).

    Western half: north-eastward drift (the North Atlantic Drift analogue).
    Eastern half: weak south-westward return flow (Canary current analogue).
    """
    field = np.zeros((spec.n_lat, spec.n_lon, 2))
    for lat in range(spec.n_lat):
        for lon in range(spec.n_lon):
            if lon < spec.n_lon / 2:
                field[lat, lon] = (1.0, 0.7)    # northward + eastward
            else:
                field[lat, lon] = (-0.5, -0.3)  # southward + westward (weaker)
    return field


def sst_ground_truth(spec: SstFieldSpec) -> TemporalCausalGraph:
    """Edges from each cell to the neighbour its current points to."""
    currents = current_field(spec)
    names = [f"cell_{lat}_{lon}" for lat in range(spec.n_lat) for lon in range(spec.n_lon)]
    graph = TemporalCausalGraph(spec.n_cells, names=names)
    for lat in range(spec.n_lat):
        for lon in range(spec.n_lon):
            d_lat, d_lon = currents[lat, lon]
            target_lat = lat + int(np.sign(d_lat))
            target_lon = lon + int(np.sign(d_lon))
            source = spec.cell_index(lat, lon)
            if 0 <= target_lat < spec.n_lat:
                graph.add_edge(source, spec.cell_index(target_lat, lon), 1)
            if 0 <= target_lon < spec.n_lon:
                graph.add_edge(source, spec.cell_index(lat, target_lon), 1)
            graph.add_edge(source, source, 1)
    return graph


def simulate_sst(spec: SstFieldSpec, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Simulate the advected anomaly field; returns ``(n_cells, length)``."""
    rng = rng or np.random.default_rng()
    currents = current_field(spec)
    field = rng.normal(0.0, 0.1, size=(spec.n_lat, spec.n_lon))
    frames = np.zeros((spec.length, spec.n_lat, spec.n_lon))
    for t in range(spec.length):
        new_field = (1.0 - spec.decay) * field
        # Advection: each cell moves a fraction of its anomaly downstream.
        # The transported amount is removed from the source so total heat is
        # conserved (minus decay) and the field stays bounded.
        for lat in range(spec.n_lat):
            for lon in range(spec.n_lon):
                d_lat, d_lon = currents[lat, lon]
                speed = min(abs(d_lat) + abs(d_lon), 2.0)
                transported = spec.advection_strength * field[lat, lon] * speed / 2.0
                new_field[lat, lon] -= transported
                target_lat = lat + int(np.sign(d_lat))
                target_lon = lon + int(np.sign(d_lon))
                weight_lat = abs(d_lat) / max(speed, 1e-9)
                weight_lon = abs(d_lon) / max(speed, 1e-9)
                if 0 <= target_lat < spec.n_lat:
                    new_field[target_lat, lon] += transported * weight_lat
                if 0 <= target_lon < spec.n_lon:
                    new_field[lat, target_lon] += transported * weight_lon
        # Diffusion toward the 4-neighbour mean.
        diffused = new_field.copy()
        for lat in range(spec.n_lat):
            for lon in range(spec.n_lon):
                neighbours = []
                for d_lat, d_lon in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    a, b = lat + d_lat, lon + d_lon
                    if 0 <= a < spec.n_lat and 0 <= b < spec.n_lon:
                        neighbours.append(new_field[a, b])
                diffused[lat, lon] += spec.diffusion * (np.mean(neighbours) - new_field[lat, lon])
        # Warm-water injection in the south-west corner (Gulf Stream inflow)
        # plus a weak seasonal cycle and noise.
        season = spec.seasonal_amplitude * np.sin(2 * np.pi * t / 9.6)
        diffused[0, 0] += 1.0 + 0.5 * season
        diffused += rng.normal(0.0, spec.noise_std, size=diffused.shape)
        field = diffused
        frames[t] = field
    return frames.reshape(spec.length, spec.n_cells).T


def sst_dataset(spec: Optional[SstFieldSpec] = None,
                seed: Optional[int] = None) -> TimeSeriesDataset:
    """Synthetic North-Atlantic-style SST dataset with current ground truth."""
    spec = spec or SstFieldSpec()
    rng = np.random.default_rng(seed)
    values = simulate_sst(spec, rng=rng)
    graph = sst_ground_truth(spec)
    return TimeSeriesDataset(
        values=values,
        name="sst",
        graph=graph,
        series_names=list(graph.names),
        metadata={
            "n_lat": spec.n_lat,
            "n_lon": spec.n_lon,
            "length": spec.length,
            "seed": seed,
            "generator": "sst-advection",
        },
    )


def edge_direction_labels(spec: SstFieldSpec, graph: TemporalCausalGraph) -> List[str]:
    """Label each non-self edge as S→N, N→S, W→E or E→W (for the Fig. 10 report)."""
    labels: List[str] = []
    for edge in graph.edges:
        if edge.is_self_loop:
            continue
        source_lat, source_lon = spec.cell_coords(edge.source)
        target_lat, target_lon = spec.cell_coords(edge.target)
        if target_lat > source_lat:
            labels.append("S->N")
        elif target_lat < source_lat:
            labels.append("N->S")
        elif target_lon > source_lon:
            labels.append("W->E")
        elif target_lon < source_lon:
            labels.append("E->W")
        else:
            labels.append("other")
    return labels


def current_alignment(spec: SstFieldSpec, predicted: TemporalCausalGraph) -> float:
    """Fraction of predicted non-self edges that point along the local current.

    This quantifies the paper's Fig. 10 claim that discovered causal relations
    "generally match the spatial distribution of the North Atlantic Current".
    """
    currents = current_field(spec)
    aligned = 0
    total = 0
    for edge in predicted.edges:
        if edge.is_self_loop:
            continue
        source_lat, source_lon = spec.cell_coords(edge.source)
        target_lat, target_lon = spec.cell_coords(edge.target)
        direction = np.array([target_lat - source_lat, target_lon - source_lon], dtype=float)
        norm = np.linalg.norm(direction)
        if norm == 0:
            continue
        direction /= norm
        current = currents[source_lat, source_lon]
        current_norm = np.linalg.norm(current)
        if current_norm == 0:
            continue
        total += 1
        if float(direction @ (current / current_norm)) > 0.0:
            aligned += 1
    return aligned / total if total else 0.0
