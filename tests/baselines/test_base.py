"""Shared baseline interface and graph construction from score matrices."""

import numpy as np
import pytest

from repro.baselines import all_baselines, graph_from_scores
from repro.baselines.base import CausalDiscoveryMethod, ScoreBasedMethod, extract_values
from repro.data import fork_dataset


class TestExtractValues:
    def test_from_dataset(self, fork_data):
        values = extract_values(fork_data, normalize=False)
        np.testing.assert_array_equal(values, fork_data.values)

    def test_normalization_applied(self, fork_data):
        values = extract_values(fork_data, normalize=True)
        np.testing.assert_allclose(values.mean(axis=1), 0.0, atol=1e-9)

    def test_from_array(self):
        array = np.random.default_rng(0).normal(size=(3, 50))
        values = extract_values(array, normalize=False)
        np.testing.assert_array_equal(values, array)

    def test_rejects_one_dimensional(self):
        with pytest.raises(ValueError):
            extract_values(np.zeros(10))


class TestGraphFromScores:
    def test_strong_scores_become_edges(self):
        scores = np.array([[0.9, 0.0, 0.0],
                           [0.8, 0.9, 0.0],
                           [0.0, 0.0, 0.9]])
        graph = graph_from_scores(scores, n_clusters=2, top_clusters=1)
        assert graph.has_edge(0, 0)
        assert graph.has_edge(0, 1)   # scores[target=1, source=0]
        assert graph.has_edge(2, 2)
        assert not graph.has_edge(1, 0)

    def test_delays_attached(self):
        scores = np.array([[0.0, 0.9], [0.0, 0.0]])
        delays = np.array([[1, 4], [1, 1]])
        graph = graph_from_scores(scores, delays=delays)
        assert graph.delay(1, 0) == 4

    def test_self_loop_delay_floor(self):
        scores = np.eye(2)
        delays = np.zeros((2, 2), dtype=int)
        graph = graph_from_scores(scores, delays=delays)
        for edge in graph.self_loops:
            assert edge.delay >= 1

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            graph_from_scores(np.zeros((2, 3)))

    def test_density_ratio(self):
        rng = np.random.default_rng(0)
        scores = rng.random((5, 5))
        sparse = graph_from_scores(scores, n_clusters=3, top_clusters=1)
        dense = graph_from_scores(scores, n_clusters=3, top_clusters=3)
        assert dense.n_edges >= sparse.n_edges


class TestInterface:
    def test_all_baselines_factory(self):
        methods = all_baselines()
        assert len(methods) == 5
        names = {method.name for method in methods}
        assert names == {"cmlp", "clstm", "tcdf", "dvgnn", "cuts"}
        assert all(isinstance(method, CausalDiscoveryMethod) for method in methods)

    def test_score_based_methods_store_scores(self):
        dataset = fork_dataset(seed=0, length=150)
        from repro.baselines import VarGranger

        method = VarGranger()
        method.discover(dataset)
        assert method.scores_ is not None
        assert method.scores_.shape == (3, 3)

    def test_abstract_methods_enforced(self):
        with pytest.raises(TypeError):
            ScoreBasedMethod()  # abstract causal_scores not implemented


@pytest.fixture(scope="module")
def fork_data():
    return fork_dataset(seed=3, length=200)
