"""Multi-kernel causal convolution (paper Sec. 4.1.2, Eq. 3–4, Fig. 3c).

A learnable kernel ``K ∈ R^{N×N×T}`` convolves, for every (source, target)
series pair, the left-zero-padded history of the source series:

.. math::

    \\hat X^t_{i,j} = K_{i,j} \\cdot [0_{t+1}, …, 0_T, X^1_i, …, X^t_i] / t

so the prediction at slot ``t`` only ever sees observations up to slot ``t``
(temporal priority), and the division by ``t`` rescales for the number of
observed slots.  The self-convolution result is right-shifted by one slot
(Eq. 4) so a series' own current value never leaks into its own prediction,
which is what makes self-causation learnable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn import tensor as T
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class MultiKernelCausalConvolution(Module):
    """Causal convolution with one kernel per (source, target) series pair.

    Parameters
    ----------
    n_series:
        Number of time series ``N``.
    window:
        Window length ``T`` (also the convolution field).
    single_kernel:
        When true, a single kernel is shared by every series pair — the
        "w/o multi conv kernel" ablation of Table 3.
    """

    def __init__(self, n_series: int, window: int, single_kernel: bool = False,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if n_series <= 0 or window <= 1:
            raise ValueError("n_series must be positive and window at least 2")
        self.n_series = n_series
        self.window = window
        self.single_kernel = single_kernel
        rng = rng or init.default_rng()
        kernel_shape = (1, 1, window) if single_kernel else (n_series, n_series, window)
        self.kernel = Parameter(init.he_normal(kernel_shape, rng) / np.sqrt(window),
                                name="causal_conv.kernel")
        # Constant masks used to apply the diagonal right-shift.
        eye = np.eye(n_series, dtype=T.get_default_dtype())
        self.register_buffer("_diag_mask", eye.reshape(n_series, n_series, 1))
        self.register_buffer("_scale",
                             1.0 / np.arange(1, window + 1, dtype=T.get_default_dtype()))
        self._rebuild_constant_cache()

    def _rebuild_constant_cache(self) -> None:
        """Precompute the constant tensors every forward pass needs.

        These never depend on the learnable kernel values, but rebuilding
        them here (also triggered by ``load_state_dict``) keeps their dtype
        in sync with reloaded buffers.
        """
        self._scale_array = np.asarray(self._scale)
        # Broadcast helper for the single-kernel ablation: constant, grad-free,
        # so one cached Tensor can be reused across autograd graphs.
        self._ones_broadcast = Tensor(
            np.ones((self.n_series, self.n_series, 1), dtype=self._scale_array.dtype))

    def _invalidate_caches(self) -> None:  # hook called by Module.load_state_dict
        self._rebuild_constant_cache()

    def effective_kernel(self) -> Tensor:
        """The kernel broadcast to ``(N, N, T)`` (identity for multi-kernel)."""
        if not self.single_kernel:
            return self.kernel
        return self.kernel * self._ones_broadcast

    def forward(self, x: Tensor) -> Tensor:
        """Convolve a batch of windows.

        Parameters
        ----------
        x:
            Tensor of shape ``(batch, N, T)``.

        Returns
        -------
        Tensor of shape ``(batch, N, N, T)`` where entry ``[b, i, j, t]`` is
        the convolution of source series ``i`` for predicting target series
        ``j`` at slot ``t`` (the paper's ``X̂_{i,j}``).
        """
        batch, n_series, window = x.shape
        if n_series != self.n_series or window != self.window:
            raise ValueError(
                f"expected input of shape (*, {self.n_series}, {self.window}); got {x.shape}"
            )
        # One fused autograd node: pad → causal-window view → batched GEMM
        # with the per-slot 1/t rescale (Eq. 3) and the diagonal right-shift
        # (Eq. 4) folded in — replacing the former T-iteration
        # slice-and-stack loop plus mask/concatenate ops.
        return F.causal_conv(x, self.effective_kernel(), self._scale_array,
                             right_shift=True)

    def convolution_windows(self, x: np.ndarray) -> np.ndarray:
        """Numpy helper exposing ``windows[b, i, t, τ]`` for relevance propagation.

        Returns a read-only strided view: ``windows[b, i, t, τ]`` is the
        left-zero-padded history ``P[b, i, t + 1 + τ]``.
        """
        x = np.asarray(x, dtype=float)
        _padded, view = F._causal_window_view(x, x.shape[-1])
        return view

    def l1_penalty(self) -> Tensor:
        """``‖K‖₁`` — the kernel sparsity term of the loss (Eq. 9)."""
        return self.kernel.abs().sum()
