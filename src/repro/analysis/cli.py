"""``python -m repro lint`` / ``tools/lint.py`` — the lint CLI.

The argument surface is shared between the standalone entry point
(:func:`main`) and the ``lint`` subcommand of the service CLI
(:func:`add_arguments` + :func:`run`), so both invocations behave
identically.

Exit codes: ``0`` clean, ``1`` unsuppressed findings, ``2`` usage or
internal error — suitable for CI gating.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.registry import build_checkers, rule_names
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import (EXIT_ERROR, default_root, lint_paths)
from repro.analysis.base import LintConfig


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint "
                             "(default: src/repro under the repo root)")
    parser.add_argument("--rules", default=None, metavar="R1,R2",
                        help="comma-separated rule names (default: all)")
    parser.add_argument("--format", default="text",
                        choices=("text", "json"), dest="output_format",
                        help="report format (default: %(default)s)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the report to this file "
                             "(CI artifact)")
    parser.add_argument("--root", default=None,
                        help="repository root reported paths are relative "
                             "to (default: auto-detected)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        for checker in build_checkers():
            print(f"{checker.name}: {checker.description}")
        return 0
    root = args.root if args.root is not None else default_root()
    rules: Optional[Sequence[str]] = None
    if args.rules:
        rules = [name.strip() for name in args.rules.split(",")
                 if name.strip()]
    try:
        result = lint_paths(paths=args.paths or None, rules=rules,
                            config=LintConfig(root=root))
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return EXIT_ERROR
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    render = render_json if args.output_format == "json" else render_text
    report = render(result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        summary = ("clean" if not result.findings
                   else f"{len(result.findings)} finding(s)")
        print(f"lint report written to {args.output} ({summary}, "
              f"{result.files_checked} file(s) checked)")
        if args.output_format == "text" or result.findings:
            print(report)
    else:
        print(report)
    return result.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis: enforce the engine invariants "
                    f"({', '.join(rule_names())}).")
    add_arguments(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
